"""Tests for repro.adversary.collusion — the Sec. 5.2 attacker."""

import pytest

from repro.adversary.collusion import ColludingStrategicAttacker
from repro.core.collusion import CollusionResilientMultiTest, CollusionResilientTest
from repro.trust.average import AverageTrust
from repro.trust.weighted import WeightedTrust


class TestWithoutBehaviorTesting:
    def test_collusion_makes_attacks_free(self):
        # paper: "the attacker can achieve his attacking goal without
        # providing any good services to the clients"
        attacker = ColludingStrategicAttacker(AverageTrust(), None, target_bads=20)
        result = attacker.run(300, seed=1)
        assert result.reached_goal
        assert result.cost == 0

    def test_weighted_function_also_free_with_colluders(self):
        attacker = ColludingStrategicAttacker(WeightedTrust(0.5), None, target_bads=20)
        result = attacker.run(300, seed=2)
        assert result.reached_goal
        assert result.cost == 0
        # fake positives were needed to re-climb after each cheat
        assert result.colluder_feedbacks > 0


class TestWithCollusionResilientTesting:
    def test_single_test_forces_real_service(
        self, paper_config, shared_calibrator
    ):
        attacker = ColludingStrategicAttacker(
            AverageTrust(),
            CollusionResilientTest(paper_config, shared_calibrator),
            target_bads=20,
        )
        result = attacker.run(300, seed=3)
        assert result.reached_goal
        assert result.cost > 0

    def test_supporter_base_forced_to_grow(self, paper_config, shared_calibrator):
        bare = ColludingStrategicAttacker(AverageTrust(), None, target_bads=20)
        screened = ColludingStrategicAttacker(
            AverageTrust(),
            CollusionResilientMultiTest(paper_config, shared_calibrator),
            target_bads=20,
        )
        base_bare = bare.run(300, seed=4).extra["supporter_base"]
        base_screened = screened.run(300, seed=4).extra["supporter_base"]
        # without testing, only the 5 colluders support the attacker
        assert base_bare <= 5
        assert base_screened > base_bare

    def test_multi_test_costs_at_least_single_test(
        self, paper_config, shared_calibrator
    ):
        import numpy as np

        single_costs, multi_costs = [], []
        for seed in range(3):
            single = ColludingStrategicAttacker(
                AverageTrust(),
                CollusionResilientTest(paper_config, shared_calibrator),
                target_bads=20,
            )
            multi = ColludingStrategicAttacker(
                AverageTrust(),
                CollusionResilientMultiTest(paper_config, shared_calibrator),
                target_bads=20,
            )
            single_costs.append(single.run(600, seed=seed).cost)
            multi_costs.append(multi.run(600, seed=seed).cost)
        assert np.mean(multi_costs) >= np.mean(single_costs)


class TestAccounting:
    def test_prep_history_is_colluder_only(self):
        attacker = ColludingStrategicAttacker(AverageTrust(), None, target_bads=1)
        result = attacker.run(250, seed=5)
        assert result.prep_transactions == 250

    def test_step_budget(self):
        attacker = ColludingStrategicAttacker(
            AverageTrust(), None, target_bads=1000, max_steps=50
        )
        result = attacker.run(100, seed=6)
        assert not result.reached_goal
        assert result.steps == 50

    def test_action_counts_add_up(self):
        attacker = ColludingStrategicAttacker(AverageTrust(), None, target_bads=10)
        result = attacker.run(200, seed=7)
        total_actions = (
            result.bad_transactions
            + result.good_transactions
            + result.colluder_feedbacks
            + result.idle_steps
        )
        assert total_actions == result.steps

    def test_validation(self):
        with pytest.raises(ValueError):
            ColludingStrategicAttacker(AverageTrust(), None, n_colluders=0)
        with pytest.raises(ValueError):
            ColludingStrategicAttacker(
                AverageTrust(), None, n_clients=5, n_colluders=5
            )
        with pytest.raises(ValueError):
            ColludingStrategicAttacker(AverageTrust(), None, prep_honesty=-0.1)
        with pytest.raises(ValueError):
            ColludingStrategicAttacker(AverageTrust(), None, target_bads=0)
