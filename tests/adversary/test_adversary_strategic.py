"""Tests for repro.adversary.strategic — the Sec. 5.1 attacker."""

import numpy as np
import pytest

from repro.adversary.strategic import StrategicAttacker
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.trust.average import AverageTrust
from repro.trust.weighted import WeightedTrust


class TestBareAverageTrust:
    def test_long_prep_makes_attacks_free(self):
        # paper: with >400 prep transactions, 20 consecutive attacks cost 0
        attacker = StrategicAttacker(AverageTrust(), None)
        result = attacker.run(800, seed=1)
        assert result.reached_goal
        assert result.cost == 0

    def test_short_prep_costs_roughly_nine_goods_per_attack(self):
        # steady state of the 0.9 threshold: ~9 good transactions per bad
        attacker = StrategicAttacker(AverageTrust(), None)
        result = attacker.run(100, seed=2)
        assert result.reached_goal
        assert 80 <= result.cost <= 160

    def test_cost_decreases_with_prep(self):
        attacker = StrategicAttacker(AverageTrust(), None)
        costs = [attacker.run(prep, seed=3).cost for prep in (100, 200, 400)]
        assert costs[0] > costs[1] > costs[2] == 0


class TestBareWeightedTrust:
    def test_no_two_consecutive_bads(self):
        # paper: under EWMA(0.5) a bad transaction halves trust, so the
        # attacker can never cheat twice in a row
        attacker = StrategicAttacker(WeightedTrust(0.5), None)
        result = attacker.run(300, seed=4)
        assert result.reached_goal
        outcomes = np.asarray(
            StrategicAttackerTrace.trace(WeightedTrust(0.5), None, 300, seed=4)
        )
        attack_phase = outcomes[300:]
        assert not ((attack_phase[:-1] == 0) & (attack_phase[1:] == 0)).any()

    def test_cost_independent_of_prep(self):
        attacker = StrategicAttacker(WeightedTrust(0.5), None)
        costs = [attacker.run(prep, seed=5).cost for prep in (100, 400, 800)]
        assert max(costs) - min(costs) <= 10  # flat, ~2-3 goods per bad

    def test_two_to_three_goods_per_bad(self):
        attacker = StrategicAttacker(WeightedTrust(0.5), None)
        result = attacker.run(400, seed=6)
        assert 2.0 <= result.goods_per_attack <= 3.5


class StrategicAttackerTrace:
    """Helper reproducing the attack-phase outcome sequence."""

    @staticmethod
    def trace(trust_fn, behavior, prep, seed):
        from repro.core.model import generate_honest_outcomes
        from repro.feedback.history import TransactionHistory
        from repro.adversary.oracle import AssessmentOracle

        prep_outcomes = generate_honest_outcomes(prep, 0.95, seed=seed)
        attacker = StrategicAttacker(trust_fn, behavior)
        result = attacker.run_from_history(prep_outcomes)
        # replay to extract outcomes: rebuild the same decisions
        history = TransactionHistory.from_outcomes(prep_outcomes)
        oracle = AssessmentOracle(trust_fn, behavior, history=history)
        outcomes = list(prep_outcomes)
        bads = 0
        while bads < 20 and len(outcomes) - prep < result.steps:
            feasible = (
                oracle.trust_value >= 0.9
                and oracle.behavior_passes()
                and oracle.behavior_passes_after(0)
            )
            outcome = 0 if feasible else 1
            bads += outcome == 0
            oracle.record_outcome(outcome)
            outcomes.append(outcome)
        return outcomes


class TestWithBehaviorTesting:
    def test_scheme1_raises_cost_over_bare_function(
        self, paper_config, shared_calibrator
    ):
        bare = StrategicAttacker(AverageTrust(), None)
        screened = StrategicAttacker(
            AverageTrust(), SingleBehaviorTest(paper_config, shared_calibrator)
        )
        assert screened.run(600, seed=7).cost > bare.run(600, seed=7).cost

    def test_scheme2_dominates_scheme1_at_long_preps(
        self, paper_config, shared_calibrator
    ):
        single = StrategicAttacker(
            AverageTrust(), SingleBehaviorTest(paper_config, shared_calibrator)
        )
        multi = StrategicAttacker(
            AverageTrust(), MultiBehaviorTest(paper_config, shared_calibrator)
        )
        costs_single = np.mean([single.run(800, seed=s).cost for s in range(3)])
        costs_multi = np.mean([multi.run(800, seed=s).cost for s in range(3)])
        assert costs_multi > costs_single

    def test_attack_never_leaves_history_flagged(
        self, paper_config, shared_calibrator
    ):
        # the attacker's conservative look-ahead means its final history
        # still passes the deployed test
        test_ = MultiBehaviorTest(paper_config, shared_calibrator)
        attacker = StrategicAttacker(AverageTrust(), test_)
        result = attacker.run(400, seed=8)
        assert result.reached_goal
        assert result.extra["final_trust"] >= 0.9 - 0.05


class TestResultAccounting:
    def test_step_budget_respected(self):
        attacker = StrategicAttacker(AverageTrust(), None, max_steps=10)
        result = attacker.run(50, seed=9)
        assert result.steps == 10
        assert not result.reached_goal

    def test_counts_add_up(self):
        attacker = StrategicAttacker(AverageTrust(), None)
        result = attacker.run(200, seed=10)
        assert result.bad_transactions + result.good_transactions == result.steps
        assert result.prep_transactions == 200

    def test_goods_per_attack_metric(self):
        attacker = StrategicAttacker(AverageTrust(), None)
        result = attacker.run(100, seed=11)
        assert result.goods_per_attack == pytest.approx(
            result.good_transactions / result.bad_transactions
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            StrategicAttacker(AverageTrust(), None, prep_honesty=1.5)
        with pytest.raises(ValueError):
            StrategicAttacker(AverageTrust(), None, target_bads=0)
        with pytest.raises(ValueError):
            StrategicAttacker(AverageTrust(), None, max_steps=0)
