"""Tests for repro.adversary.oracle."""

import numpy as np
import pytest

from repro.adversary.oracle import AssessmentOracle
from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating
from repro.trust.average import AverageTrust
from repro.trust.weighted import WeightedTrust


def _oracle(outcomes, trust_fn=None, behavior=None, threshold=0.9):
    history = TransactionHistory.from_outcomes(np.asarray(outcomes))
    return AssessmentOracle(
        trust_fn or AverageTrust(),
        behavior,
        trust_threshold=threshold,
        history=history,
    )


class TestTrustTracking:
    def test_initial_trust_matches_history(self):
        oracle = _oracle([1, 1, 1, 0])
        assert oracle.trust_value == pytest.approx(0.75)

    def test_record_updates_history_and_trust(self):
        oracle = _oracle([1, 1])
        oracle.record_outcome(0)
        assert len(oracle.history) == 3
        assert oracle.trust_value == pytest.approx(2 / 3)

    def test_trust_after_is_pure(self):
        oracle = _oracle([1, 1, 1])
        peeked = oracle.trust_after(0)
        assert peeked == pytest.approx(0.75)
        assert oracle.trust_value == pytest.approx(1.0)
        assert len(oracle.history) == 3

    def test_weighted_tracker_integration(self):
        oracle = _oracle([1] * 50, trust_fn=WeightedTrust(0.5))
        before = oracle.trust_value
        assert oracle.trust_after(0) == pytest.approx(before / 2)

    def test_empty_history_default(self):
        oracle = AssessmentOracle(AverageTrust(), None)
        assert len(oracle.history) == 0
        assert oracle.trust_value == pytest.approx(0.5)  # the prior


class TestBehaviorQueries:
    def test_no_test_always_passes(self):
        oracle = _oracle(np.tile([0] + [1] * 9, 50))
        assert oracle.behavior_passes()
        assert oracle.behavior_passes_after(0)

    def test_with_test_flags_manipulation(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        oracle = _oracle(np.tile([0] + [1] * 9, 50), behavior=test_)
        assert not oracle.behavior_passes()

    def test_behavior_passes_after_restores_history(
        self, paper_config, shared_calibrator
    ):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        outcomes = generate_honest_outcomes(300, 0.95, seed=1)
        oracle = _oracle(outcomes, behavior=test_)
        before = len(oracle.history)
        oracle.behavior_passes_after(0)
        oracle.behavior_passes_after(1)
        assert len(oracle.history) == before

    def test_client_accepts_combines_both_phases(
        self, paper_config, shared_calibrator
    ):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        honest = _oracle(
            generate_honest_outcomes(300, 0.95, seed=2), behavior=test_
        )
        assert honest.client_accepts()
        low_quality = _oracle(
            generate_honest_outcomes(300, 0.7, seed=3), behavior=test_
        )
        assert not low_quality.client_accepts()  # trust below threshold
        manipulator = _oracle(np.tile([0] + [1] * 9, 50), behavior=test_)
        assert not manipulator.client_accepts()  # flagged


class TestFeedbackLevel:
    def test_record_and_speculate_feedback(self, paper_config, shared_calibrator):
        from repro.core.collusion import CollusionResilientTest

        history = TransactionHistory("srv")
        rng = np.random.default_rng(4)
        for t in range(200):
            history.append_feedback(
                Feedback(
                    time=float(t),
                    server="srv",
                    client=f"c{t % 10}",
                    rating=Rating.POSITIVE if rng.random() < 0.95 else Rating.NEGATIVE,
                )
            )
        oracle = AssessmentOracle(
            AverageTrust(),
            CollusionResilientTest(paper_config, shared_calibrator),
            history=history,
        )
        bad = Feedback(
            time=201.0, server="srv", client="victim", rating=Rating.NEGATIVE
        )
        n_before = len(oracle.history)
        oracle.behavior_passes_after_feedback(bad)
        assert len(oracle.history) == n_before
        oracle.record_feedback(bad)
        assert len(oracle.history) == n_before + 1
        assert oracle.trust_value == pytest.approx(history.p_hat)


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ValueError):
            AssessmentOracle(AverageTrust(), None, trust_threshold=1.5)
