"""Tests for the trace-generating attackers (periodic, hibernating, cheat-and-run)."""

import numpy as np
import pytest

from repro.adversary.cheat_and_run import CheatAndRunAttacker
from repro.adversary.hibernating import (
    HibernatingAttacker,
    hibernating_attack_history,
)
from repro.adversary.periodic import (
    TrustDrivenPeriodicAttacker,
    periodic_attack_history,
)
from repro.core.model import generate_honest_outcomes
from repro.trust.average import AverageTrust
from repro.trust.weighted import WeightedTrust


class TestPeriodicHistory:
    def test_exact_bads_per_window(self):
        trace = periodic_attack_history(800, 40, attack_rate=0.1, seed=1)
        for start in range(0, 800, 40):
            window = trace[start : start + 40]
            assert (window == 0).sum() == 4

    def test_partial_trailing_window_proportional(self):
        trace = periodic_attack_history(450, 100, attack_rate=0.1, seed=2)
        assert (trace[400:] == 0).sum() == 5  # round(0.1 * 50)

    def test_positions_randomized(self):
        a = periodic_attack_history(400, 40, seed=3)
        b = periodic_attack_history(400, 40, seed=4)
        assert not np.array_equal(a, b)

    def test_deterministic_by_seed(self):
        np.testing.assert_array_equal(
            periodic_attack_history(200, 20, seed=5),
            periodic_attack_history(200, 20, seed=5),
        )

    def test_overall_rate(self):
        trace = periodic_attack_history(8000, 80, attack_rate=0.1, seed=6)
        assert trace.mean() == pytest.approx(0.9, abs=0.01)

    def test_zero_rate_all_good(self):
        assert periodic_attack_history(100, 10, attack_rate=0.0, seed=7).all()

    def test_full_rate_all_bad(self):
        assert not periodic_attack_history(100, 10, attack_rate=1.0, seed=8).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            periodic_attack_history(-1, 10)
        with pytest.raises(ValueError):
            periodic_attack_history(100, 0)
        with pytest.raises(ValueError):
            periodic_attack_history(100, 10, attack_rate=1.5)


class TestTrustDrivenPeriodic:
    def test_reaches_goal_and_oscillates(self):
        prep = generate_honest_outcomes(300, 0.95, seed=9)
        attacker = TrustDrivenPeriodicAttacker(AverageTrust(), target_bads=20)
        run = attacker.run(prep)
        assert run.bad_transactions == 20
        assert run.attack_bursts >= 1
        assert run.outcomes.size == 300 + run.bad_transactions + run.good_transactions

    def test_trust_never_below_low_water_during_attack(self):
        prep = generate_honest_outcomes(300, 0.95, seed=10)
        attacker = TrustDrivenPeriodicAttacker(
            AverageTrust(), high_water=0.9, low_water=0.85, target_bads=10
        )
        run = attacker.run(prep)
        tracker = AverageTrust().tracker()
        tracker.update_many(run.outcomes[:300])
        for outcome in run.outcomes[300:]:
            tracker.update(int(outcome))
            assert tracker.value >= 0.85 - 1e-9

    def test_weighted_function_bursts_are_single_bads(self):
        prep = generate_honest_outcomes(200, 0.98, seed=11)
        attacker = TrustDrivenPeriodicAttacker(
            WeightedTrust(0.5), high_water=0.9, low_water=0.5, target_bads=5
        )
        run = attacker.run(prep)
        attack = run.outcomes[200:]
        # EWMA(0.5): one bad drops trust to ~0.5, ending the burst
        assert not ((attack[:-1] == 0) & (attack[1:] == 0)).any()

    def test_validation(self):
        with pytest.raises(ValueError):
            TrustDrivenPeriodicAttacker(AverageTrust(), high_water=0.8, low_water=0.9)
        with pytest.raises(ValueError):
            TrustDrivenPeriodicAttacker(AverageTrust(), target_bads=0)


class TestHibernating:
    def test_history_layout(self):
        trace = hibernating_attack_history(100, 20, seed=12)
        assert trace.size == 120
        assert (trace[100:] == 0).all()
        assert trace[:100].mean() > 0.8

    def test_zero_sizes(self):
        assert hibernating_attack_history(0, 0).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            hibernating_attack_history(-1, 5)
        with pytest.raises(ValueError):
            hibernating_attack_history(5, -1)

    def test_attacker_builds_cover_then_cheats(self):
        prep = generate_honest_outcomes(100, 0.9, seed=13)
        attacker = HibernatingAttacker(
            AverageTrust(), cover_reputation=0.95, target_bads=10
        )
        run = attacker.run(prep)
        assert run.bad_transactions == 10
        assert run.cover_reached_at > 0  # had to extend the cover to 0.95

    def test_long_cover_allows_consecutive_attacks(self):
        prep = generate_honest_outcomes(1000, 0.99, seed=14)
        attacker = HibernatingAttacker(
            AverageTrust(), cover_reputation=0.99, client_threshold=0.9, target_bads=20
        )
        run = attacker.run(prep)
        # with a strong enough cover all 20 attacks run back to back
        assert run.good_transactions == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HibernatingAttacker(AverageTrust(), cover_reputation=0.8, client_threshold=0.9)
        with pytest.raises(ValueError):
            HibernatingAttacker(AverageTrust(), target_bads=0)


class TestCheatAndRun:
    def test_trace_shape(self):
        outcome = CheatAndRunAttacker(warmup=3).run(seed=15)
        assert outcome.outcomes.size == 4
        assert outcome.outcomes[-1] == 0
        assert outcome.cheats == 1

    def test_profit_economics(self):
        cheap_identity = CheatAndRunAttacker(joining_cost=0.1, gain_per_cheat=1.0)
        assert cheap_identity.run(seed=16).profit > 0
        expensive_identity = CheatAndRunAttacker(joining_cost=2.0, gain_per_cheat=1.0)
        assert expensive_identity.run(seed=17).profit < 0

    def test_breakeven(self):
        attacker = CheatAndRunAttacker(gain_per_cheat=3.0)
        assert attacker.breakeven_joining_cost() == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CheatAndRunAttacker(warmup=-1)
        with pytest.raises(ValueError):
            CheatAndRunAttacker(gain_per_cheat=0.0)
        with pytest.raises(ValueError):
            CheatAndRunAttacker(warmup_honesty=2.0)
