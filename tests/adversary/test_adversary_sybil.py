"""Tests for repro.adversary.sybil."""

import numpy as np
import pytest

from repro.adversary.sybil import SybilAttacker, sybil_campaign_cost
from repro.core.config import BehaviorTestConfig
from repro.core.testing import SingleBehaviorTest


class TestSybilAttacker:
    def test_campaign_covers_target(self):
        attacker = SybilAttacker(warmup=5, cheats_each=2)
        identities = attacker.run(20, seed=1)
        assert sum(i.cheats for i in identities) == 20
        assert len(identities) == 10

    def test_partial_last_identity(self):
        attacker = SybilAttacker(warmup=3, cheats_each=3)
        identities = attacker.run(7, seed=2)
        assert [i.cheats for i in identities] == [3, 3, 1]

    def test_identities_needed(self):
        assert SybilAttacker(cheats_each=3).identities_needed(7) == 3
        assert SybilAttacker(cheats_each=1).identities_needed(5) == 5

    def test_identity_layout(self):
        attacker = SybilAttacker(warmup=4, cheats_each=1, warmup_honesty=1.0)
        identity = attacker.run(1, seed=3)[0]
        np.testing.assert_array_equal(identity.outcomes, [1, 1, 1, 1, 0])
        assert identity.warmup_goods == 4

    def test_unique_names(self):
        identities = SybilAttacker().run(8, seed=4)
        assert len({i.name for i in identities}) == len(identities)

    def test_validation(self):
        with pytest.raises(ValueError):
            SybilAttacker(warmup=-1)
        with pytest.raises(ValueError):
            SybilAttacker(cheats_each=0)
        with pytest.raises(ValueError):
            SybilAttacker(warmup_honesty=1.5)
        with pytest.raises(ValueError):
            SybilAttacker().identities_needed(0)


class TestScreenBlindness:
    def test_short_identities_evade_behavior_testing(
        self, paper_config, shared_calibrator
    ):
        # the structural point: every sybil history is below the test's
        # minimum, so the "pass" insufficient-policy waves them through —
        # history-based screening cannot touch this attack
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        identities = SybilAttacker(warmup=5, cheats_each=1).run(20, seed=5)
        for identity in identities:
            verdict = test_.test(identity.outcomes)
            assert verdict.insufficient
            assert verdict.passed

    def test_fail_policy_blocks_them_but_also_all_newcomers(
        self, shared_calibrator
    ):
        config = BehaviorTestConfig(on_insufficient="fail")
        test_ = SingleBehaviorTest(config, shared_calibrator)
        identity = SybilAttacker().run(1, seed=6)[0]
        assert not test_.test(identity.outcomes).passed
        # ...which is exactly the trade-off the paper discusses: a genuine
        # newcomer with the same short history is rejected too
        assert not test_.test(np.ones(6, dtype=np.int8)).passed


class TestEconomics:
    def test_cost_scales_with_identities(self):
        cheap = sybil_campaign_cost(20, joining_cost=0.0, warmup=5)
        priced = sybil_campaign_cost(20, joining_cost=3.0, warmup=5)
        assert priced == cheap + 20 * 3.0

    def test_batching_cheats_reduces_identities(self):
        one_each = sybil_campaign_cost(20, joining_cost=5.0, cheats_each=1)
        batched = sybil_campaign_cost(20, joining_cost=5.0, cheats_each=4)
        assert batched < one_each

    def test_breakeven_reasoning(self):
        # gain 1 per cheat, 1 cheat per identity, warmup cost 5: the
        # attack is unprofitable once joining cost exceeds gain - warmup
        gain_per_cheat = 10.0
        cost = sybil_campaign_cost(20, joining_cost=6.0, warmup=5)
        assert cost > 20 * gain_per_cheat - 1  # 220 > 199: unprofitable

    def test_validation(self):
        with pytest.raises(ValueError):
            sybil_campaign_cost(20, joining_cost=-1.0)
        with pytest.raises(ValueError):
            sybil_campaign_cost(20, joining_cost=1.0, good_service_cost=-1.0)
