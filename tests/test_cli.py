"""Tests for the repro-assess CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.model import generate_honest_outcomes
from repro.feedback.io import write_feedback_csv, write_feedback_jsonl
from repro.feedback.records import Feedback, Rating


def _feedbacks_from_outcomes(outcomes, server, start_time=0.0):
    return [
        Feedback(
            time=start_time + t,
            server=server,
            client=f"c{t % 11}",
            rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
        )
        for t, outcome in enumerate(outcomes)
    ]


@pytest.fixture()
def mixed_log(tmp_path):
    """A log with one honest and one manipulating server."""
    honest = _feedbacks_from_outcomes(
        generate_honest_outcomes(600, 0.95, seed=1), "alice"
    )
    manipulator = _feedbacks_from_outcomes(np.tile([0] + [1] * 9, 60), "mallory")
    path = tmp_path / "log.csv"
    write_feedback_csv(path, honest + manipulator)
    return path


class TestAssessment:
    def test_flags_manipulator_exit_code_two(self, mixed_log, capsys):
        code = main([str(mixed_log), "--test", "single"])
        out = capsys.readouterr().out
        assert code == 2
        assert "alice" in out and "trusted" in out
        assert "SUSPICIOUS" in out
        assert "distance" in out  # failure detail printed

    def test_all_clear_exit_code_zero(self, tmp_path, capsys):
        path = tmp_path / "log.csv"
        write_feedback_csv(
            path,
            _feedbacks_from_outcomes(
                generate_honest_outcomes(500, 0.97, seed=2), "alice"
            ),
        )
        assert main([str(path), "--test", "single"]) == 0
        assert "trusted" in capsys.readouterr().out

    def test_no_test_mode_trust_only(self, mixed_log, capsys):
        code = main([str(mixed_log), "--test", "none"])
        out = capsys.readouterr().out
        assert code == 0  # nothing flagged without the screen
        assert "SUSPICIOUS" not in out

    def test_multi_reports_suffix_detail(self, tmp_path, capsys):
        trace = np.concatenate(
            [generate_honest_outcomes(600, 0.95, seed=3), np.zeros(30, dtype=np.int8)]
        )
        path = tmp_path / "log.csv"
        write_feedback_csv(path, _feedbacks_from_outcomes(trace, "sneaky"))
        code = main([str(path), "--test", "multi"])
        out = capsys.readouterr().out
        assert code == 2
        assert "suffix" in out

    def test_server_filter(self, mixed_log, capsys):
        code = main([str(mixed_log), "--test", "single", "--server", "alice"])
        out = capsys.readouterr().out
        assert code == 0
        assert "mallory" not in out

    def test_unknown_server_errors(self, mixed_log, capsys):
        code = main([str(mixed_log), "--server", "ghost"])
        assert code == 1
        assert "ghost" in capsys.readouterr().err

    def test_jsonl_input(self, tmp_path, capsys):
        path = tmp_path / "log.jsonl"
        write_feedback_jsonl(
            path,
            _feedbacks_from_outcomes(
                generate_honest_outcomes(400, 0.95, seed=4), "alice"
            ),
        )
        assert main([str(path), "--test", "single"]) == 0

    def test_untrusted_but_consistent_server(self, tmp_path, capsys):
        path = tmp_path / "log.csv"
        write_feedback_csv(
            path,
            _feedbacks_from_outcomes(
                generate_honest_outcomes(500, 0.7, seed=5), "mediocre"
            ),
        )
        code = main([str(path), "--test", "single"])
        out = capsys.readouterr().out
        assert code == 0
        assert "untrusted" in out


class TestJsonOutput:
    def test_json_structure(self, mixed_log, capsys):
        import json

        code = main([str(mixed_log), "--test", "single", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 2
        by_server = {row["server"]: row for row in payload}
        assert by_server["alice"]["status"] == "trusted"
        assert by_server["alice"]["trust"] == pytest.approx(0.95, abs=0.05)
        assert by_server["mallory"]["status"] == "suspicious"
        assert by_server["mallory"]["trust"] is None
        assert "distance" in by_server["mallory"]["detail"]

    def test_json_all_clear(self, tmp_path, capsys):
        import json

        path = tmp_path / "log.csv"
        write_feedback_csv(
            path,
            _feedbacks_from_outcomes(
                generate_honest_outcomes(400, 0.97, seed=8), "alice"
            ),
        )
        code = main([str(path), "--test", "single", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload[0]["detail"] == ""


class TestErrors:
    def test_missing_file(self, tmp_path, capsys):
        code = main([str(tmp_path / "absent.csv")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.csv"
        path.write_text("time,server,client,rating\nx,s,c,1\n")
        assert main([str(path)]) == 1

    def test_empty_log(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        path.write_text("time,server,client,rating\n")
        assert main([str(path)]) == 1

    def test_unknown_trust_function_rejected(self, mixed_log):
        with pytest.raises(SystemExit):
            main([str(mixed_log), "--trust", "nope"])

    def test_custom_window_and_confidence(self, mixed_log, capsys):
        code = main(
            [str(mixed_log), "--test", "single", "--window", "20", "--confidence", "0.99"]
        )
        assert code in (0, 2)  # plumbing works; verdicts config-dependent
