"""Tests for the experiments CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out
        assert "history_size" in out

    def test_out_file(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        assert main(["fig8", "--quick", "--out", str(target)]) == 0
        capsys.readouterr()
        content = target.read_text()
        assert "fig8" in content

    def test_out_file_appends(self, tmp_path, capsys):
        target = tmp_path / "tables.txt"
        main(["fig8", "--quick", "--out", str(target)])
        main(["fig8", "--quick", "--out", str(target)])
        capsys.readouterr()
        assert target.read_text().count("fig8:") == 2

    def test_custom_seed(self, capsys):
        assert main(["fig8", "--quick", "--seed", "123"]) == 0
        capsys.readouterr()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])
