"""Tests for repro.experiments.common."""

import pytest

from repro.experiments.common import (
    PAPER_CONFIG,
    PAPER_PREP_HONESTY,
    PAPER_TARGET_BADS,
    PAPER_TRUST_THRESHOLD,
    ExperimentResult,
    make_shared_calibrator,
    mean_over_seeds,
)


class TestPaperConstants:
    def test_values_match_the_paper(self):
        assert PAPER_CONFIG.window_size == 10
        assert PAPER_CONFIG.confidence == 0.95
        assert PAPER_TRUST_THRESHOLD == 0.9
        assert PAPER_PREP_HONESTY == 0.95
        assert PAPER_TARGET_BADS == 20


class TestExperimentResult:
    def _result(self):
        return ExperimentResult(
            experiment="figX",
            title="A test table",
            columns=["x", "y"],
            notes="note line",
        )

    def test_add_row_and_column(self):
        result = self._result()
        result.add_row(x=1, y=2.0)
        result.add_row(x=2, y=4.0)
        assert result.column("x") == [1, 2]
        assert result.column("y") == [2.0, 4.0]

    def test_add_row_missing_column_raises(self):
        with pytest.raises(ValueError, match="y"):
            self._result().add_row(x=1)

    def test_extra_keys_ignored_in_order(self):
        result = self._result()
        result.add_row(y=2.0, x=1, z=99)
        assert list(result.rows[0]) == ["x", "y"]

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            self._result().column("zzz")

    def test_render_contains_everything(self):
        result = self._result()
        result.add_row(x=10, y=0.123456)
        text = result.render()
        assert "figX" in text
        assert "A test table" in text
        assert "note line" in text
        assert "10" in text
        assert "0.1235" in text  # 4 significant digits

    def test_render_empty_table(self):
        text = self._result().render()
        assert "x" in text and "y" in text


class TestHelpers:
    def test_mean_over_seeds(self):
        assert mean_over_seeds([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_mean_over_seeds_empty_raises(self):
        with pytest.raises(ValueError):
            mean_over_seeds([])

    def test_make_shared_calibrator_mirrors_config(self):
        calibrator = make_shared_calibrator(PAPER_CONFIG)
        assert calibrator.confidence == PAPER_CONFIG.confidence
        assert calibrator.distance_name == PAPER_CONFIG.distance
