"""Tests for the ext-matrix capstone experiment."""

import pytest

from repro.experiments import RUNNERS
from repro.experiments.matrix import ATTACK_WORKLOADS, run_ext_matrix


class TestRegistration:
    def test_registered(self):
        assert "ext-matrix" in RUNNERS

    def test_workload_catalog(self):
        assert "honest (false alarms)" in ATTACK_WORKLOADS
        assert "hibernating, long cover" in ATTACK_WORKLOADS
        assert "camouflage (iid 10%)" in ATTACK_WORKLOADS


class TestMatrix:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_matrix(trials=40, base_seed=13)

    def _row(self, result, workload):
        for row in result.rows:
            if row["workload"] == workload:
                return row
        raise AssertionError(f"missing row {workload!r}")

    def test_all_workloads_present(self, result):
        assert {row["workload"] for row in result.rows} == set(ATTACK_WORKLOADS)

    def test_rates_are_probabilities(self, result):
        for row in result.rows:
            for scheme in ("single", "multi"):
                assert 0.0 <= row[scheme] <= 1.0

    def test_honest_false_alarms_low(self, result):
        row = self._row(result, "honest (false alarms)")
        assert row["single"] <= 0.15
        assert row["multi"] <= 0.25

    def test_regular_periodic_always_caught(self, result):
        row = self._row(result, "regular periodic")
        assert row["single"] == 1.0
        assert row["multi"] == 1.0

    def test_long_cover_separates_the_schemes(self, result):
        # THE paper result in one row: dilution defeats the single test,
        # multi-testing's recent suffixes are immune to it
        row = self._row(result, "hibernating, long cover")
        assert row["single"] <= 0.5
        assert row["multi"] >= 0.9

    def test_camouflage_slips_both(self, result):
        row = self._row(result, "camouflage (iid 10%)")
        assert row["single"] <= 0.2
        assert row["multi"] <= 0.4

    def test_workload_filter(self):
        result = run_ext_matrix(
            trials=10, workloads=["regular periodic"], base_seed=13
        )
        assert len(result.rows) == 1

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            run_ext_matrix(workloads=["quantum woo"])

    def test_quick_mode(self):
        result = run_ext_matrix(quick=True, base_seed=13)
        assert len(result.rows) == len(ATTACK_WORKLOADS)
