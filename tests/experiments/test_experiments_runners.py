"""Smoke + shape tests for the figure runners (quick mode).

These assert the *qualitative* claims each figure makes, on reduced
sweeps so the whole module stays fast.  Full-size sweeps live in
``benchmarks/``.
"""

import numpy as np
import pytest

from repro.experiments import RUNNERS, run_fig3, run_fig4, run_fig7, run_fig8, run_fig9


class TestRegistry:
    def test_all_figures_registered(self):
        figures = {"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
        extensions = {
            "ext-roc",
            "ext-cheat-rate",
            "ext-sybil",
            "ext-matrix",
            "p2p_scale",
            "serve",
            "ingest",
            "cluster",
        }
        assert set(RUNNERS) == figures | extensions


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(prep_sizes=(100, 400, 800), n_seeds=2, base_seed=7)

    def test_columns(self, result):
        assert result.columns == ["prep_size", "none", "scheme1", "scheme2"]

    def test_bare_average_free_at_long_preps(self, result):
        costs = dict(zip(result.column("prep_size"), result.column("none")))
        assert costs[400] == 0.0
        assert costs[800] == 0.0
        assert costs[100] > 50

    def test_schemes_impose_cost_at_long_preps(self, result):
        rows = {r["prep_size"]: r for r in result.rows}
        assert rows[800]["scheme1"] > rows[800]["none"]
        assert rows[800]["scheme2"] > rows[800]["none"]

    def test_scheme2_at_least_scheme1_at_long_preps(self, result):
        rows = {r["prep_size"]: r for r in result.rows}
        assert rows[800]["scheme2"] >= rows[800]["scheme1"]


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(prep_sizes=(100, 800), n_seeds=2, base_seed=7)

    def test_bare_weighted_cost_flat_and_positive(self, result):
        costs = result.column("none")
        # ~2-3 goods per bad * 20 bads, independent of prep size
        assert all(40 <= c <= 75 for c in costs)
        assert abs(costs[0] - costs[-1]) <= 15

    def test_schemes_do_not_reduce_cost(self, result):
        for row in result.rows:
            assert row["scheme2"] >= row["none"] - 5


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig7(attack_windows=(10, 40, 80), trials=60, base_seed=7)

    def test_detection_decreases_with_window_size(self, result):
        rates = result.column("single_detection_rate")
        assert rates[0] > rates[-1]

    def test_small_window_nearly_always_detected(self, result):
        assert result.column("single_detection_rate")[0] >= 0.9

    def test_multi_at_least_as_sensitive(self, result):
        singles = result.column("single_detection_rate")
        multis = result.column("multi_detection_rate")
        assert all(m >= s - 0.1 for s, m in zip(singles, multis))

    def test_rates_are_probabilities(self, result):
        for col in ("single_detection_rate", "multi_detection_rate"):
            assert all(0.0 <= r <= 1.0 for r in result.column(col))


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig8(
            history_sizes=(100, 400, 1600), calibration_sets=800, base_seed=7
        )

    def test_epsilon_decreases_with_history(self, result):
        for column in ("epsilon_p0.95", "epsilon_p0.90"):
            eps = result.column(column)
            assert eps[0] > eps[1] > eps[2]

    def test_epsilon_positive(self, result):
        assert all(e > 0 for e in result.column("epsilon_p0.95"))

    def test_convergence_rate_roughly_sqrt(self, result):
        # quadrupling the history should roughly halve epsilon
        eps = result.column("epsilon_p0.95")
        assert eps[1] / eps[0] == pytest.approx(0.5, abs=0.2)

    def test_rejects_too_small_history(self):
        with pytest.raises(ValueError):
            run_fig8(history_sizes=(5,))


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig9(
            history_sizes=(20_000, 80_000),
            naive_sizes=(20_000,),
            repeats=1,
            base_seed=7,
        )

    def test_columns_and_rows(self, result):
        assert result.columns == [
            "history_size",
            "single_s",
            "multi_optimized_s",
            "multi_naive_s",
        ]
        assert len(result.rows) == 2

    def test_single_test_is_fast(self, result):
        assert all(t < 1.0 for t in result.column("single_s"))

    def test_naive_only_timed_where_requested(self, result):
        rows = {r["history_size"]: r for r in result.rows}
        assert not np.isnan(rows[20_000]["multi_naive_s"])
        assert np.isnan(rows[80_000]["multi_naive_s"])

    def test_optimized_scales_subquadratically(self, result):
        times = dict(zip(result.column("history_size"), result.column("multi_optimized_s")))
        # 4x history should cost far less than 16x time
        assert times[80_000] < times[20_000] * 12


class TestQuickMode:
    @pytest.mark.parametrize("name", ["fig5", "fig6"])
    def test_collusion_runners_smoke(self, name):
        result = RUNNERS[name](
            prep_sizes=(100,), n_seeds=1, base_seed=7
        )
        assert result.columns == ["prep_size", "none", "scheme1", "scheme2"]
        row = result.rows[0]
        assert row["none"] == 0.0  # colluders make the bare function free
        assert row["scheme2"] > 0.0


class TestAuditIntegration:
    """``audit_path=`` runs write valid JSONL whose counts match the tables."""

    def test_fig7_audit_breakdown_matches_table_counters(self, tmp_path):
        from repro.experiments import run_fig5
        from repro.obs import audit

        path = tmp_path / "AUDIT_fig7.jsonl"
        result = run_fig7(
            attack_windows=(10, 40),
            trials=20,
            base_seed=7,
            audit_path=str(path),
        )
        records = audit.read_audit_jsonl(path)
        assert len(records) == 2 * 2 * 20  # windows x tests x trials
        by_key = {}
        for record in records:
            key = (record["context"]["adversary"], record["test"])
            entry = by_key.setdefault(key, [0, 0])
            entry[0] += 1
            entry[1] += not record["passed"]
        rates = dict(zip(result.column("attack_window"), zip(
            result.column("single_detection_rate"),
            result.column("multi_detection_rate"),
        )))
        for window in (10, 40):
            single_rate, multi_rate = rates[window]
            tests, hits = by_key[(f"periodic-w{window}", "single")]
            assert tests == 20 and hits / tests == single_rate
            tests, hits = by_key[(f"periodic-w{window}", "multi")]
            assert tests == 20 and hits / tests == multi_rate
        # the notes carry the same breakdown
        assert "audit[periodic-w10/single]" in result.notes

    def test_fig5_audit_notes_and_valid_records(self, tmp_path):
        from repro.experiments import run_fig5
        from repro.obs import audit

        path = tmp_path / "AUDIT_fig5.jsonl"
        result = run_fig5(
            prep_sizes=(100,), n_seeds=1, base_seed=7, audit_path=str(path)
        )
        records = audit.read_audit_jsonl(path)
        assert records, "sampled look-ahead auditing produced no records"
        schemes = {r["context"]["scheme"] for r in records}
        assert schemes <= {"scheme1", "scheme2"}
        assert "audit[" in result.notes


class TestFig7Artifacts:
    """``bench_path=``/``events_path=`` runs leave schema-valid artifacts."""

    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro import obs

        tmp_path = tmp_path_factory.mktemp("fig7")
        bench = tmp_path / "BENCH_fig7.json"
        events = tmp_path / "EVENTS_fig7.jsonl"
        result = run_fig7(
            attack_windows=(10, 40),
            trials=20,
            base_seed=7,
            bench_path=str(bench),
            events_path=str(events),
        )
        return result, obs.read_bench_json(bench), obs.read_events(events)

    def test_bench_is_schema_valid_with_timing_stats(self, artifacts):
        _, payload, _ = artifacts
        assert payload["bench"] == "fig7"
        assert len(payload["results"]) == 4  # 2 windows x 2 tests
        for row in payload["results"]:
            assert row["name"] in ("single", "multi")
            assert row["stats"]["repeats"] == 20
            assert 0 < row["stats"]["min_s"] <= row["stats"]["p95_s"]

    def test_bench_detection_rates_match_table(self, artifacts):
        result, payload, _ = artifacts
        table = {
            (test, w): r
            for w, r in zip(
                result.column("attack_window"),
                zip(
                    result.column("single_detection_rate"),
                    result.column("multi_detection_rate"),
                ),
            )
            for test, r in zip(("single", "multi"), r)
        }
        for row in payload["results"]:
            key = (row["name"], row["params"]["attack_window"])
            assert row["stats"]["detection_rate"] == table[key]

    def test_bench_meta_carries_provenance(self, artifacts):
        _, payload, _ = artifacts
        assert payload["meta"]["experiment"] == "fig7"
        assert payload["meta"]["seed"] == 7

    def test_events_stream_progress(self, artifacts):
        _, _, events = artifacts
        kinds = [e["event"] for e in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "progress_start" in kinds and "progress_end" in kinds
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats, "no heartbeats emitted"
        assert beats[-1]["done"] == 2 * 20
        assert beats[-1]["pct"] == 100.0
        assert beats[-1]["counts"]["tests"] == 2 * 2 * 20

    def test_events_include_metrics_snapshot(self, artifacts):
        _, _, events = artifacts
        (metrics,) = [e for e in events if e["event"] == "metrics"]
        assert "experiments.fig7.test_seconds" in metrics["metrics"]


class TestP2pScale:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        from repro import obs
        from repro.experiments import run_p2p_scale

        tmp_path = tmp_path_factory.mktemp("p2p_scale")
        bench = tmp_path / "BENCH_p2p_scale.json"
        events = tmp_path / "EVENTS_p2p_scale.jsonl"
        result = run_p2p_scale(
            quick=True,
            base_seed=7,
            bench_path=str(bench),
            events_path=str(events),
        )
        return result, obs.read_bench_json(bench), obs.read_events(events)

    def test_columns_and_rows(self, artifacts):
        result, _, _ = artifacts
        assert result.columns == [
            "n_nodes",
            "chord_mean_hops",
            "chord_lookup_s",
            "gossip_rounds",
            "gossip_round_s",
        ]
        assert result.column("n_nodes") == [8, 16]

    def test_lookup_hops_logarithmic(self, artifacts):
        result, _, _ = artifacts
        for n, hops in zip(result.column("n_nodes"), result.column("chord_mean_hops")):
            assert 0 <= hops <= 2 * np.log2(n) + 1

    def test_gossip_converges(self, artifacts):
        result, _, _ = artifacts
        assert all(0 < r < 200 for r in result.column("gossip_rounds"))

    def test_bench_is_schema_valid(self, artifacts):
        _, payload, _ = artifacts
        assert payload["bench"] == "p2p_scale"
        names = {(r["name"], r["params"]["n_nodes"]) for r in payload["results"]}
        assert names == {
            ("chord_lookup", 8),
            ("chord_lookup", 16),
            ("gossip_round", 8),
            ("gossip_round", 16),
        }
        for row in payload["results"]:
            assert row["stats"]["min_s"] > 0
            if row["name"] == "chord_lookup":
                assert row["stats"]["mean_hops"] >= 0
            else:
                assert row["stats"]["rounds"] > 0

    def test_events_stream_progress(self, artifacts):
        _, _, events = artifacts
        kinds = [e["event"] for e in events]
        assert "progress_start" in kinds and "progress_end" in kinds
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats[-1]["counts"]["gossip_rounds"] > 0

    def test_registered_runner_accepts_quick(self):
        from repro.experiments import RUNNERS

        assert RUNNERS["p2p_scale"].__name__ == "run_p2p_scale"


class TestFig9Profile:
    def test_profile_artifact_and_folded_sibling(self, tmp_path):
        from repro import obs

        profile_path = tmp_path / "PROFILE_fig9.json"
        run_fig9(
            history_sizes=(5_000,),
            naive_sizes=(),
            repeats=1,
            base_seed=7,
            profile_path=str(profile_path),
            profile_sample_interval=101,
        )
        payload = obs.read_profile_json(profile_path)
        assert payload["profile"] == "fig9"
        assert payload["meta"]["experiment"] == "fig9"
        paths = [p["path"] for p in payload["phases"]]
        assert "experiments.fig9.run" in paths
        assert any(p.endswith("experiments.fig9.measure") for p in paths)
        assert payload["folded_samples"], "sampling captured no stacks"
        folded = obs.folded_path_for(profile_path)
        assert folded.exists()
        assert "experiments.fig9.run" in folded.read_text()
