"""Tests for the dependency-free SVG renderer."""

import math
import xml.dom.minidom

import pytest

from repro.experiments.common import ExperimentResult
from repro.experiments.svgplot import render_svg, write_svg


def _result(rows=None):
    result = ExperimentResult(
        experiment="figX",
        title='Cost & <shape> "test"',
        columns=["prep", "none", "scheme1"],
    )
    for prep, a, b in rows or [(100, 50.0, 60.0), (200, 10.0, 55.0), (400, 0.0, 52.0)]:
        result.add_row(prep=prep, none=a, scheme1=b)
    return result


class TestRenderSvg:
    def test_valid_xml(self):
        document = render_svg(_result())
        xml.dom.minidom.parseString(document)  # raises on malformed XML

    def test_title_escaped(self):
        document = render_svg(_result())
        assert "&amp;" in document and "&lt;shape&gt;" in document
        assert "<shape>" not in document

    def test_series_and_legend_present(self):
        document = render_svg(_result())
        assert document.count("<polyline") == 2
        assert ">none</text>" in document
        assert ">scheme1</text>" in document

    def test_markers_match_points(self):
        document = render_svg(_result())
        assert document.count("<circle") == 6  # 3 rows x 2 series

    def test_nan_breaks_the_line(self):
        result = _result(
            rows=[
                (100, 1.0, 2.0),
                (200, float("nan"), 2.0),
                (400, 3.0, 2.0),
                (800, 4.0, 2.0),
            ]
        )
        document = render_svg(result)
        # series 'none' splits into a lone point + a 3-point segment,
        # so only one polyline for it (plus one for scheme1)
        assert document.count("<polyline") == 2
        assert document.count("<circle") == 7

    def test_explicit_series_selection(self):
        document = render_svg(_result(), series=["none"])
        assert document.count("<polyline") == 1

    def test_log_x(self):
        result = ExperimentResult(
            experiment="fig9", title="t", columns=["n", "seconds"]
        )
        for n, s in [(10_000, 0.001), (100_000, 0.01), (800_000, 0.08)]:
            result.add_row(n=n, seconds=s)
        document = render_svg(result, log_x=True)
        xml.dom.minidom.parseString(document)
        assert "10000" in document  # tick labels back-transformed

    def test_log_x_rejects_nonpositive(self):
        result = ExperimentResult(experiment="f", title="t", columns=["x", "y"])
        result.add_row(x=0, y=1.0)
        result.add_row(x=1, y=1.0)
        with pytest.raises(ValueError):
            render_svg(result, log_x=True)

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError):
            render_svg(ExperimentResult(experiment="f", title="t", columns=["x", "y"]))

    def test_all_nan_rejected(self):
        result = ExperimentResult(experiment="f", title="t", columns=["x", "y"])
        result.add_row(x=1, y=float("nan"))
        with pytest.raises(ValueError):
            render_svg(result)


class TestWriteSvg:
    def test_writes_file(self, tmp_path):
        target = tmp_path / "fig.svg"
        path = write_svg(_result(), target)
        assert path == str(target)
        xml.dom.minidom.parse(str(target))


class TestCliSvgDir:
    def test_svg_dir_flag(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        out_dir = tmp_path / "figs"
        assert main(["fig8", "--quick", "--svg-dir", str(out_dir)]) == 0
        capsys.readouterr()
        target = out_dir / "fig8.svg"
        assert target.exists()
        xml.dom.minidom.parse(str(target))
