"""Tests for repro.experiments.report."""

import pytest

from repro.experiments import RUNNERS
from repro.experiments.common import ExperimentResult
from repro.experiments.report import (
    EXPECTED_SHAPES,
    render_report,
    result_to_markdown,
)


def _result():
    result = ExperimentResult(
        experiment="fig8",
        title="A | tricky title",
        columns=["x", "y"],
        notes="some | notes",
    )
    result.add_row(x=1, y=0.123456)
    result.add_row(x=2, y=0.5)
    return result


class TestResultToMarkdown:
    def test_section_structure(self):
        md = result_to_markdown(_result())
        assert md.startswith("## fig8:")
        assert "*Expected shape:*" in md  # fig8 has a registered shape
        assert "| x | y |" in md
        assert "| 1 | 0.1235 |" in md
        assert "| 2 | 0.5 |" in md

    def test_pipes_escaped(self):
        md = result_to_markdown(_result())
        assert "A \\| tricky title" in md
        assert "some \\| notes" in md

    def test_unknown_experiment_has_no_shape_line(self):
        result = ExperimentResult(experiment="figX", title="t", columns=["a"])
        result.add_row(a=1)
        assert "*Expected shape:*" not in result_to_markdown(result)

    def test_all_runners_have_expected_shapes(self):
        assert set(EXPECTED_SHAPES) == set(RUNNERS)
        for shape in EXPECTED_SHAPES.values():
            assert shape.strip()


class TestRenderReport:
    def test_document_structure(self):
        doc = render_report([_result(), _result()], title="My report", preamble="intro")
        assert doc.startswith("# My report")
        assert "intro" in doc
        assert doc.count("## fig8:") == 2

    def test_empty_results_rejected(self):
        with pytest.raises(ValueError):
            render_report([])


class TestCliMarkdownFlag:
    def test_markdown_file_written(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        target = tmp_path / "report.md"
        assert main(["fig8", "--quick", "--markdown", str(target)]) == 0
        capsys.readouterr()
        content = target.read_text()
        assert content.startswith("# Reproduced evaluation figures")
        assert "## fig8:" in content
        assert "|---|" in content
