"""Tests for the extension experiment runners (ext-roc / ext-cheat-rate / ext-sybil)."""

import pytest

from repro.experiments import RUNNERS
from repro.experiments.extensions import (
    run_ext_cheat_rate,
    run_ext_roc,
    run_ext_sybil,
)


class TestRegistration:
    def test_extensions_registered_in_cli(self):
        assert {"ext-roc", "ext-cheat-rate", "ext-sybil"} <= set(RUNNERS)

    def test_cli_runs_extension(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ext-sybil", "--quick"]) == 0
        assert "joining_cost" in capsys.readouterr().out


class TestExtRoc:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_roc(confidences=(0.7, 0.95), trials=30, base_seed=5)

    def test_columns_and_rows(self, result):
        assert result.columns == [
            "confidence",
            "single_fpr",
            "single_tpr",
            "multi_fpr",
            "multi_tpr",
        ]
        assert len(result.rows) == 2

    def test_rates_are_probabilities(self, result):
        for row in result.rows:
            for column in result.columns[1:]:
                assert 0.0 <= row[column] <= 1.0

    def test_auc_recorded_in_notes(self, result):
        assert "AUC single=" in result.notes
        assert "multi=" in result.notes

    def test_stricter_confidence_fewer_alarms(self, result):
        lenient, strict = result.rows[0], result.rows[-1]
        assert lenient["single_fpr"] >= strict["single_fpr"]


class TestExtCheatRate:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_cheat_rate(
            history_lengths=(200, 400), trials=8, base_seed=5
        )

    def test_rates_bounded_by_trust_cap(self, result):
        for row in result.rows:
            assert row["trust_cap"] == pytest.approx(0.1)
            assert 0.0 <= row["single"] <= 0.1 + 1e-9
            assert 0.0 <= row["multi"] <= 0.1 + 1e-9

    def test_camouflage_saturates_cap(self, result):
        # the paper's conclusion: iid cheating is statistically honest
        assert result.rows[-1]["single"] >= 0.07


class TestExtSybil:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ext_sybil()

    def test_cost_monotone_in_fee(self, result):
        costs = result.column("campaign_cost")
        assert costs == sorted(costs)

    def test_profitability_flips_once(self, result):
        flags = [row["profitable"] == "True" for row in result.rows]
        # profitable at low fees, unprofitable at high ones, one crossover
        assert flags[0] is True
        assert flags[-1] is False
        assert sum(1 for a, b in zip(flags, flags[1:]) if a != b) == 1

    def test_gain_constant(self, result):
        gains = set(result.column("campaign_gain"))
        assert len(gains) == 1
