"""End-to-end integration tests across packages.

These exercise the paper's central claims through the public API only —
the same calls a downstream user would make.
"""

import numpy as np
import pytest

import repro
from repro import (
    AssessmentStatus,
    AverageTrust,
    BehaviorTestConfig,
    CollusionResilientMultiTest,
    FeedbackLedger,
    Feedback,
    MultiBehaviorTest,
    Rating,
    SingleBehaviorTest,
    TransactionHistory,
    TwoPhaseAssessor,
    WeightedTrust,
    generate_honest_outcomes,
)
from repro.adversary import (
    ColludingStrategicAttacker,
    StrategicAttacker,
    periodic_attack_history,
)


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_readme_quickstart_snippet(self):
        history = TransactionHistory.from_outcomes(
            generate_honest_outcomes(500, 0.95, seed=42)
        )
        assessor = TwoPhaseAssessor(
            behavior_test=MultiBehaviorTest(),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        assert assessor.assess(history).status is AssessmentStatus.TRUSTED


class TestCentralClaim:
    """Same ratio, different pattern: only the two-phase approach separates them."""

    def test_trust_function_cannot_separate_but_screen_can(self):
        n = 1000
        honest = generate_honest_outcomes(n, 0.95, seed=1)
        hibernating = np.concatenate(
            [np.ones(n - 50, dtype=np.int8), np.zeros(50, dtype=np.int8)]
        )
        trust = AverageTrust()
        assert trust.score(honest) == pytest.approx(trust.score(hibernating), abs=0.02)

        screen = MultiBehaviorTest()
        assert screen.test(honest).passed
        assert not screen.test(hibernating).passed


class TestAttackCostOrdering:
    """The Fig. 3 story end to end: none <= scheme1 <= scheme2 at long preps."""

    def test_cost_ordering_average_function(self):
        prep = 800
        costs = {}
        for name, screen in [
            ("none", None),
            ("scheme1", SingleBehaviorTest()),
            ("scheme2", MultiBehaviorTest()),
        ]:
            attacker = StrategicAttacker(AverageTrust(), screen)
            costs[name] = np.mean(
                [attacker.run(prep, seed=s).cost for s in range(3)]
            )
        assert costs["none"] == 0.0
        assert costs["none"] < costs["scheme1"] <= costs["scheme2"]


class TestCollusionStory:
    def test_collusion_free_without_testing_costly_with(self):
        bare = ColludingStrategicAttacker(WeightedTrust(0.5), None, target_bads=10)
        screened = ColludingStrategicAttacker(
            WeightedTrust(0.5), CollusionResilientMultiTest(), target_bads=10
        )
        assert bare.run(300, seed=2).cost == 0
        assert screened.run(300, seed=2).cost > 0


class TestDetectionMonotonicity:
    def test_larger_attack_windows_harder_to_catch(self):
        test_ = SingleBehaviorTest()
        rng = np.random.default_rng(3)

        def rate(window):
            hits = 0
            for _ in range(40):
                trace = periodic_attack_history(800, window, seed=rng)
                hits += not test_.test(trace).passed
            return hits / 40

        assert rate(10) > rate(80)


class TestLedgerRoundTrip:
    def test_ledger_to_assessment(self):
        ledger = FeedbackLedger()
        rng = np.random.default_rng(4)
        for t in range(600):
            ledger.record(
                Feedback(
                    time=float(t),
                    server="shop",
                    client=f"buyer-{int(rng.integers(0, 40))}",
                    rating=Rating.POSITIVE if rng.random() < 0.96 else Rating.NEGATIVE,
                )
            )
        assessor = TwoPhaseAssessor(
            behavior_test=CollusionResilientMultiTest(),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        result = assessor.assess(ledger.history("shop"), ledger=ledger)
        assert result.status is AssessmentStatus.TRUSTED


class TestUnstructuredOverlayAssessment:
    """The Sec. 2 availability assumption on a Gnutella-style overlay."""

    def _populated_overlay(self):
        from repro.p2p import UnstructuredOverlay

        overlay = UnstructuredOverlay(30, degree=4, seed=6)
        honest = generate_honest_outcomes(600, 0.95, seed=7)
        attack = np.tile([0] + [1] * 9, 60)
        for server, outcomes in [("honest-srv", honest), ("cheat-srv", attack)]:
            for t, outcome in enumerate(outcomes):
                peer = overlay.peers[t % 30]
                overlay.record(
                    peer,
                    Feedback(
                        time=float(t),
                        server=server,
                        client=peer,
                        rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                    ),
                )
        return overlay

    def test_flooding_gathers_enough_to_assess(self):
        overlay = self._populated_overlay()
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        verdicts = {}
        for server in ("honest-srv", "cheat-srv"):
            result = overlay.flood_query(overlay.peers[0], server, ttl=30)
            history = TransactionHistory.from_feedbacks(result.feedbacks)
            verdicts[server] = assessor.assess(history).status
        assert verdicts["honest-srv"] is AssessmentStatus.TRUSTED
        assert verdicts["cheat-srv"] is AssessmentStatus.SUSPICIOUS

    def test_partial_random_walk_view_keeps_honest_trusted(self):
        # partial visibility must never flip an honest server to
        # suspicious (the thinned iid sequence is still iid)
        overlay = self._populated_overlay()
        result = overlay.random_walk_query(
            overlay.peers[0], "honest-srv", walkers=2, walk_length=8, seed=9
        )
        assert result.peers_reached < 30  # genuinely partial view
        assert 40 <= len(result.feedbacks) < 600
        history = TransactionHistory.from_feedbacks(result.feedbacks)
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        assert assessor.assess(history).status is AssessmentStatus.TRUSTED


class TestConfigPlumbing:
    def test_custom_config_flows_through_two_phase(self):
        config = BehaviorTestConfig(window_size=20, confidence=0.99)
        screen = SingleBehaviorTest(config)
        assessor = TwoPhaseAssessor(
            behavior_test=screen, trust_function=AverageTrust()
        )
        history = TransactionHistory.from_outcomes(
            generate_honest_outcomes(400, 0.95, seed=5)
        )
        result = assessor.assess(history)
        assert result.behavior.window_size == 20
