"""Structured event log: JSONL round-trip and run metadata."""

import json

import pytest

from repro import obs
from repro.core.config import BehaviorTestConfig


class TestRunMetadata:
    def test_metadata_fields(self):
        meta = obs.run_metadata(seed=2008, config=BehaviorTestConfig(), extra_key="v")
        assert meta["seed"] == 2008
        assert isinstance(meta["config_hash"], str) and len(meta["config_hash"]) == 12
        assert meta["python"].count(".") == 2
        assert meta["extra_key"] == "v"
        assert "timestamp" in meta

    def test_config_fingerprint_stable_and_discriminating(self):
        a1 = obs.config_fingerprint(BehaviorTestConfig())
        a2 = obs.config_fingerprint(BehaviorTestConfig())
        b = obs.config_fingerprint(BehaviorTestConfig(window_size=20))
        assert a1 == a2
        assert a1 != b
        assert obs.config_fingerprint(None) is None
        assert obs.config_fingerprint({"k": 1}) == obs.config_fingerprint({"k": 1})

    def test_git_revision_in_repo(self):
        rev = obs.git_revision()
        # inside this repository a short rev must come back
        assert rev is None or (isinstance(rev, str) and len(rev) >= 7)


class TestEventLogRoundTrip:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.EventLog(path, run_meta=obs.run_metadata(seed=1)) as log:
            log.emit("phase", name="calibration", n=400)
            log.emit("done", ok=True)
        events = obs.read_events(path)
        assert [e["event"] for e in events] == ["run_start", "phase", "done"]
        assert events[0]["seed"] == 1
        assert events[1]["name"] == "calibration"
        assert events[1]["n"] == 400
        assert events[2]["ok"] is True
        assert all("time" in e for e in events)
        # memory copy matches the file copy
        assert [e["event"] for e in log.events] == [e["event"] for e in events]

    def test_memory_only_log(self):
        log = obs.EventLog()
        log.emit("x", a=1)
        assert log.path is None
        assert log.events[0]["a"] == 1

    def test_metrics_snapshot_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        reg = obs.MetricsRegistry()
        reg.inc("c", 3, kind="k")
        reg.observe("h", 0.5)
        with obs.EventLog(path) as log:
            log.emit_metrics(reg)
        (event,) = obs.read_events(path)
        assert event["event"] == "metrics"
        assert event["metrics"]["c"][0]["value"] == 3.0
        assert event["metrics"]["h"][0]["summary"]["count"] == 1.0

    def test_crash_leaves_flushed_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = obs.EventLog(path)
        log.emit("one")
        # no close(): the line must already be on disk
        assert len(obs.read_events(path)) == 1
        log.close()

    def test_unserializable_fields_fall_back_to_repr(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.EventLog(path) as log:
            log.emit("odd", obj=object())
        (event,) = obs.read_events(path)
        assert "object object" in event["obj"]

    def test_read_events_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="line 1"):
            obs.read_events(path)
        path.write_text(json.dumps({"no_event_key": 1}) + "\n", encoding="utf-8")
        with pytest.raises(ValueError, match="not an event"):
            obs.read_events(path)
