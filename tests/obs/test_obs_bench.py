"""The BENCH_*.json artifact format: write, validate, read, render."""

import json

import pytest

from repro import obs

GOOD_ROW = {
    "name": "multi_optimized",
    "params": {"history_size": 1000},
    "stats": {"mean_s": 0.5, "min_s": 0.4, "repeats": 3},
}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        payload = obs.write_bench_json(
            path, "x", [GOOD_ROW], meta={"seed": 1, "git_rev": "abc"}
        )
        assert payload["schema_version"] == obs.BENCH_SCHEMA_VERSION
        loaded = obs.read_bench_json(path)
        assert loaded == json.loads(path.read_text())
        assert loaded["results"][0]["stats"]["min_s"] == 0.4
        assert loaded["meta"]["seed"] == 1

    def test_render_bench_table(self):
        payload = obs.bench_payload("x", [GOOD_ROW], meta={"seed": 1})
        table = obs.render_bench(payload)
        assert "multi_optimized" in table
        assert "history_size" in table
        assert "seed=1" in table


class TestValidator:
    def test_accepts_good_payload(self):
        obs.validate_bench_payload(obs.bench_payload("x", [GOOD_ROW]))

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("results"), "missing key"),
            (lambda p: p.update(results=[]), "non-empty"),
            (lambda p: p.update(schema_version=99), "schema_version"),
            (lambda p: p.update(bench=""), "bench"),
            (lambda p: p.update(meta=[]), "meta"),
            (lambda p: p["results"][0].pop("name"), "name"),
            (lambda p: p["results"][0].update(params="x"), "params"),
            (lambda p: p["results"][0]["stats"].pop("min_s"), "min_s"),
            (
                lambda p: p["results"][0]["stats"].update(mean_s="fast"),
                "mean_s",
            ),
            (
                lambda p: p["results"][0]["stats"].update(repeats=True),
                "repeats",
            ),
        ],
    )
    def test_rejects_malformed(self, mutate, message):
        payload = {
            "bench": "x",
            "schema_version": obs.BENCH_SCHEMA_VERSION,
            "meta": {},
            "results": [json.loads(json.dumps(GOOD_ROW))],
        }
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            obs.validate_bench_payload(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            obs.validate_bench_payload([1, 2])

    def test_extra_keys_tolerated(self):
        payload = obs.bench_payload("x", [dict(GOOD_ROW, extra="fine")])
        obs.validate_bench_payload(payload)
