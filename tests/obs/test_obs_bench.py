"""The BENCH_*.json artifact format: write, validate, read, render."""

import json

import pytest

from repro import obs

GOOD_ROW = {
    "name": "multi_optimized",
    "params": {"history_size": 1000},
    "stats": {"mean_s": 0.5, "min_s": 0.4, "repeats": 3},
}


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        payload = obs.write_bench_json(
            path, "x", [GOOD_ROW], meta={"seed": 1, "git_rev": "abc"}
        )
        assert payload["schema_version"] == obs.BENCH_SCHEMA_VERSION
        loaded = obs.read_bench_json(path)
        assert loaded == json.loads(path.read_text())
        assert loaded["results"][0]["stats"]["min_s"] == 0.4
        assert loaded["meta"]["seed"] == 1

    def test_render_bench_table(self):
        payload = obs.bench_payload("x", [GOOD_ROW], meta={"seed": 1})
        table = obs.render_bench(payload)
        assert "multi_optimized" in table
        assert "history_size" in table
        assert "seed=1" in table


class TestValidator:
    def test_accepts_good_payload(self):
        obs.validate_bench_payload(obs.bench_payload("x", [GOOD_ROW]))

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.pop("results"), "missing key"),
            (lambda p: p.update(results=[]), "non-empty"),
            (lambda p: p.update(schema_version=99), "schema_version"),
            (lambda p: p.update(bench=""), "bench"),
            (lambda p: p.update(meta=[]), "meta"),
            (lambda p: p["results"][0].pop("name"), "name"),
            (lambda p: p["results"][0].update(params="x"), "params"),
            (lambda p: p["results"][0]["stats"].pop("min_s"), "min_s"),
            (
                lambda p: p["results"][0]["stats"].update(mean_s="fast"),
                "mean_s",
            ),
            (
                lambda p: p["results"][0]["stats"].update(repeats=True),
                "repeats",
            ),
        ],
    )
    def test_rejects_malformed(self, mutate, message):
        payload = {
            "bench": "x",
            "schema_version": obs.BENCH_SCHEMA_VERSION,
            "meta": {},
            "results": [json.loads(json.dumps(GOOD_ROW))],
        }
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            obs.validate_bench_payload(payload)

    def test_rejects_non_object(self):
        with pytest.raises(ValueError):
            obs.validate_bench_payload([1, 2])

    def test_extra_keys_tolerated(self):
        payload = obs.bench_payload("x", [dict(GOOD_ROW, extra="fine")])
        obs.validate_bench_payload(payload)


def _payload(rows):
    return obs.bench_payload("fig9", [json.loads(json.dumps(r)) for r in rows])


def _row(name, params, **stats):
    return {"name": name, "params": params, "stats": stats}


class TestCompare:
    BASE = [
        _row("single", {"history_size": 1000}, mean_s=0.10, min_s=0.09, p95_s=0.12, repeats=3),
        _row("multi", {"history_size": 1000}, mean_s=0.50, min_s=0.45, p95_s=0.60, repeats=3),
    ]

    def test_identical_payloads_pass(self):
        diff = obs.compare_bench_payloads(_payload(self.BASE), _payload(self.BASE))
        assert diff["ok"]
        assert not diff["regressions"]
        assert all(row["ratio"] == pytest.approx(1.0) for row in diff["rows"])

    def test_regression_past_gate_fails(self):
        slow = [
            _row("single", {"history_size": 1000}, mean_s=0.10, min_s=0.09, p95_s=0.12, repeats=3),
            _row("multi", {"history_size": 1000}, mean_s=0.80, min_s=0.70, p95_s=0.95, repeats=3),
        ]
        diff = obs.compare_bench_payloads(_payload(self.BASE), _payload(slow))
        assert not diff["ok"]
        (bad,) = diff["regressions"]
        assert bad["name"] == "multi"
        assert bad["ratio"] == pytest.approx(0.95 / 0.60)

    def test_gate_is_configurable(self):
        slower = [
            _row("single", {"history_size": 1000}, mean_s=0.10, min_s=0.09, p95_s=0.13, repeats=3),
            _row("multi", {"history_size": 1000}, mean_s=0.50, min_s=0.45, p95_s=0.65, repeats=3),
        ]
        lenient = obs.compare_bench_payloads(_payload(self.BASE), _payload(slower))
        assert lenient["ok"]  # ~8% slower passes the default 20% gate
        strict = obs.compare_bench_payloads(
            _payload(self.BASE), _payload(slower), max_regression=0.05
        )
        assert not strict["ok"]

    def test_prefers_p95_falls_back_to_mean(self):
        with_p95 = obs.compare_bench_payloads(_payload(self.BASE), _payload(self.BASE))
        assert all(row["stat"] == "p95_s" for row in with_p95["rows"])
        no_p95 = [
            _row("single", {"history_size": 1000}, mean_s=0.10, min_s=0.09, repeats=3),
        ]
        diff = obs.compare_bench_payloads(_payload(no_p95), _payload(no_p95))
        assert all(row["stat"] == "mean_s" for row in diff["rows"])

    def test_unmatched_rows_reported_not_fatal(self):
        extra = self.BASE + [
            _row("naive", {"history_size": 500}, mean_s=1.0, min_s=0.9, repeats=1),
        ]
        diff = obs.compare_bench_payloads(_payload(self.BASE), _payload(extra))
        assert diff["ok"]
        assert diff["only_in_candidate"] == [{"name": "naive", "params": {"history_size": 500}}]
        reverse = obs.compare_bench_payloads(_payload(extra), _payload(self.BASE))
        assert reverse["only_in_baseline"] == [{"name": "naive", "params": {"history_size": 500}}]

    def test_different_bench_names_rejected(self):
        other = obs.bench_payload("fig3", [json.loads(json.dumps(self.BASE[0]))])
        with pytest.raises(ValueError, match="different benches"):
            obs.compare_bench_payloads(_payload(self.BASE), other)

    def test_render_marks_regressions(self):
        slow = [
            _row("single", {"history_size": 1000}, mean_s=0.10, min_s=0.09, p95_s=0.30, repeats=3),
            _row("multi", {"history_size": 1000}, mean_s=0.50, min_s=0.45, p95_s=0.60, repeats=3),
        ]
        diff = obs.compare_bench_payloads(_payload(self.BASE), _payload(slow))
        text = obs.render_bench_diff(diff)
        assert "REGRESSED" in text
        assert "FAIL" in text
        ok_text = obs.render_bench_diff(
            obs.compare_bench_payloads(_payload(self.BASE), _payload(self.BASE))
        )
        assert "OK" in ok_text
