"""Node-scoped metric attribution: stamping, nesting, cardinality guard."""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import scope
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_scope():
    scope.reset()
    yield
    scope.reset()


class TestNodeScope:
    def test_inactive_outside_any_scope(self):
        assert scope.active is False
        assert scope.current_node() is None
        assert scope.attribution_node() is None

    def test_active_inside_and_restored_after(self):
        with scope.node_scope("n1"):
            assert scope.active is True
            assert scope.current_node() == "n1"
        assert scope.active is False
        assert scope.current_node() is None

    def test_nesting_innermost_wins(self):
        with scope.node_scope("outer"):
            with scope.node_scope("inner"):
                assert scope.current_node() == "inner"
            # leaving the inner scope restores the outer attribution
            assert scope.current_node() == "outer"
            assert scope.active is True
        assert scope.active is False

    def test_node_id_coerced_to_str(self):
        with scope.node_scope(42):
            assert scope.current_node() == "42"

    def test_scope_survives_exception(self):
        with pytest.raises(RuntimeError):
            with scope.node_scope("n1"):
                raise RuntimeError("boom")
        assert scope.active is False
        assert scope.current_node() is None

    def test_exported_from_obs_package(self):
        assert obs.node_scope is scope.node_scope
        assert obs.current_node is scope.current_node


class TestRegistryStamping:
    def test_metrics_created_in_scope_get_node_label(self):
        registry = MetricsRegistry()
        with scope.node_scope("n1"):
            registry.inc("p2p.test.messages")
            registry.observe("p2p.test.latency", 0.5)
        snapshot = registry.snapshot()
        assert snapshot["p2p.test.messages"][0]["labels"] == {"node": "n1"}
        assert snapshot["p2p.test.latency"][0]["labels"] == {"node": "n1"}

    def test_metrics_outside_scope_unstamped(self):
        registry = MetricsRegistry()
        registry.inc("p2p.test.messages")
        snapshot = registry.snapshot()
        assert snapshot["p2p.test.messages"][0]["labels"] == {}

    def test_explicit_node_label_not_overwritten(self):
        registry = MetricsRegistry()
        with scope.node_scope("ambient"):
            registry.inc("p2p.test.messages", node="explicit")
        snapshot = registry.snapshot()
        assert snapshot["p2p.test.messages"][0]["labels"] == {"node": "explicit"}

    def test_same_name_splits_per_node(self):
        registry = MetricsRegistry()
        for node, amount in (("a", 1), ("b", 2)):
            with scope.node_scope(node):
                registry.inc("p2p.test.messages", amount)
        assert registry.value("p2p.test.messages", node="a") == 1
        assert registry.value("p2p.test.messages", node="b") == 2


class TestCardinalityGuard:
    def test_overflow_sentinel_past_cap(self):
        scope.reset(max_nodes_cap=2)
        registry = MetricsRegistry()
        for node in ("a", "b", "c", "d"):
            with scope.node_scope(node):
                registry.inc("p2p.test.messages")
        assert registry.value("p2p.test.messages", node="a") == 1
        assert registry.value("p2p.test.messages", node="b") == 1
        # c and d collapse into the overflow sentinel series
        assert (
            registry.value("p2p.test.messages", node=scope.OVERFLOW_NODE) == 2
        )
        assert scope.dropped_nodes == 2

    def test_admitted_nodes_stay_admitted(self):
        scope.reset(max_nodes_cap=1)
        registry = MetricsRegistry()
        with scope.node_scope("a"):
            registry.inc("m")
        with scope.node_scope("b"):
            registry.inc("m")
        with scope.node_scope("a"):
            registry.inc("m")
        assert registry.value("m", node="a") == 2
        assert registry.value("m", node=scope.OVERFLOW_NODE) == 1

    def test_reset_restores_default_cap(self):
        scope.reset(max_nodes_cap=1)
        assert scope.max_nodes == 1
        scope.reset()
        assert scope.max_nodes == scope.DEFAULT_MAX_NODES
        assert scope.dropped_nodes == 0


class TestSnapshotExtraction:
    def _registry(self):
        registry = MetricsRegistry()
        registry.inc("experiment.runs")  # unscoped
        for node in ("a", "b"):
            with scope.node_scope(node):
                registry.inc("p2p.messages", 3)
                registry.observe("p2p.hops", 2.0)
        return registry

    def test_nodes_in(self):
        snapshot = self._registry().snapshot()
        assert scope.nodes_in(snapshot) == ["a", "b"]

    def test_node_snapshot_strips_label(self):
        snapshot = self._registry().snapshot()
        view = scope.node_snapshot(snapshot, "a")
        assert set(view) == {"p2p.messages", "p2p.hops"}
        assert view["p2p.messages"][0]["labels"] == {}
        assert view["p2p.messages"][0]["value"] == 3
        assert view["p2p.hops"][0]["summary"]["count"] == 1

    def test_split_snapshot_partition(self):
        snapshot = self._registry().snapshot()
        per_node, unscoped = scope.split_snapshot(snapshot)
        assert set(per_node) == {"a", "b"}
        assert set(unscoped) == {"experiment.runs"}
        # each node view is itself registry-snapshot shaped
        assert per_node["b"]["p2p.messages"][0]["value"] == 3
        assert "node" not in per_node["b"]["p2p.messages"][0]["labels"]
