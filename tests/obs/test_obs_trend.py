"""Multi-run bench history loading and trend regression flagging."""

import json

import pytest

from repro.obs.bench import (
    bench_trend,
    load_bench_history,
    render_bench_trend,
    write_bench_json,
)


def _row(p95, *, name="multi_optimized", history_size=100_000):
    return {
        "name": name,
        "params": {"history_size": history_size},
        "stats": {"mean_s": p95 * 0.9, "min_s": p95 * 0.8, "p95_s": p95, "repeats": 3},
    }


def _history_dir(tmp_path, p95s, *, bench="fig9"):
    """Write one timestamped BENCH file per p95 value; returns the dir."""
    for i, p95 in enumerate(p95s):
        write_bench_json(
            tmp_path / f"BENCH_{bench}_{i:03d}.json",
            bench,
            [_row(p95)],
            meta={"timestamp": 1_000_000.0 + i, "git_rev": f"rev{i}"},
        )
    return tmp_path


class TestLoadBenchHistory:
    def test_orders_by_meta_timestamp(self, tmp_path):
        # write newest first so filename order disagrees with timestamps
        write_bench_json(
            tmp_path / "BENCH_a.json", "fig9", [_row(0.3)], meta={"timestamp": 200.0}
        )
        write_bench_json(
            tmp_path / "BENCH_b.json", "fig9", [_row(0.1)], meta={"timestamp": 100.0}
        )
        history = load_bench_history(tmp_path)
        assert [p["_source"] for p in history] == ["BENCH_b.json", "BENCH_a.json"]

    def test_skips_invalid_artifacts_and_counts_them(self, tmp_path):
        _history_dir(tmp_path, [0.3, 0.31])
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        (tmp_path / "BENCH_badschema.json").write_text(json.dumps({"bench": "x"}))
        history = load_bench_history(tmp_path)
        assert len(history) == 2
        assert history[0]["_skipped"] == 2

    def test_bench_filter(self, tmp_path):
        _history_dir(tmp_path, [0.3])
        write_bench_json(tmp_path / "BENCH_other.json", "other", [_row(0.5)])
        assert len(load_bench_history(tmp_path, bench="fig9")) == 1
        assert len(load_bench_history(tmp_path)) == 2

    def test_non_directory_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_bench_history(tmp_path / "absent")

    def test_non_bench_files_ignored(self, tmp_path):
        _history_dir(tmp_path, [0.3])
        (tmp_path / "PROFILE_fig9.json").write_text("{}")
        (tmp_path / "notes.txt").write_text("hi")
        assert len(load_bench_history(tmp_path)) == 1


class TestBenchTrend:
    def test_stable_history_is_ok(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.31, 0.29, 0.30]))
        trend = bench_trend(history)
        assert trend["ok"]
        assert trend["runs"] == 4
        (series,) = trend["series"]
        assert series["stat"] == "p95_s"
        assert len(series["points"]) == 4
        assert not series["regressed"]

    def test_injected_2x_p95_regression_is_flagged(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.31, 0.29, 0.60]))
        trend = bench_trend(history)
        assert not trend["ok"]
        (flagged,) = trend["regressions"]
        assert flagged["name"] == "multi_optimized"
        assert flagged["baseline_median"] == pytest.approx(0.30)
        assert flagged["ratio"] == pytest.approx(2.0)

    def test_latest_compared_to_median_not_to_worst_run(self, tmp_path):
        # one noisy historical outlier must not mask the comparison
        history = load_bench_history(_history_dir(tmp_path, [0.30, 5.0, 0.30, 0.33]))
        trend = bench_trend(history)
        (series,) = trend["series"]
        assert series["baseline_median"] == pytest.approx(0.30)
        assert trend["ok"]  # 0.33/0.30 = 1.1x, under the 20% gate

    def test_single_run_never_regresses(self, tmp_path):
        trend = bench_trend(load_bench_history(_history_dir(tmp_path, [0.30])))
        assert trend["ok"]
        (series,) = trend["series"]
        assert series["baseline_median"] is None
        assert series["ratio"] is None

    def test_empty_history(self):
        trend = bench_trend([])
        assert trend["ok"]
        assert trend["runs"] == 0
        assert trend["series"] == []

    def test_custom_gate_threshold(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.30, 0.36]))
        assert bench_trend(history, max_regression=0.25)["ok"]
        assert not bench_trend(history, max_regression=0.10)["ok"]

    def test_negative_gate_rejected(self):
        with pytest.raises(ValueError):
            bench_trend([], max_regression=-0.1)

    def test_series_split_by_name_and_params(self, tmp_path):
        for i in range(2):
            write_bench_json(
                tmp_path / f"BENCH_run{i}.json",
                "fig9",
                [
                    _row(0.3),
                    _row(0.1, name="naive"),
                    _row(0.5, history_size=200_000),
                ],
                meta={"timestamp": 100.0 + i},
            )
        trend = bench_trend(load_bench_history(tmp_path))
        assert len(trend["series"]) == 3
        assert all(len(s["points"]) == 2 for s in trend["series"])


class TestTrendTolerance:
    """Schema drift must degrade to flags and counts, never KeyError."""

    def test_invalid_payload_in_list_is_skipped_and_counted(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.31]))
        history.insert(1, {"bench": "fig9"})  # fails schema validation
        trend = bench_trend(history)
        assert trend["invalid_payloads"] == 1
        assert trend["ok"]
        (series,) = trend["series"]
        assert len(series["points"]) == 2

    def test_malformed_rows_are_skipped_and_counted(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.31]))
        # passes base validation (mean_s/min_s/repeats numeric) but the
        # preferred gate stat p95_s is junk
        history[0]["results"].append(
            {
                "name": "weird",
                "params": {},
                "stats": {"mean_s": 0.1, "min_s": 0.1, "repeats": 1, "p95_s": "oops"},
            }
        )
        trend = bench_trend(history)
        assert trend["malformed_rows"] == 1
        assert trend["ok"]

    def test_series_missing_from_latest_run_is_stale_not_gating(self, tmp_path):
        """A metric family dropped (or newly added) mid-history is flagged.

        The retired series' last point is 4x its median — under the old
        behavior that gated as a regression even though the latest run
        no longer measures it at all.
        """
        write_bench_json(
            tmp_path / "BENCH_run0.json",
            "fig9",
            [_row(0.30), _row(0.10, name="retired")],
            meta={"timestamp": 100.0},
        )
        write_bench_json(
            tmp_path / "BENCH_run1.json",
            "fig9",
            [_row(0.31), _row(0.40, name="retired")],
            meta={"timestamp": 101.0},
        )
        write_bench_json(
            tmp_path / "BENCH_run2.json",
            "fig9",
            [_row(0.30)],  # 'retired' family gone
            meta={"timestamp": 102.0},
        )
        trend = bench_trend(load_bench_history(tmp_path))
        by_name = {s["name"]: s for s in trend["series"]}
        assert by_name["retired"]["stale"]
        assert by_name["retired"]["missing_runs"] == 1
        assert not by_name["retired"]["regressed"]
        assert not by_name["multi_optimized"]["stale"]
        assert trend["ok"]
        assert [s["name"] for s in trend["stale"]] == ["retired"]

    def test_new_family_joining_late_is_fresh(self, tmp_path):
        """A family that first appears in the newest run is not stale."""
        write_bench_json(
            tmp_path / "BENCH_run0.json",
            "fig9",
            [_row(0.30)],
            meta={"timestamp": 100.0},
        )
        write_bench_json(
            tmp_path / "BENCH_run1.json",
            "slo",
            [_row(0.1, name="slo.serve.latency.assess")],
            meta={"timestamp": 101.0},
        )
        trend = bench_trend(load_bench_history(tmp_path))
        by_name = {s["name"]: s for s in trend["series"]}
        assert not by_name["slo.serve.latency.assess"]["stale"]
        # the fig9 series is absent from the newest (slo) run — stale
        assert by_name["multi_optimized"]["stale"]

    def test_stale_rendering(self, tmp_path):
        write_bench_json(
            tmp_path / "BENCH_run0.json",
            "fig9",
            [_row(0.30), _row(0.10, name="retired")],
            meta={"timestamp": 100.0},
        )
        write_bench_json(
            tmp_path / "BENCH_run1.json",
            "fig9",
            [_row(0.31)],
            meta={"timestamp": 101.0},
        )
        text = render_bench_trend(bench_trend(load_bench_history(tmp_path)))
        assert "STALE(-1)" in text
        assert "1 series missing from the latest run(s)" in text
        assert "OK: no series regressed past the gate" in text


class TestRenderBenchTrend:
    def test_report_shape(self, tmp_path):
        history = load_bench_history(_history_dir(tmp_path, [0.30, 0.31, 0.60]))
        text = render_bench_trend(bench_trend(history))
        assert "bench trend: 3 run(s)" in text
        assert "fig9/multi_optimized{history_size=100000}" in text
        assert "REGRESSED" in text
        assert "FAIL: 1 series regressed past 20%" in text

    def test_ok_report_and_skip_warning(self, tmp_path):
        _history_dir(tmp_path, [0.30, 0.31])
        (tmp_path / "BENCH_bad.json").write_text("nope")
        text = render_bench_trend(bench_trend(load_bench_history(tmp_path)))
        assert "warning: 1 invalid artifact(s) skipped" in text
        assert "OK: no series regressed past the gate" in text

    def test_empty_series_report(self):
        assert "(no series found)" in render_bench_trend(bench_trend([]))
