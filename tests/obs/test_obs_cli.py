"""The ``repro`` umbrella CLI and the ``obs report`` subcommand."""

import json
import logging

import pytest

from repro import obs
from repro.main import build_parser, main

GOOD_ROW = {
    "name": "single",
    "params": {"history_size": 1000},
    "stats": {"mean_s": 0.25, "min_s": 0.2, "repeats": 3},
}


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "BENCH_fig9.json"
    obs.write_bench_json(path, "fig9", [GOOD_ROW], meta={"seed": 2008})
    return path


@pytest.fixture()
def events_file(tmp_path):
    path = tmp_path / "run_events.jsonl"
    reg = obs.MetricsRegistry()
    reg.inc("core.two_phase.assessments", 4)
    with obs.EventLog(path, run_meta=obs.run_metadata(seed=7)) as log:
        log.emit("phase", name="calibration")
        log.emit_metrics(reg)
    return path


class TestObsReport:
    def test_reports_bench_artifact(self, bench_file, capsys):
        assert main(["obs", "report", str(bench_file)]) == 0
        out = capsys.readouterr().out
        assert "bench: fig9" in out
        assert "single" in out
        assert "seed=2008" in out

    def test_reports_event_log(self, events_file, capsys):
        assert main(["obs", "report", str(events_file)]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "seed=7" in out
        assert "core.two_phase.assessments" in out

    def test_missing_artifact_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_artifact_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "x"}), encoding="utf-8")
        assert main(["obs", "report", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestParserShape:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_forwarding_captures_remainder(self):
        args = build_parser().parse_args(
            ["experiments", "fig9", "--quick", "--seed", "5"]
        )
        assert args.command == "experiments"
        assert args.rest == ["fig9", "--quick", "--seed", "5"]

    def test_assess_remainder(self):
        args = build_parser().parse_args(["assess", "feedback.csv", "--test", "multi"])
        assert args.rest == ["feedback.csv", "--test", "multi"]


class TestLogLevel:
    def test_log_level_configures_repro_logger(self, bench_file):
        logger = logging.getLogger("repro")
        prior_level = logger.level
        prior_handlers = list(logger.handlers)
        try:
            assert main(["--log-level", "DEBUG", "obs", "report", str(bench_file)]) == 0
            assert logger.level == logging.DEBUG
            assert any(
                isinstance(h, logging.StreamHandler) for h in logger.handlers
            )
        finally:
            logger.setLevel(prior_level)
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_configure_logging_idempotent(self):
        logger = logging.getLogger("repro.test_idempotent")
        prior_handlers = list(logger.handlers)
        try:
            obs.configure_logging("INFO", logger_name="repro.test_idempotent")
            obs.configure_logging("DEBUG", logger_name="repro.test_idempotent")
            added = [h for h in logger.handlers if h not in prior_handlers]
            assert len(added) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_package_logger_has_null_handler(self):
        logger = logging.getLogger("repro.obs")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)
