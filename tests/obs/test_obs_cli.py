"""The ``repro`` umbrella CLI and the ``obs report`` subcommand."""

import json
import logging

import pytest

from repro import obs
from repro.main import build_parser, main

GOOD_ROW = {
    "name": "single",
    "params": {"history_size": 1000},
    "stats": {"mean_s": 0.25, "min_s": 0.2, "repeats": 3},
}


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "BENCH_fig9.json"
    obs.write_bench_json(path, "fig9", [GOOD_ROW], meta={"seed": 2008})
    return path


@pytest.fixture()
def events_file(tmp_path):
    path = tmp_path / "run_events.jsonl"
    reg = obs.MetricsRegistry()
    reg.inc("core.two_phase.assessments", 4)
    with obs.EventLog(path, run_meta=obs.run_metadata(seed=7)) as log:
        log.emit("phase", name="calibration")
        log.emit_metrics(reg)
    return path


class TestObsReport:
    def test_reports_bench_artifact(self, bench_file, capsys):
        assert main(["obs", "report", str(bench_file)]) == 0
        out = capsys.readouterr().out
        assert "bench: fig9" in out
        assert "single" in out
        assert "seed=2008" in out

    def test_reports_event_log(self, events_file, capsys):
        assert main(["obs", "report", str(events_file)]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "seed=7" in out
        assert "core.two_phase.assessments" in out

    def test_missing_artifact_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_artifact_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "x"}), encoding="utf-8")
        assert main(["obs", "report", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestParserShape:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_forwarding_captures_remainder(self):
        args = build_parser().parse_args(
            ["experiments", "fig9", "--quick", "--seed", "5"]
        )
        assert args.command == "experiments"
        assert args.rest == ["fig9", "--quick", "--seed", "5"]

    def test_assess_remainder(self):
        args = build_parser().parse_args(["assess", "feedback.csv", "--test", "multi"])
        assert args.rest == ["feedback.csv", "--test", "multi"]


class TestLogLevel:
    def test_log_level_configures_repro_logger(self, bench_file):
        logger = logging.getLogger("repro")
        prior_level = logger.level
        prior_handlers = list(logger.handlers)
        try:
            assert main(["--log-level", "DEBUG", "obs", "report", str(bench_file)]) == 0
            assert logger.level == logging.DEBUG
            assert any(
                isinstance(h, logging.StreamHandler) for h in logger.handlers
            )
        finally:
            logger.setLevel(prior_level)
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_configure_logging_idempotent(self):
        logger = logging.getLogger("repro.test_idempotent")
        prior_handlers = list(logger.handlers)
        try:
            obs.configure_logging("INFO", logger_name="repro.test_idempotent")
            obs.configure_logging("DEBUG", logger_name="repro.test_idempotent")
            added = [h for h in logger.handlers if h not in prior_handlers]
            assert len(added) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_package_logger_has_null_handler(self):
        logger = logging.getLogger("repro.obs")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)


@pytest.fixture()
def audit_file(tmp_path):
    import numpy as np

    from repro.core.multi_testing import MultiBehaviorTest
    from repro.obs import audit as audit_module

    path = tmp_path / "run_audit.jsonl"
    outcomes = np.concatenate(
        [
            (np.random.default_rng(0).random(600) < 0.95).astype(np.int8),
            np.zeros(40, dtype=np.int8),
        ]
    )
    with audit_module.audit_session(path=path) as trail:
        with trail.decision_scope(server="mallory"):
            MultiBehaviorTest().test(outcomes)
    return path


class TestObsReportDirectory:
    def test_empty_directory_is_clear_error_not_traceback(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no observability artifacts" in err
        assert "Traceback" not in err

    def test_directory_with_artifacts_renders_all(self, tmp_path, capsys):
        obs.write_bench_json(
            tmp_path / "BENCH_fig9.json", "fig9", [GOOD_ROW], meta={"seed": 2008}
        )
        with obs.EventLog(tmp_path / "run.jsonl", run_meta=obs.run_metadata(seed=3)):
            pass
        assert main(["obs", "report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench: fig9" in out
        assert "run_start" in out


class TestObsDiff:
    def _write(self, path, factor=1.0):
        row = {
            "name": "single",
            "params": {"history_size": 1000},
            "stats": {"mean_s": 0.25 * factor, "min_s": 0.2, "p95_s": 0.3 * factor, "repeats": 3},
        }
        obs.write_bench_json(path, "fig9", [row], meta={})
        return path

    def test_identical_artifacts_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        assert main(["obs", "diff", str(base), str(base)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        slow = self._write(tmp_path / "slow.json", factor=1.5)
        assert main(["obs", "diff", str(base), str(slow)]) == 2
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_max_regression_flag(self, tmp_path):
        base = self._write(tmp_path / "base.json")
        slow = self._write(tmp_path / "slow.json", factor=1.5)
        assert (
            main(["obs", "diff", str(base), str(slow), "--max-regression", "0.6"]) == 0
        )

    def test_missing_file_is_error(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        assert main(["obs", "diff", str(base), str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsValidate:
    def test_valid_audit_log_passes(self, audit_file, capsys):
        assert main(["obs", "validate", str(audit_file)]) == 0
        assert "all valid" in capsys.readouterr().out

    def test_log_without_audit_records_is_error(self, events_file, capsys):
        assert main(["obs", "validate", str(events_file)]) == 1
        assert "no audit records" in capsys.readouterr().err

    def test_malformed_audit_record_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"event": "audit", "schema_version": 1, "kind": "nope"}) + "\n",
            encoding="utf-8",
        )
        assert main(["obs", "validate", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestExplainCli:
    def test_explain_renders_rejection(self, audit_file, capsys):
        assert main(["explain", "mallory", str(audit_file)]) == 0
        out = capsys.readouterr().out
        assert "mallory" in out
        assert "failing suffix" in out

    def test_explain_missing_file_is_error(self, tmp_path, capsys):
        assert main(["explain", "x", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsReportAuditSummary:
    def test_event_log_report_includes_audit_summary(self, audit_file, capsys):
        assert main(["obs", "report", str(audit_file)]) == 0
        out = capsys.readouterr().out
        assert "audit summary" in out
        assert "rejection reasons" in out
        assert "suffix_distance_exceeds_epsilon" in out
