"""The ``repro`` umbrella CLI and the ``obs report`` subcommand."""

import json
import logging

import pytest

from repro import obs
from repro.main import build_parser, main

GOOD_ROW = {
    "name": "single",
    "params": {"history_size": 1000},
    "stats": {"mean_s": 0.25, "min_s": 0.2, "repeats": 3},
}


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "BENCH_fig9.json"
    obs.write_bench_json(path, "fig9", [GOOD_ROW], meta={"seed": 2008})
    return path


@pytest.fixture()
def events_file(tmp_path):
    path = tmp_path / "run_events.jsonl"
    reg = obs.MetricsRegistry()
    reg.inc("core.two_phase.assessments", 4)
    with obs.EventLog(path, run_meta=obs.run_metadata(seed=7)) as log:
        log.emit("phase", name="calibration")
        log.emit_metrics(reg)
    return path


class TestObsReport:
    def test_reports_bench_artifact(self, bench_file, capsys):
        assert main(["obs", "report", str(bench_file)]) == 0
        out = capsys.readouterr().out
        assert "bench: fig9" in out
        assert "single" in out
        assert "seed=2008" in out

    def test_reports_event_log(self, events_file, capsys):
        assert main(["obs", "report", str(events_file)]) == 0
        out = capsys.readouterr().out
        assert "run_start" in out
        assert "seed=7" in out
        assert "core.two_phase.assessments" in out

    def test_missing_artifact_is_an_error(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_artifact_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(json.dumps({"bench": "x"}), encoding="utf-8")
        assert main(["obs", "report", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestParserShape:
    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_forwarding_captures_remainder(self):
        args = build_parser().parse_args(
            ["experiments", "fig9", "--quick", "--seed", "5"]
        )
        assert args.command == "experiments"
        assert args.rest == ["fig9", "--quick", "--seed", "5"]

    def test_assess_remainder(self):
        args = build_parser().parse_args(["assess", "feedback.csv", "--test", "multi"])
        assert args.rest == ["feedback.csv", "--test", "multi"]


class TestLogLevel:
    def test_log_level_configures_repro_logger(self, bench_file):
        logger = logging.getLogger("repro")
        prior_level = logger.level
        prior_handlers = list(logger.handlers)
        try:
            assert main(["--log-level", "DEBUG", "obs", "report", str(bench_file)]) == 0
            assert logger.level == logging.DEBUG
            assert any(
                isinstance(h, logging.StreamHandler) for h in logger.handlers
            )
        finally:
            logger.setLevel(prior_level)
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_configure_logging_idempotent(self):
        logger = logging.getLogger("repro.test_idempotent")
        prior_handlers = list(logger.handlers)
        try:
            obs.configure_logging("INFO", logger_name="repro.test_idempotent")
            obs.configure_logging("DEBUG", logger_name="repro.test_idempotent")
            added = [h for h in logger.handlers if h not in prior_handlers]
            assert len(added) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_package_logger_has_null_handler(self):
        logger = logging.getLogger("repro.obs")
        assert any(isinstance(h, logging.NullHandler) for h in logger.handlers)


@pytest.fixture()
def audit_file(tmp_path):
    import numpy as np

    from repro.core.multi_testing import MultiBehaviorTest
    from repro.obs import audit as audit_module

    path = tmp_path / "run_audit.jsonl"
    outcomes = np.concatenate(
        [
            (np.random.default_rng(0).random(600) < 0.95).astype(np.int8),
            np.zeros(40, dtype=np.int8),
        ]
    )
    with audit_module.audit_session(path=path) as trail:
        with trail.decision_scope(server="mallory"):
            MultiBehaviorTest().test(outcomes)
    return path


class TestObsReportDirectory:
    def test_empty_directory_is_clear_error_not_traceback(self, tmp_path, capsys):
        assert main(["obs", "report", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "error:" in err
        assert "no observability artifacts" in err
        assert "Traceback" not in err

    def test_directory_with_artifacts_renders_all(self, tmp_path, capsys):
        obs.write_bench_json(
            tmp_path / "BENCH_fig9.json", "fig9", [GOOD_ROW], meta={"seed": 2008}
        )
        with obs.EventLog(tmp_path / "run.jsonl", run_meta=obs.run_metadata(seed=3)):
            pass
        assert main(["obs", "report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench: fig9" in out
        assert "run_start" in out


class TestObsDiff:
    def _write(self, path, factor=1.0):
        row = {
            "name": "single",
            "params": {"history_size": 1000},
            "stats": {"mean_s": 0.25 * factor, "min_s": 0.2, "p95_s": 0.3 * factor, "repeats": 3},
        }
        obs.write_bench_json(path, "fig9", [row], meta={})
        return path

    def test_identical_artifacts_exit_zero(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        assert main(["obs", "diff", str(base), str(base)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_regression_exits_two(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        slow = self._write(tmp_path / "slow.json", factor=1.5)
        assert main(["obs", "diff", str(base), str(slow)]) == 2
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_max_regression_flag(self, tmp_path):
        base = self._write(tmp_path / "base.json")
        slow = self._write(tmp_path / "slow.json", factor=1.5)
        assert (
            main(["obs", "diff", str(base), str(slow), "--max-regression", "0.6"]) == 0
        )

    def test_missing_file_is_error(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json")
        assert main(["obs", "diff", str(base), str(tmp_path / "nope.json")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsDiffDefaultBaseline:
    def _bench(self, path, factor=1.0):
        row = {
            "name": "single",
            "params": {"history_size": 1000},
            "stats": {"mean_s": 0.25 * factor, "min_s": 0.2, "p95_s": 0.3 * factor, "repeats": 3},
        }
        obs.write_bench_json(path, "fig9", [row], meta={})
        return path

    def test_single_path_diffs_against_committed_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        self._bench(tmp_path / "BENCH_fig9.json")  # the committed baseline
        cand = self._bench(tmp_path / "candidate.json", factor=1.5)
        monkeypatch.chdir(tmp_path)
        assert main(["obs", "diff", str(cand)]) == 2
        assert "REGRESSED" in capsys.readouterr().out

    def test_single_path_ok_when_within_gate(self, tmp_path, monkeypatch, capsys):
        self._bench(tmp_path / "BENCH_fig9.json")
        cand = self._bench(tmp_path / "candidate.json", factor=1.05)
        monkeypatch.chdir(tmp_path)
        assert main(["obs", "diff", str(cand)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_missing_committed_baseline_is_clear_error(
        self, tmp_path, monkeypatch, capsys
    ):
        cand = self._bench(tmp_path / "candidate.json")
        monkeypatch.chdir(tmp_path)
        assert main(["obs", "diff", str(cand)]) == 1
        err = capsys.readouterr().err
        assert "no committed baseline" in err
        assert "BENCH_fig9.json" in err


class TestObsTop:
    def _progressing_log(self, path, *, finish):
        from repro.obs.monitor import ProgressMonitor

        with obs.EventLog(path, run_meta=obs.run_metadata(seed=1, experiment="fig7")) as log:
            monitor = ProgressMonitor(
                log, total=40, label="trials", interval_seconds=None, interval_ticks=10
            )
            monitor.start(experiment="fig7")
            monitor.tick(10, tests=20)
            if finish:
                monitor.tick(30, tests=60)
                monitor.finish()
        return path

    def test_once_renders_live_run_snapshot(self, tmp_path, capsys):
        path = self._progressing_log(tmp_path / "run.jsonl", finish=False)
        assert main(["obs", "top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "experiment=fig7" in out
        assert "10/40 trials" in out
        assert "status: running" in out

    def test_partially_written_tail_line_is_tolerated(self, tmp_path, capsys):
        path = self._progressing_log(tmp_path / "run.jsonl", finish=False)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "heartbe')  # producer mid-write
        assert main(["obs", "top", str(path), "--once"]) == 0
        assert "10/40 trials" in capsys.readouterr().out

    def test_finished_run_exits_without_once(self, tmp_path, capsys):
        path = self._progressing_log(tmp_path / "run.jsonl", finish=True)
        assert main(["obs", "top", str(path), "--interval", "0.01"]) == 0
        assert "status: finished" in capsys.readouterr().out

    def test_missing_file_renders_empty_dashboard(self, tmp_path, capsys):
        assert main(["obs", "top", str(tmp_path / "absent.jsonl"), "--once"]) == 0
        assert "(no progress events yet" in capsys.readouterr().out


class TestObsTrend:
    def _history(self, tmp_path, p95s):
        for i, p95 in enumerate(p95s):
            row = {
                "name": "single",
                "params": {"history_size": 1000},
                "stats": {"mean_s": p95 * 0.9, "min_s": 0.2, "p95_s": p95, "repeats": 3},
            }
            obs.write_bench_json(
                tmp_path / f"BENCH_fig9_{i:03d}.json",
                "fig9",
                [row],
                meta={"timestamp": 1000.0 + i},
            )
        return tmp_path

    def test_stable_history_exits_zero(self, tmp_path, capsys):
        directory = self._history(tmp_path, [0.30, 0.31, 0.30])
        assert main(["obs", "trend", str(directory)]) == 0
        assert "OK: no series regressed" in capsys.readouterr().out

    def test_regression_exits_two(self, tmp_path, capsys):
        directory = self._history(tmp_path, [0.30, 0.31, 0.30, 0.60])
        assert main(["obs", "trend", str(directory)]) == 2
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "FAIL" in out

    def test_max_regression_flag(self, tmp_path):
        directory = self._history(tmp_path, [0.30, 0.31, 0.30, 0.60])
        assert main(["obs", "trend", str(directory), "--max-regression", "1.5"]) == 0

    def test_bench_filter_flag(self, tmp_path, capsys):
        directory = self._history(tmp_path, [0.30, 0.60])
        assert main(["obs", "trend", str(directory), "--bench", "other"]) == 0
        assert "(no series found)" in capsys.readouterr().out

    def test_missing_directory_is_error(self, tmp_path, capsys):
        assert main(["obs", "trend", str(tmp_path / "absent")]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsValidate:
    def test_valid_audit_log_passes(self, audit_file, capsys):
        assert main(["obs", "validate", str(audit_file)]) == 0
        assert "all valid" in capsys.readouterr().out

    def test_log_without_audit_records_is_error(self, events_file, capsys):
        assert main(["obs", "validate", str(events_file)]) == 1
        assert "no audit records" in capsys.readouterr().err

    def test_malformed_audit_record_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"event": "audit", "schema_version": 1, "kind": "nope"}) + "\n",
            encoding="utf-8",
        )
        assert main(["obs", "validate", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bench_json_validates(self, bench_file, capsys):
        assert main(["obs", "validate", str(bench_file)]) == 0
        assert "valid bench artifact" in capsys.readouterr().out

    def test_profile_json_validates(self, tmp_path, capsys):
        from repro.obs.profile import PhaseProfiler

        prof = PhaseProfiler()
        prof.on_span_begin("phase", 0.0)
        prof.on_span_end(1.0)
        path = tmp_path / "PROFILE_x.json"
        obs.write_profile_json(path, "x", prof)
        assert main(["obs", "validate", str(path)]) == 0
        assert "valid profile artifact" in capsys.readouterr().out

    def test_json_matching_neither_schema_is_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"bench": "x"}), encoding="utf-8")
        assert main(["obs", "validate", str(path)]) == 1
        assert (
            "not a valid bench, profile, fleet, or postmortem"
            in capsys.readouterr().err
        )

    def test_unparsable_json_is_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_x.json"
        path.write_text("{broken", encoding="utf-8")
        assert main(["obs", "validate", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsReportProfile:
    def test_reports_profile_artifact(self, tmp_path, capsys):
        from repro.obs.profile import PhaseProfiler

        prof = PhaseProfiler()
        prof.on_span_begin("calibrate", 0.0)
        prof.on_span_end(2.0)
        path = tmp_path / "PROFILE_fig9.json"
        obs.write_profile_json(path, "fig9", prof, meta={"seed": 2008})
        assert main(["obs", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "profile: fig9" in out
        assert "calibrate" in out
        assert "seed=2008" in out


class TestReproLogLevelEnv:
    def test_env_var_configures_logging(self, bench_file, monkeypatch):
        logger = logging.getLogger("repro")
        prior_level = logger.level
        prior_handlers = list(logger.handlers)
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        try:
            assert main(["obs", "report", str(bench_file)]) == 0
            assert logger.level == logging.DEBUG
        finally:
            logger.setLevel(prior_level)
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)

    def test_flag_beats_env_var(self, bench_file, monkeypatch):
        logger = logging.getLogger("repro")
        prior_level = logger.level
        prior_handlers = list(logger.handlers)
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        try:
            assert (
                main(["--log-level", "WARNING", "obs", "report", str(bench_file)]) == 0
            )
            assert logger.level == logging.WARNING
        finally:
            logger.setLevel(prior_level)
            for handler in logger.handlers[:]:
                if handler not in prior_handlers:
                    logger.removeHandler(handler)


class TestExplainCli:
    def test_explain_renders_rejection(self, audit_file, capsys):
        assert main(["explain", "mallory", str(audit_file)]) == 0
        out = capsys.readouterr().out
        assert "mallory" in out
        assert "failing suffix" in out

    def test_explain_missing_file_is_error(self, tmp_path, capsys):
        assert main(["explain", "x", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


@pytest.fixture()
def spans_file(tmp_path):
    from repro.obs import context as trace_ctx

    path = tmp_path / "spans.jsonl"
    with obs.activate(), trace_ctx.tracing_session(path):
        with trace_ctx.use(trace_ctx.new_root(test="cli")):
            with obs.span("request"):
                with obs.span("request.child"):
                    pass
    return path


class TestObsTrace:
    def _trace_id(self, spans_file):
        from repro.obs.context import read_span_jsonl

        return read_span_jsonl(spans_file)[0]["trace_id"]

    def test_lists_trace_ids_without_argument(self, spans_file, capsys):
        assert main(["obs", "trace", str(spans_file)]) == 0
        out = capsys.readouterr().out
        assert "1 trace(s)" in out
        assert self._trace_id(spans_file) in out
        assert "(2 spans)" in out

    def test_renders_tree_from_unique_prefix(self, spans_file, capsys):
        tid = self._trace_id(spans_file)
        assert main(["obs", "trace", str(spans_file), tid[:10]]) == 0
        out = capsys.readouterr().out
        assert f"trace {tid}" in out
        assert "request" in out
        assert "request.child" in out

    def test_unknown_trace_id_is_error(self, spans_file, capsys):
        assert main(["obs", "trace", str(spans_file), "feedbeef"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_span_log_is_error(self, tmp_path, capsys):
        assert main(["obs", "trace", str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_empty_span_log_is_error(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        path.write_text("", encoding="utf-8")
        assert main(["obs", "trace", str(path)]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_otlp_export_writes_resource_spans(self, spans_file, tmp_path, capsys):
        out_path = tmp_path / "spans_otlp.json"
        assert main(["obs", "trace", str(spans_file), "--otlp", str(out_path)]) == 0
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert "resourceSpans" in payload
        assert "wrote OTLP JSON export" in capsys.readouterr().out


class TestObsSlo:
    def _events(self, tmp_path, *, degradations):
        path = tmp_path / "run_events.jsonl"
        registry = obs.MetricsRegistry()
        registry.inc("serve.requests", 100)
        if degradations:
            registry.inc("serve.resilience.degradations", degradations)
        with obs.EventLog(path) as log:
            log.emit_metrics(registry)
        return path

    def test_healthy_run_exits_zero(self, tmp_path, capsys):
        path = self._events(tmp_path, degradations=0)
        assert main(["obs", "slo", str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve.degraded_verdicts" in out
        assert "within budget" in out

    def test_burning_budget_exits_two(self, tmp_path, capsys):
        # 5% degraded against a 1% budget: the ratio SLO burns
        path = self._events(tmp_path, degradations=5)
        assert main(["obs", "slo", str(path)]) == 2
        assert "BURN" in capsys.readouterr().out

    def test_out_writes_validated_bench_artifact(self, tmp_path, capsys):
        path = self._events(tmp_path, degradations=0)
        artifact = tmp_path / "BENCH_slo.json"
        assert main(["obs", "slo", str(path), "--out", str(artifact)]) == 0
        payload = obs.read_bench_json(artifact)
        obs.validate_slo_payload(payload)  # schema round-trips
        assert "wrote" in capsys.readouterr().out

    def test_rereports_burn_from_written_artifact(self, tmp_path, capsys):
        path = self._events(tmp_path, degradations=5)
        artifact = tmp_path / "BENCH_slo.json"
        assert main(["obs", "slo", str(path), "--out", str(artifact)]) == 2
        capsys.readouterr()
        assert main(["obs", "slo", str(artifact)]) == 2
        assert "budgets burning" in capsys.readouterr().out

    def test_ok_artifact_exits_zero(self, tmp_path, capsys):
        path = self._events(tmp_path, degradations=0)
        artifact = tmp_path / "BENCH_slo.json"
        main(["obs", "slo", str(path), "--out", str(artifact)])
        capsys.readouterr()
        assert main(["obs", "slo", str(artifact)]) == 0
        assert "within budget" in capsys.readouterr().out

    def test_latency_flags_reach_the_specs(self, tmp_path, capsys):
        # every assessment takes ~100ms: burning against the default
        # 50ms bound, healthy once --latency-threshold raises it
        path = tmp_path / "run_events.jsonl"
        registry = obs.MetricsRegistry()
        for _ in range(100):
            registry.observe("serve.assess.seconds", 0.1)
        with obs.EventLog(path) as log:
            log.emit_metrics(registry)
        assert main(["obs", "slo", str(path)]) == 2
        capsys.readouterr()
        assert main(["obs", "slo", str(path), "--latency-threshold", "0.2"]) == 0

    def test_event_log_without_snapshots_is_error(self, tmp_path, capsys):
        path = tmp_path / "run_events.jsonl"
        with obs.EventLog(path) as log:
            log.emit("run_start")
        assert main(["obs", "slo", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_invalid_json_artifact_is_error(self, tmp_path, capsys):
        path = tmp_path / "BENCH_slo.json"
        path.write_text(json.dumps({"bench": "slo"}), encoding="utf-8")
        assert main(["obs", "slo", str(path)]) == 1
        assert "error:" in capsys.readouterr().err


class TestObsReportAuditSummary:
    def test_event_log_report_includes_audit_summary(self, audit_file, capsys):
        assert main(["obs", "report", str(audit_file)]) == 0
        out = capsys.readouterr().out
        assert "audit summary" in out
        assert "rejection reasons" in out
        assert "suffix_distance_exceeds_epsilon" in out


@pytest.fixture()
def tsdb_file(tmp_path):
    from repro.obs.tsdb import MetricsScraper

    registry = obs.MetricsRegistry()
    registry.inc("serve.requests", 10)
    registry.observe("serve.assess.seconds", 0.002)
    scraper = MetricsScraper(registry, interval_s=1.0, clock=lambda: 145.0)
    scraper.scrape()
    registry.inc("serve.requests", 5)
    scraper.scrape(now=146.0)
    path = tmp_path / "TSDB_serve.jsonl"
    scraper.store.dump(path)
    return path


class TestObsTsdb:
    def test_series_table_listing(self, tsdb_file, capsys):
        assert main(["obs", "tsdb", str(tsdb_file)]) == 0
        out = capsys.readouterr().out
        assert "serve.requests" in out
        assert "serve.assess.seconds.p95" in out
        assert "2 scrape(s)" in out

    def test_query_one_series(self, tsdb_file, capsys):
        assert main(["obs", "tsdb", str(tsdb_file), "serve.requests"]) == 0
        out = capsys.readouterr().out
        assert "serve.requests  (2 samples)" in out
        assert "145.000  10" in out
        assert "146.000  15" in out

    def test_bare_family_selects_every_field(self, tsdb_file, capsys):
        assert main(["obs", "tsdb", str(tsdb_file), "serve.assess.seconds"]) == 0
        out = capsys.readouterr().out
        assert "serve.assess.seconds.count" in out
        assert "serve.assess.seconds.p99" in out

    def test_downsampled_query(self, tsdb_file, capsys):
        assert (
            main(
                [
                    "obs", "tsdb", str(tsdb_file), "serve.requests",
                    "--step", "10", "--agg", "max",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "(1 samples)" in out  # both scrapes share the 140s bucket
        assert "140.000  15" in out

    def test_unknown_series_errors_and_lists_known(self, tsdb_file, capsys):
        assert main(["obs", "tsdb", str(tsdb_file), "no.such"]) == 1
        err = capsys.readouterr().err
        assert "no series 'no.such'" in err
        assert "serve.assess.seconds.count" in err

    def test_missing_or_malformed_store_errors(self, tmp_path, capsys):
        assert main(["obs", "tsdb", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
        bad = tmp_path / "bad.jsonl"
        bad.write_text("nope\n")
        assert main(["obs", "tsdb", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_export_prom_stamps_scrape_time(self, tsdb_file, capsys):
        assert main(["obs", "tsdb", str(tsdb_file), "--export-prom", "-"]) == 0
        out = capsys.readouterr().out
        # the newest scrape (146.0s) becomes the exposition timestamp
        assert "repro_serve_requests_total 15 146000" in out
        assert "repro_serve_assess_seconds_count 1 146000" in out

    def test_export_prom_to_file(self, tsdb_file, tmp_path, capsys):
        target = tmp_path / "metrics.prom"
        assert (
            main(["obs", "tsdb", str(tsdb_file), "--export-prom", str(target)])
            == 0
        )
        assert "wrote" in capsys.readouterr().out
        assert "146000" in target.read_text()


class TestObsPostmortem:
    def test_renders_bundle(self, tmp_path, capsys):
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder(tmp_path, clock=lambda: 100.0)
        recorder.record_event({"event": "executor_degraded", "to": "serial"})
        path = recorder.dump(reason="resilience_error", site="serve.executor.worker")
        assert main(["obs", "postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "post-mortem: resilience_error" in out
        assert "site=serve.executor.worker" in out
        assert "executor_degraded" in out

    def test_tail_flag(self, tmp_path, capsys):
        from repro.obs.flightrec import FlightRecorder

        recorder = FlightRecorder(tmp_path, clock=lambda: 100.0)
        for i in range(10):
            recorder.record_event({"event": f"e{i}"})
        path = recorder.dump(reason="r")
        assert main(["obs", "postmortem", str(path), "--tail", "2"]) == 0
        out = capsys.readouterr().out
        assert "events (last 2 of 10):" in out

    def test_missing_or_invalid_bundle_errors(self, tmp_path, capsys):
        assert main(["obs", "postmortem", str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"postmortem": 99}))
        assert main(["obs", "postmortem", str(bad)]) == 1
        assert "schema version" in capsys.readouterr().err


class TestObsTopDegradation:
    """Satellite: `obs top` exits 0 with a notice on broken logs."""

    def test_empty_log_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["obs", "top", str(path), "--once"]) == 0
        assert "(no progress events yet" in capsys.readouterr().out

    def test_fully_malformed_log_exits_zero_with_notice(self, tmp_path, capsys):
        path = tmp_path / "garbage.jsonl"
        path.write_text("not json\n[1, 2]\n")
        assert main(["obs", "top", str(path), "--once"]) == 0
        out = capsys.readouterr().out
        assert "(skipped 2 malformed log line(s))" in out
