"""Fleet view: histogram merge algebra, aggregation, ring checks, CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.main import main
from repro.obs import scope
from repro.obs.registry import MetricsRegistry, StreamingHistogram


@pytest.fixture(autouse=True)
def _clean_scope():
    scope.reset()
    yield
    scope.reset()


# ---------------------------------------------------------------------- #
# fakes: duck-typed ring structures for check_ring / topology_snapshot


class _FakeNode:
    def __init__(self, name, node_id, successor, predecessor, storage=None):
        self.name = name
        self.node_id = node_id
        self.successor = successor
        self.successors = [successor]
        self.predecessor = predecessor
        self.storage = storage if storage is not None else {}


class _FakeRing:
    def __init__(self, nodes, m_bits=16, replicas=1):
        self.nodes = {node.name: node for node in nodes}
        self._m = m_bits
        self._replicas = replicas


def _healthy_ring(replicas=1):
    # ids 10 < 20 < 30, successors clockwise, key 15 owned by b (id 20)
    a = _FakeNode("a", 10, "b", "c")
    b = _FakeNode("b", 20, "c", "a", storage={15: ["v"]})
    c = _FakeNode("c", 30, "a", "b")
    return _FakeRing([a, b, c], replicas=replicas)


# ---------------------------------------------------------------------- #
# satellite: histogram merge algebra


class TestHistogramMerge:
    def _sample(self, values):
        hist = StreamingHistogram()
        for value in values:
            hist.observe(value)
        return hist

    def test_merge_preserves_algebra_exactly(self):
        left = self._sample([0.001, 0.5, 2.0, 2.0])
        right = self._sample([0.01, 7.5])
        expected = self._sample([0.001, 0.5, 2.0, 2.0, 0.01, 7.5])
        left.merge(right)
        assert left.count == expected.count
        assert left.sum == expected.sum
        assert left.min == expected.min
        assert left.max == expected.max
        assert left.bucket_counts() == expected.bucket_counts()

    def test_merge_into_empty_and_with_empty(self):
        empty = StreamingHistogram()
        filled = self._sample([1.0, 2.0])
        empty.merge(filled)
        assert empty.count == 2
        assert empty.min == 1.0
        before = filled.bucket_counts()
        filled.merge(StreamingHistogram())
        assert filled.count == 2
        assert filled.bucket_counts() == before
        assert filled.min == 1.0  # empty's +inf min must not leak in

    def test_merge_serialized_round_trip(self):
        source = self._sample([0.25, 4.0, 4.0, 100.0])
        target = self._sample([0.125])
        expected = self._sample([0.25, 4.0, 4.0, 100.0, 0.125])
        target.merge_serialized(source.summary(), source.bucket_counts())
        assert target.count == expected.count
        assert target.sum == expected.sum
        assert target.min == expected.min
        assert target.max == expected.max
        assert target.bucket_counts() == expected.bucket_counts()

    def test_merge_serialized_ignores_empty_summary(self):
        hist = self._sample([1.0])
        hist.merge_serialized({"count": 0}, {})
        assert hist.count == 1
        assert hist.min == 1.0


# ---------------------------------------------------------------------- #
# cross-node aggregation


class TestAggregation:
    def _per_node(self):
        registry = MetricsRegistry()
        registry.set("queue.depth", 7.0)  # unscoped gauge stays out
        for node, hops in (("a", (1.0, 2.0)), ("b", (3.0,))):
            with scope.node_scope(node):
                registry.inc("p2p.network.messages", 10)
                registry.set("p2p.gossip.peers", 4.0)
                for value in hops:
                    registry.observe("p2p.chord.lookup_hops", value)
        per_node, _ = obs.split_snapshot(registry.snapshot())
        return per_node

    def test_counters_sum(self):
        aggregate = obs.aggregate_snapshots(self._per_node())
        assert aggregate["p2p.network.messages"][0]["value"] == 20

    def test_histograms_merge_exactly(self):
        aggregate = obs.aggregate_snapshots(self._per_node())
        summary = aggregate["p2p.chord.lookup_hops"][0]["summary"]
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0

    def test_gauges_keep_node_label(self):
        aggregate = obs.aggregate_snapshots(self._per_node())
        gauge_nodes = {
            entry["labels"]["node"] for entry in aggregate["p2p.gossip.peers"]
        }
        assert gauge_nodes == {"a", "b"}

    def test_gauge_table(self):
        table = obs.gauge_table(self._per_node())
        assert table["p2p.gossip.peers"] == {"a": 4.0, "b": 4.0}


# ---------------------------------------------------------------------- #
# ring consistency


class TestCheckRing:
    def test_healthy_ring_ok(self):
        report = obs.check_ring(_healthy_ring())
        assert report["ok"] is True
        assert report["n_nodes"] == 3
        assert report["n_keys"] == 1
        assert report["successor_errors"] == []
        assert report["orphaned_keys"] == []

    def test_broken_successor_detected(self):
        ring = _healthy_ring()
        ring.nodes["a"].successor = "c"  # should be b
        report = obs.check_ring(ring)
        assert report["ok"] is False
        assert report["successor_errors"] == [
            {"node": "a", "expected": "b", "actual": "c"}
        ]

    def test_broken_predecessor_detected(self):
        ring = _healthy_ring()
        ring.nodes["b"].predecessor = None
        report = obs.check_ring(ring)
        assert report["ok"] is False
        assert report["predecessor_errors"][0]["node"] == "b"

    def test_orphaned_key_detected(self):
        ring = _healthy_ring()
        # key 15 belongs at b (id 20); strand it at c only
        ring.nodes["b"].storage = {}
        ring.nodes["c"].storage = {15: ["v"]}
        report = obs.check_ring(ring)
        assert report["ok"] is False
        assert report["orphaned_keys"] == [
            {"key": 15, "owner": "b", "holders": ["c"]}
        ]

    def test_under_replication_detected(self):
        ring = _healthy_ring(replicas=3)
        report = obs.check_ring(ring)
        assert report["ok"] is False
        assert report["under_replicated"] == [
            {"key": 15, "copies": 1, "expected": 3}
        ]

    def test_single_node_ring_tolerates_none_predecessor(self):
        lone = _FakeNode("a", 10, "a", None)
        report = obs.check_ring(_FakeRing([lone]))
        assert report["ok"] is True

    def test_topology_snapshot_sorted_by_id(self):
        topology = obs.topology_snapshot(_healthy_ring())
        assert [entry["name"] for entry in topology["nodes"]] == ["a", "b", "c"]
        assert topology["n_nodes"] == 3
        assert topology["nodes"][1]["n_keys"] == 1


# ---------------------------------------------------------------------- #
# payload assembly, validation, render, CLI


def _payload(consistent=True):
    registry = MetricsRegistry()
    for node in ("a", "b", "c"):
        with scope.node_scope(node):
            registry.inc("p2p.network.messages", 5)
            registry.observe("p2p.chord.lookup_hops", 2.0)
    per_node, _ = obs.split_snapshot(registry.snapshot())
    ring = _healthy_ring()
    if not consistent:
        ring.nodes["a"].successor = "c"
    aggregate = obs.aggregate_snapshots(per_node)
    return obs.fleet_payload(
        topology=obs.topology_snapshot(ring),
        per_node=per_node,
        consistency=obs.check_ring(ring),
        aggregate=aggregate,
        slo=obs.evaluation_rows(obs.evaluate_fleet_slos(aggregate)),
        meta={"experiment": "test"},
    )


class TestFleetPayload:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "FLEET_test.json"
        obs.write_fleet_json(path, _payload())
        loaded = obs.read_fleet_json(path)
        assert loaded["consistency"]["ok"] is True
        assert set(loaded["nodes"]) == {"a", "b", "c"}

    def test_validation_rejects_drift(self):
        payload = _payload()
        payload["consistency"] = {"broken": True}
        with pytest.raises(ValueError, match="consistency"):
            obs.validate_fleet_payload(payload)

    def test_bench_rows_validate(self):
        rows = obs.fleet_to_bench_rows(_payload())
        bench = obs.bench_payload("fleet", rows, meta={})
        obs.validate_fleet_bench_payload(bench)
        names = {row["name"] for row in rows}
        assert "fleet.consistency" in names
        assert any(name.startswith("fleet.node") for name in names)

    def test_render_mentions_nodes_and_consistency(self):
        text = obs.render_fleet(_payload())
        assert "ring consistency: OK" in text
        for node in ("a", "b", "c"):
            assert node in text
        broken = obs.render_fleet(_payload(consistent=False))
        assert "ring consistency:" in broken
        assert "OK" not in broken.split("ring consistency:")[1].split("\n")[0]


class TestFleetCli:
    def test_renders_file_and_writes_bench(self, tmp_path, capsys):
        path = tmp_path / "FLEET_test.json"
        obs.write_fleet_json(path, _payload())
        out = tmp_path / "BENCH_fleet.json"
        assert main(["obs", "fleet", str(path), "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "ring consistency: OK" in captured
        bench = json.loads(out.read_text())
        obs.validate_fleet_bench_payload(bench)

    def test_directory_source(self, tmp_path, capsys):
        obs.write_fleet_json(tmp_path / "FLEET_p2p.json", _payload())
        assert main(["obs", "fleet", str(tmp_path)]) == 0
        assert "per-node metrics" in capsys.readouterr().out

    def test_inconsistent_ring_exits_2(self, tmp_path):
        path = tmp_path / "FLEET_bad.json"
        obs.write_fleet_json(path, _payload(consistent=False))
        assert main(["obs", "fleet", str(path)]) == 2

    def test_missing_artifact_exits_1(self, tmp_path, capsys):
        assert main(["obs", "fleet", str(tmp_path)]) == 1
        assert main(["obs", "fleet", str(tmp_path / "nope.json")]) == 1

    def test_validate_subcommand_recognizes_fleet(self, tmp_path, capsys):
        path = tmp_path / "FLEET_test.json"
        obs.write_fleet_json(path, _payload())
        assert main(["obs", "validate", str(path)]) == 0
        assert "valid fleet artifact" in capsys.readouterr().out
