"""Progress heartbeats, the text dashboard, and live tailing."""

import io
import json

import pytest

from repro import obs
from repro.obs.events import EventLog
from repro.obs.monitor import ProgressMonitor, render_dashboard, rss_bytes


class FakeClock:
    """A monotonically advancing injectable clock."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def _events(log, kind):
    return [e for e in log.events if e["event"] == kind]


class TestProgressMonitor:
    def test_validation(self):
        log = EventLog()
        with pytest.raises(ValueError):
            ProgressMonitor(log, total=-1)
        with pytest.raises(ValueError):
            ProgressMonitor(log, interval_seconds=None, interval_ticks=None)
        with pytest.raises(ValueError):
            ProgressMonitor(log, interval_seconds=0)
        with pytest.raises(ValueError):
            ProgressMonitor(log, interval_seconds=None, interval_ticks=0)

    def test_start_emits_progress_start(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, total=10, label="steps", clock=clock)
        monitor.start(experiment="demo")
        (start,) = _events(log, "progress_start")
        assert start["total"] == 10
        assert start["label"] == "steps"
        assert start["experiment"] == "demo"

    def test_first_tick_auto_starts(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, interval_seconds=None, interval_ticks=1000, clock=clock
        )
        monitor.tick()
        assert len(_events(log, "progress_start")) == 1
        assert monitor.done == 1

    def test_tick_throttling_by_interval_ticks(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=100, interval_seconds=None, interval_ticks=10, clock=clock
        )
        for _ in range(25):
            monitor.tick()
        assert monitor.heartbeats == 2  # at 10 and 20, not every tick

    def test_time_throttling(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, total=100, interval_seconds=5.0, clock=clock)
        monitor.start()
        monitor.tick()
        assert monitor.heartbeats == 0  # no time elapsed yet
        clock.advance(5.0)
        monitor.tick()
        assert monitor.heartbeats == 1

    def test_heartbeat_contents(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, total=40, label="trials", clock=clock)
        monitor.start()
        clock.advance(10.0)
        monitor.tick(10, transactions=50)
        beat = monitor.heartbeat()
        assert beat["done"] == 10
        assert beat["total"] == 40
        assert beat["pct"] == pytest.approx(25.0)
        assert beat["elapsed_s"] == pytest.approx(10.0)
        assert beat["rates"]["trials_per_s"] == pytest.approx(1.0)
        assert beat["rates"]["transactions_per_s"] == pytest.approx(5.0)
        # 30 trials remain at 1/s
        assert beat["eta_s"] == pytest.approx(30.0)
        assert beat["counts"] == {"transactions": 50}

    def test_recent_rates_use_window_since_last_heartbeat(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=100, interval_seconds=None, interval_ticks=10**6, clock=clock
        )
        monitor.start()
        clock.advance(10.0)
        monitor.tick(10)
        monitor.heartbeat()
        clock.advance(2.0)
        monitor.tick(10)
        beat = monitor.heartbeat()
        assert beat["rates"]["ticks_per_s"] == pytest.approx(20 / 12)
        assert beat["recent"]["ticks_per_s"] == pytest.approx(10 / 2)

    def test_finish_emits_final_heartbeat_and_progress_end(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=5, interval_seconds=None, interval_ticks=10**6, clock=clock
        )
        monitor.start()
        clock.advance(1.0)
        monitor.tick(5, widgets=2)
        monitor.finish(experiment="demo")
        assert len(_events(log, "heartbeat")) == 1
        (end,) = _events(log, "progress_end")
        assert end["done"] == 5
        assert end["counts"] == {"widgets": 2}
        assert end["experiment"] == "demo"

    def test_unknown_total_skips_pct_and_eta(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, clock=clock)
        monitor.start()
        clock.advance(1.0)
        monitor.tick(3)
        beat = monitor.heartbeat()
        assert beat["pct"] is None
        assert beat["eta_s"] is None


class TestRssBytes:
    def test_returns_positive_int_or_none(self):
        rss = rss_bytes()
        assert rss is None or (isinstance(rss, int) and rss > 0)


class TestRenderDashboard:
    def _run_events(self, *, finished):
        clock = FakeClock()
        log = EventLog(
            run_meta={"experiment": "fig7", "seed": 42, "git_rev": "abc123"}
        )
        monitor = ProgressMonitor(
            log,
            total=80,
            label="trials",
            interval_seconds=None,
            interval_ticks=10**6,
            clock=clock,
        )
        monitor.start()
        clock.advance(4.0)
        monitor.tick(20, tests=40)
        monitor.heartbeat()
        if finished:
            clock.advance(12.0)
            monitor.tick(60)
            monitor.finish()
        return log.events

    def test_run_metadata_line(self):
        text = render_dashboard(self._run_events(finished=False))
        assert "experiment=fig7" in text
        assert "seed=42" in text
        assert "git_rev=abc123" in text

    def test_progress_bar_and_percentage(self):
        text = render_dashboard(self._run_events(finished=False), width=20)
        assert "[#####---------------]  25.0%  20/80 trials" in text
        assert "trials_per_s 5.0" in text
        assert "status: running" in text

    def test_finished_status(self):
        text = render_dashboard(self._run_events(finished=True))
        assert "status: finished (80 trials" in text

    def test_no_progress_events_yet(self):
        log = EventLog(run_meta={"experiment": "fig7"})
        text = render_dashboard(log.events)
        assert "(no progress events yet; 1 event(s) in log)" in text

    def test_unknown_total_renders_counts(self):
        clock = FakeClock()
        log = EventLog()
        monitor = ProgressMonitor(
            log, interval_seconds=None, interval_ticks=10**6, clock=clock
        )
        monitor.start()
        clock.advance(1.0)
        monitor.tick(7)
        monitor.heartbeat()
        text = render_dashboard(log.events)
        assert "progress: 7 ticks (total unknown)" in text


class TestTailDashboard:
    def test_missing_file_renders_empty_dashboard(self, tmp_path):
        stream = io.StringIO()
        rc = obs.tail_dashboard(tmp_path / "absent.jsonl", once=True, stream=stream)
        assert rc == 0
        assert "(no progress events yet" in stream.getvalue()

    def test_finished_log_exits_without_once(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path, run_meta={"experiment": "x"}) as log:
            monitor = ProgressMonitor(
                log, total=2, interval_seconds=None, interval_ticks=10**6
            )
            monitor.start()
            monitor.tick(2)
            monitor.finish()
        stream = io.StringIO()
        rc = obs.tail_dashboard(path, interval=0.01, stream=stream)
        assert rc == 0
        assert "status: finished" in stream.getvalue()

    def test_partial_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path, run_meta={"experiment": "x"}) as log:
            monitor = ProgressMonitor(
                log, total=10, interval_seconds=None, interval_ticks=10**6
            )
            monitor.start()
            monitor.tick(4)
            monitor.heartbeat()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "heartbeat", "done"')  # mid-write crash
        stream = io.StringIO()
        rc = obs.tail_dashboard(path, once=True, stream=stream)
        assert rc == 0
        assert "4/10" in stream.getvalue()

    def test_max_updates_bounds_the_loop(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"event": "run_start"}) + "\n")
        stream = io.StringIO()
        rc = obs.tail_dashboard(path, interval=0.0, max_updates=3, stream=stream)
        assert rc == 0
        assert stream.getvalue().count("run:") == 3


class TestProgressMonitorEdges:
    """Satellite: heartbeat throttling and teardown boundary behavior."""

    def test_interval_ticks_exact_boundary(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=30, interval_seconds=None, interval_ticks=10, clock=clock
        )
        for _ in range(9):
            monitor.tick()
        assert monitor.heartbeats == 0  # 9 < 10: not yet due
        monitor.tick()
        assert monitor.heartbeats == 1  # exactly 10 since the last beat
        # one oversized tick crossing several boundaries beats once
        monitor.tick(25)
        assert monitor.heartbeats == 2

    def test_close_flushes_pending_ticks(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=100, interval_seconds=None, interval_ticks=50, clock=clock
        )
        monitor.start()
        monitor.tick(7)  # below the throttle: no heartbeat yet
        assert monitor.heartbeats == 0
        monitor.close(experiment="demo")
        # the final flush carried the un-heartbeaten progress out
        (beat,) = _events(log, "heartbeat")
        assert beat["done"] == 7
        (end,) = _events(log, "progress_end")
        assert end["done"] == 7
        assert end["experiment"] == "demo"

    def test_close_after_finish_is_a_no_op(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, total=2, clock=clock)
        monitor.start()
        monitor.tick(2)
        monitor.finish()
        events_before = len(log.events)
        assert monitor.close() is None
        assert monitor.close() is None  # idempotent
        assert len(log.events) == events_before

    def test_close_without_start_emits_nothing(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(log, total=5, clock=clock)
        assert monitor.close() is None
        assert log.events == []

    def test_context_manager_closes_on_exit(self, clock):
        log = EventLog()
        with ProgressMonitor(
            log, total=10, interval_seconds=None, interval_ticks=100, clock=clock
        ) as monitor:
            monitor.tick(3)
        assert len(_events(log, "progress_end")) == 1
        # an exception still flushes, and is not swallowed
        log2 = EventLog()
        with pytest.raises(RuntimeError):
            with ProgressMonitor(log2, total=10, clock=clock) as monitor:
                monitor.tick()
                raise RuntimeError("boom")
        assert len(_events(log2, "progress_end")) == 1

    def test_zero_progress_run_heartbeat_counts(self, clock):
        log = EventLog()
        monitor = ProgressMonitor(
            log, total=10, interval_seconds=None, interval_ticks=1, clock=clock
        )
        monitor.start()
        clock.advance(3.0)
        monitor.finish()  # run produced nothing, then shut down
        assert monitor.done == 0
        assert monitor.heartbeats == 1  # only finish()'s final beat
        (beat,) = _events(log, "heartbeat")
        assert beat["done"] == 0
        assert beat["pct"] == pytest.approx(0.0)
        assert beat["eta_s"] is None  # zero throughput: no ETA claim
        (end,) = _events(log, "progress_end")
        assert end["done"] == 0


class TestReadEventsLenient:
    def test_skips_and_counts_bad_lines(self, tmp_path):
        from repro.obs.monitor import read_events_lenient

        path = tmp_path / "events.jsonl"
        path.write_text(
            "\n".join(
                [
                    json.dumps({"event": "run_start"}),
                    "not json at all",
                    json.dumps(["a", "list"]),
                    json.dumps({"no_event_key": 1}),
                    "",  # blank lines are not an error
                    json.dumps({"event": "heartbeat", "done": 3}),
                ]
            )
            + "\n"
        )
        events, skipped = read_events_lenient(path)
        assert [e["event"] for e in events] == ["run_start", "heartbeat"]
        assert skipped == 3

    def test_empty_file(self, tmp_path):
        from repro.obs.monitor import read_events_lenient

        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert read_events_lenient(path) == ([], 0)


class TestDashboardDegradation:
    """Satellite: empty/malformed logs render a notice, never a crash."""

    def test_skipped_notice_rendered(self):
        text = render_dashboard([{"event": "run_start"}], skipped=4)
        assert text.startswith("(skipped 4 malformed log line(s))")

    def test_empty_event_list_renders(self):
        text = render_dashboard([])
        assert "(no progress events yet; 0 event(s) in log)" in text

    def test_non_dict_events_filtered(self):
        text = render_dashboard(["garbage", {"event": "run_start"}, None])
        assert "run:" in text

    def test_malformed_heartbeat_rows_tolerated(self):
        events = [
            {"event": "progress_start", "total": 10, "label": "steps"},
            {"event": "heartbeat"},  # no done/pct/rates at all
            {"event": "heartbeat", "rates": "not-a-dict", "recent": 7},
        ]
        text = render_dashboard(events)
        assert "progress: 0 ticks (total unknown)" in text
        assert "status: running" in text

    def test_tail_empty_log_exits_zero_with_notice(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        stream = io.StringIO()
        assert obs.tail_dashboard(path, once=True, stream=stream) == 0
        assert "(no progress events yet" in stream.getvalue()

    def test_tail_fully_malformed_log_exits_zero_and_counts(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        path.write_text("complete\ngarbage\n{{{\n")
        stream = io.StringIO()
        assert obs.tail_dashboard(path, once=True, stream=stream) == 0
        out = stream.getvalue()
        assert "(skipped 3 malformed log line(s))" in out
        assert "(no progress events yet" in out


class TestDashboardHistory:
    """Satellite: sparkline history columns over the heartbeat trail."""

    def _beating_run(self, n_beats=6):
        clock = FakeClock()
        log = EventLog()
        monitor = ProgressMonitor(
            log,
            total=100,
            label="steps",
            interval_seconds=None,
            interval_ticks=10**6,
            clock=clock,
        )
        monitor.start()
        for i in range(n_beats):
            clock.advance(1.0)
            monitor.tick(2 * (i + 1), widgets=i + 1)
            monitor.heartbeat()
        return log.events

    def test_history_rows_present(self):
        text = render_dashboard(self._beating_run())
        assert "history (6 heartbeats):" in text
        assert "steps_per_s" in text
        assert "widgets_per_s" in text
        # at least one sparkline character made it out
        assert any(c in text for c in "▁▂▃▄▅▆▇█")

    def test_history_off_switch(self):
        text = render_dashboard(self._beating_run(), history=False)
        assert "history (" not in text

    def test_single_heartbeat_skips_history(self):
        text = render_dashboard(self._beating_run(n_beats=1))
        assert "history (" not in text

    def test_malformed_beats_contribute_nothing(self):
        events = self._beating_run(n_beats=3)
        events.insert(3, {"event": "heartbeat", "recent": "corrupt"})
        text = render_dashboard(events)
        # 4 heartbeats seen, rows built from the 3 sane ones
        assert "history (4 heartbeats):" in text
        assert "steps_per_s" in text
