"""Span/timer nesting, parent/child timing, and the disabled fast path."""

import time
import tracemalloc

from repro import obs
from repro.obs import runtime


class TestNesting:
    def test_parent_child_relationship_and_timing(self):
        with obs.activate() as session:
            with obs.span("parent"):
                time.sleep(0.01)
                with obs.span("child", part="a"):
                    time.sleep(0.01)
        tracer = session.tracer
        (parent,) = tracer.find("parent")
        (child,) = tracer.find("child")
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None
        assert child.depth == parent.depth + 1
        assert child.labels == {"part": "a"}
        # the child's interval nests inside the parent's
        assert parent.start <= child.start
        assert child.end <= parent.end + 1e-9
        assert parent.duration >= child.duration

    def test_siblings_share_parent(self):
        with obs.activate() as session:
            with obs.span("root"):
                with obs.span("s1"):
                    pass
                with obs.span("s2"):
                    pass
        (root,) = session.tracer.find("root")
        children = session.tracer.children(root)
        assert sorted(c.name for c in children) == ["s1", "s2"]
        assert session.tracer.roots() == session.tracer.find("root")

    def test_coverage_of_tiled_children(self):
        with obs.activate() as session:
            with obs.span("root"):
                with obs.span("a"):
                    time.sleep(0.01)
                with obs.span("b"):
                    time.sleep(0.01)
        (root,) = session.tracer.find("root")
        assert 0.5 < session.tracer.coverage(root) <= 1.0 + 1e-9

    def test_timer_records_into_histogram(self):
        with obs.activate() as session:
            for _ in range(3):
                with obs.timer("op.seconds", kind="x"):
                    time.sleep(0.002)
        hist = session.registry.histogram("op.seconds", kind="x")
        assert hist.count == 3
        assert hist.min >= 0.002 * 0.5
        # the timer also leaves span records behind
        assert len(session.tracer.find("op.seconds")) == 3

    def test_total_time_sums_spans(self):
        with obs.activate() as session:
            for _ in range(2):
                with obs.span("rep"):
                    time.sleep(0.002)
        assert session.tracer.total_time("rep") >= 0.003


class TestActivationScoping:
    def test_activate_restores_prior_state(self):
        assert not runtime.enabled
        ambient_registry = runtime.registry
        with obs.activate() as session:
            assert runtime.enabled
            assert runtime.registry is session.registry
            assert runtime.registry is not ambient_registry
        assert not runtime.enabled
        assert runtime.registry is ambient_registry

    def test_enable_disable_roundtrip(self):
        reg = obs.MetricsRegistry()
        session = obs.enable(reg)
        try:
            assert obs.is_enabled()
            assert obs.get_registry() is reg
            assert session.registry is reg
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_nested_activate(self):
        with obs.activate() as outer:
            with obs.activate() as inner:
                assert runtime.registry is inner.registry
                runtime.registry.inc("inner.only")
            assert runtime.registry is outer.registry
            assert outer.registry.value("inner.only") == 0.0


class TestDisabledPath:
    def test_disabled_span_is_shared_noop(self):
        assert not runtime.enabled
        # no allocation: the same singleton is returned every call
        assert obs.span("anything", label="x") is obs.span("other")
        assert obs.timer("t.seconds") is obs.span("z")

    def test_disabled_path_adds_no_entries(self):
        assert not runtime.enabled
        before_metrics = len(runtime.registry)
        before_spans = len(runtime.tracer.finished)
        with obs.span("ghost"):
            with obs.timer("ghost.seconds"):
                pass
        assert len(runtime.registry) == before_metrics
        assert len(runtime.tracer.finished) == before_spans

    def test_disabled_path_no_measurable_per_call_allocation(self):
        assert not runtime.enabled

        def burst(n):
            for _ in range(n):
                with obs.span("hot"):
                    pass

        burst(100)  # warm up interned constants, bytecode caches
        tracemalloc.start()
        burst(10_000)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # a per-call allocation of even one small object would show up as
        # hundreds of KiB over 10k calls; the noop path must stay flat
        assert peak < 16 * 1024, f"disabled span path allocated {peak} bytes"
