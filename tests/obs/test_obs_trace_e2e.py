"""End-to-end causal tracing across serve → resilience → p2p → audit.

The acceptance scenario for the tracing layer: one ``assess_many``
request driven through the auto executor under injected faults, plus a
p2p round trip, must leave a span log where a **single trace_id** links

* the request root span (``serve.assess_many``),
* the executor worker spans (``serve.executor.shard``),
* the retry / breaker / degradation span events the resilience funnel
  annotated along the way,
* the network hop (``p2p.network.deliver``) and its retry, and
* every :class:`AuditRecord` the request produced —

and ``repro obs trace`` renders that log as one coherent tree.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.feedback.records import Feedback, Rating
from repro.main import main
from repro.obs import context as trace_ctx
from repro.obs.audit import audit_session
from repro.obs.context import read_span_jsonl, tracing_session
from repro.obs.events import EventLog
from repro.obs.export import render_trace_tree, trace_ids
from repro.p2p.network import SimulatedNetwork
from repro.resilience import FaultPlan
from repro.resilience import runtime as res
from repro.serve import AssessmentService

CONFIG = AssessorConfig(
    trust_function="average",
    behavior_test="single",
    trust_threshold=0.7,
    test_config=BehaviorTestConfig(
        window_size=8, min_windows=2, calibration_sets=50
    ),
)


def _make_service(n_servers=6, n_feedbacks=40):
    service = AssessmentService(config=CONFIG, max_workers=2)
    stream = random.Random(1234)
    t = 0.0
    for s in range(n_servers):
        sid = f"srv-{s:02d}"
        service.add_server(sid)
        p_good = 0.95 - 0.05 * s
        for i in range(n_feedbacks):
            t += 1.0
            service.observe(
                Feedback(
                    time=t,
                    server=sid,
                    client=f"cli-{i % 5}",
                    rating=(
                        Rating.POSITIVE
                        if stream.random() < p_good
                        else Rating.NEGATIVE
                    ),
                )
            )
    return service


@pytest.fixture(autouse=True)
def _parallel_capable(monkeypatch):
    """Make 'auto' resolve to the thread executor on any host."""
    monkeypatch.setattr("repro.serve.service.os.cpu_count", lambda: 8)
    monkeypatch.setattr("repro.serve.service._MIN_PARALLEL_BATCH", 2)


def _span_events(spans, name):
    return [
        event
        for span in spans
        for event in span.get("events") or []
        if event.get("name") == name
    ]


class TestEndToEndTrace:
    def test_one_trace_links_the_whole_request_path(self, tmp_path, capsys):
        baseline = _make_service().assess_many(executor="serial")
        service = _make_service()

        plan = FaultPlan(seed=0)
        # both retry attempts of the process step fault: the request
        # retries, exhausts, and degrades down the ladder to threads
        plan.arm("serve.executor.worker", "exception", max_fires=2)
        # the first network send is forcibly lost: send_reliable retries
        plan.arm("p2p.network.send", "crash", max_fires=1)

        network = SimulatedNetwork()
        network.register("peer-1", lambda mtype, payload: {"echo": payload})

        spans_path = tmp_path / "spans.jsonl"
        event_log = EventLog()
        root = trace_ctx.new_root(op="e2e")
        with obs.activate(), tracing_session(spans_path):
            with audit_session() as trail, res.activate(plan, event_log):
                with trace_ctx.use(root):
                    with obs.span("request.e2e"):
                        # auto resolves to the process executor; both of
                        # its retry attempts fault, so the ladder lands
                        # on threads — whose shard spans join the trace
                        chaos = service.assess_many(executor="auto")
                        for _ in range(2):  # failures 2 and 3 open the breaker
                            plan.arm(
                                "serve.executor.worker",
                                "exception",
                                max_fires=2,
                            )
                            service.assess_many(executor="process")
                        service.assess_many(executor="process")  # breaker rejects
                        with obs.span("client.trust_query"):
                            reply = network.send_reliable(
                                "peer-1", "trust_query", {"server": "srv-00"}
                            )

        # the chaos run still answers correctly (same verdict per
        # server — exact ε thresholds may differ because concurrent
        # thread workers interleave the shared calibration RNG; the
        # serial-path bit-equivalence contract lives in the chaos suite)
        assert {s: a.status for s, a in chaos.items()} == {
            s: a.status for s, a in baseline.items()
        }
        assert not any(a.degraded for a in chaos.values())
        assert reply == {"echo": {"server": "srv-00"}}
        assert network.stats.retries >= 1
        assert service.n_degradations == 4

        spans = read_span_jsonl(spans_path)
        # single trace: every span the request produced shares one id
        assert trace_ids(spans) == [root.trace_id]

        names = {span["name"] for span in spans}
        assert "request.e2e" in names
        assert "serve.assess_many" in names
        assert "serve.executor.shard" in names  # thread worker spans
        assert "p2p.network.deliver" in names  # the network hop
        shard = next(s for s in spans if s["name"] == "serve.executor.shard")
        assert shard["labels"]["executor"] == "thread"

        # resilience ladder milestones surfaced as span events
        assert _span_events(spans, "retry"), "retry attempts annotated"
        assert _span_events(spans, "executor_degraded")
        assert _span_events(spans, "breaker_open")
        assert _span_events(spans, "breaker_rejection")
        assert _span_events(spans, "p2p.retry")

        # structured events carry the same trace id
        degraded = [
            e for e in event_log.events if e["event"] == "executor_degraded"
        ]
        assert len(degraded) == 4
        assert all(e["trace_id"] == root.trace_id for e in degraded)

        # every audit record the request produced is linked to the trace
        assert trail.records, "fresh assessments must leave audit records"
        assert all(r["trace_id"] == root.trace_id for r in trail.records)

        # the library tree renderer reassembles one rooted tree...
        tree = render_trace_tree(spans, root.trace_id)
        assert tree.splitlines()[0].startswith(f"trace {root.trace_id}")
        assert "serve.assess_many" in tree
        assert "serve.executor.shard" in tree
        assert "p2p.network.deliver" in tree

        # ...and so does the CLI, from a unique trace-id prefix
        assert main(["obs", "trace", str(spans_path), root.trace_id[:12]]) == 0
        out = capsys.readouterr().out
        assert "request.e2e" in out
        assert "executor_degraded" in out

    def test_worker_spans_parent_under_the_request(self, tmp_path):
        """Shard spans written by pool threads slot under assess_many."""
        service = _make_service()
        spans_path = tmp_path / "spans.jsonl"
        root = trace_ctx.new_root()
        with obs.activate(), tracing_session(spans_path):
            with trace_ctx.use(root):
                service.assess_many(executor="thread")
        spans = read_span_jsonl(spans_path)
        by_id = {s["span_id"]: s for s in spans}
        shards = [s for s in spans if s["name"] == "serve.executor.shard"]
        assert shards
        for shard in shards:
            parent = by_id[shard["parent_span_id"]]
            assert parent["name"] == "serve.assess_many"
            assert shard["trace_id"] == root.trace_id

    def test_process_worker_spans_cross_the_boundary(self, tmp_path):
        """Pool *processes* append shard spans to the shared JSONL sink,
        linked to the request trace via serialized headers."""
        import os as _os

        service = _make_service()
        spans_path = tmp_path / "spans.jsonl"
        root = trace_ctx.new_root()
        with obs.activate(), tracing_session(spans_path):
            with trace_ctx.use(root):
                service.assess_many(executor="process")
        spans = read_span_jsonl(spans_path)
        shards = [s for s in spans if s["name"] == "serve.executor.shard"]
        assert shards
        assert {s["labels"]["executor"] for s in shards} == {"process"}
        assert all(s["trace_id"] == root.trace_id for s in shards)
        assert all(s["pid"] != _os.getpid() for s in shards)
        # parented under the request's assess_many span
        request = next(s for s in spans if s["name"] == "serve.assess_many")
        assert {s["parent_span_id"] for s in shards} == {request["span_id"]}
