"""Counter/gauge/histogram semantics and label separation."""

import math

import pytest

from repro.obs import MetricsRegistry, StreamingHistogram


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        counter = reg.counter("a.b")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("a.b").inc(-1)

    def test_inc_convenience_is_same_metric(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.inc("hits")
        assert reg.counter("hits").value == 3.0
        assert reg.value("hits") == 3.0

    def test_value_default_for_absent_metric(self):
        assert MetricsRegistry().value("never.written") == 0.0
        assert MetricsRegistry().value("never.written", default=7.0) == 7.0


class TestGauge:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set("pop", 10)
        reg.set("pop", 4)
        assert reg.value("pop") == 4.0

    def test_gauge_inc_can_go_negative(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("delta")
        gauge.inc(-2)
        assert gauge.value == -2.0


class TestLabelSeparation:
    def test_same_name_different_labels_are_distinct(self):
        reg = MetricsRegistry()
        reg.inc("msgs", 1, type="ping")
        reg.inc("msgs", 5, type="pong")
        assert reg.value("msgs", type="ping") == 1.0
        assert reg.value("msgs", type="pong") == 5.0
        assert reg.value("msgs") == 0.0  # unlabelled is its own series
        assert reg.total("msgs") == 6.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("m", 1, a="1", b="2")
        assert reg.value("m", b="2", a="1") == 1.0

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        reg.inc("m", 1, size=100)
        assert reg.value("m", size="100") == 1.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.inc("m", 1, a="x")
        with pytest.raises(TypeError):
            reg.gauge("m", a="y")  # same name, other kind, any labels

    def test_value_on_histogram_rejected(self):
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        with pytest.raises(TypeError):
            reg.value("h")


class TestStreamingHistogram:
    def test_exact_count_sum_min_max_mean(self):
        h = StreamingHistogram()
        for v in (0.5, 1.5, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == pytest.approx(0.5)
        assert h.max == pytest.approx(4.0)
        assert h.mean == pytest.approx(2.0)

    def test_empty_histogram_quantiles_are_nan(self):
        h = StreamingHistogram()
        assert math.isnan(h.p50)
        assert math.isnan(h.mean)
        assert math.isnan(h.min)

    def test_quantiles_approximate_uniform(self):
        h = StreamingHistogram()
        n = 10_000
        for i in range(1, n + 1):
            h.observe(i / n)
        # the sketch guarantees ~±10% relative error on the value axis
        assert h.p50 == pytest.approx(0.5, rel=0.15)
        assert h.p95 == pytest.approx(0.95, rel=0.15)
        assert h.p99 == pytest.approx(0.99, rel=0.15)

    def test_quantiles_bounded_by_observed_range(self):
        h = StreamingHistogram()
        for v in (0.02, 0.021, 0.019):
            h.observe(v)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert 0.019 <= h.quantile(q) <= 0.021

    def test_wide_dynamic_range(self):
        h = StreamingHistogram()
        for v in (1e-7, 1e-3, 10.0, 1e4):
            h.observe(v)
        assert h.quantile(1.0) == pytest.approx(1e4, rel=0.2)
        assert h.quantile(0.0) == pytest.approx(1e-7, rel=0.2)

    def test_zero_and_negative_observations_survive(self):
        h = StreamingHistogram()
        h.observe(0.0)
        h.observe(-1.0)
        assert h.count == 2
        assert h.min == -1.0
        assert h.quantile(0.5) <= 0.0 + 1e-8

    def test_invalid_quantile_rejected(self):
        h = StreamingHistogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_summary_keys(self):
        h = StreamingHistogram()
        h.observe(1.0)
        assert set(h.summary()) == {
            "count", "sum", "min", "mean", "max", "p50", "p95", "p99",
        }

    def test_empty_histogram_percentiles_are_nan(self):
        h = StreamingHistogram()
        assert h.count == 0
        for value in (h.min, h.max, h.mean, h.p50, h.p95, h.p99):
            assert math.isnan(value)

    def test_single_sample_every_percentile_is_that_sample(self):
        h = StreamingHistogram()
        h.observe(0.125)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert h.quantile(q) == pytest.approx(0.125, rel=0.1)
        assert h.min == h.max == 0.125
        assert h.mean == 0.125

    def test_all_identical_samples_collapse(self):
        h = StreamingHistogram()
        for _ in range(1000):
            h.observe(3.5)
        assert h.min == h.max == 3.5
        assert h.mean == pytest.approx(3.5)
        for q in (0.5, 0.95, 0.99):
            assert h.quantile(q) == pytest.approx(3.5, rel=0.1)

    def test_percentiles_monotone_p50_p95_p99(self):
        rng = __import__("random").Random(7)
        h = StreamingHistogram()
        for _ in range(5000):
            h.observe(rng.expovariate(10.0))
        assert h.p50 <= h.p95 <= h.p99
        assert h.min <= h.p50 and h.p99 <= h.max * 1.1


class TestRegistryCollection:
    def test_collect_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.inc("z.counter")
        reg.set("a.gauge", 2)
        reg.observe("m.hist", 0.5)
        samples = reg.collect()
        assert [s.name for s in samples] == ["a.gauge", "m.hist", "z.counter"]
        assert [s.kind for s in samples] == ["gauge", "histogram", "counter"]
        assert samples[1].summary["count"] == 1.0

    def test_snapshot_is_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.inc("c", 2, side="left")
        reg.observe("h", 0.25)
        snap = reg.snapshot()
        json.dumps(snap)  # must be serializable as-is
        assert snap["c"][0]["labels"] == {"side": "left"}
        assert snap["c"][0]["value"] == 2.0
        assert snap["h"][0]["summary"]["count"] == 1.0

    def test_reset_empties_registry(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.reset()
        assert len(reg) == 0
        assert reg.value("c") == 0.0
