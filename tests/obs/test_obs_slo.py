"""SLO-engine unit tests: specs, budgets, burn rates, bench bridge.

The contract: an :class:`SloSpec` is validated at construction, the
engine reads good/bad straight from registry snapshots (histogram
``fraction_below`` for latency, counter-family sums for ratios), burn
rates come from cumulative snapshot deltas, and the whole evaluation
round-trips through the BENCH_slo.json schema.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.obs.registry import MetricsRegistry, StreamingHistogram
from repro.obs.slo import (
    SloEngine,
    SloSpec,
    default_serve_slos,
    evaluate_events,
    evaluation_to_bench_rows,
    render_slo_report,
    validate_slo_payload,
)

LATENCY = SloSpec(
    name="lat",
    kind="latency",
    objective=0.9,
    metric="op.seconds",
    threshold_s=0.1,
)
RATIO = SloSpec(
    name="deg",
    kind="ratio",
    objective=0.9,
    bad_metric="op.bad",
    total_metric="op.total",
)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            SloSpec(name="x", kind="weird", objective=0.9)

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.1, 1.5])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SloSpec(
                name="x",
                kind="ratio",
                objective=objective,
                bad_metric="b",
                total_metric="t",
            )

    def test_latency_needs_metric_and_threshold(self):
        with pytest.raises(ValueError, match="metric"):
            SloSpec(name="x", kind="latency", objective=0.9)
        with pytest.raises(ValueError, match="threshold_s"):
            SloSpec(
                name="x", kind="latency", objective=0.9, metric="m", threshold_s=0.0
            )

    def test_ratio_needs_counter_pair(self):
        with pytest.raises(ValueError, match="bad_metric"):
            SloSpec(name="x", kind="ratio", objective=0.9, bad_metric="b")

    def test_budget_is_complement(self):
        assert LATENCY.budget == pytest.approx(0.1)

    def test_engine_rejects_duplicate_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([RATIO, RATIO])


class TestFractionBelow:
    def test_empty_is_nan(self):
        assert math.isnan(StreamingHistogram().fraction_below(1.0))

    def test_all_below_and_all_above(self):
        hist = StreamingHistogram()
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        assert hist.fraction_below(1.0) == 1.0
        assert hist.fraction_below(0.001) == 0.0

    def test_split_is_bucket_resolution_close(self):
        hist = StreamingHistogram()
        for _ in range(90):
            hist.observe(0.01)
        for _ in range(10):
            hist.observe(0.5)
        assert hist.fraction_below(0.1) == pytest.approx(0.9, abs=0.02)


class TestEvaluation:
    def _registry(self, slow=0, fast=100, bad=0, total=100):
        registry = MetricsRegistry()
        for _ in range(fast):
            registry.observe("op.seconds", 0.01)
        for _ in range(slow):
            registry.observe("op.seconds", 0.5)
        if total:
            registry.inc("op.total", total)
        if bad:
            registry.inc("op.bad", bad)
        return registry

    def test_healthy_run_is_ok(self):
        evaluation = SloEngine([LATENCY, RATIO]).evaluate(
            self._registry(slow=0, bad=0)
        )
        assert evaluation.ok
        assert [r.burning for r in evaluation.results] == [False, False]

    def test_blown_latency_budget_burns(self):
        evaluation = SloEngine([LATENCY]).evaluate(self._registry(slow=50, fast=50))
        [result] = evaluation.results
        assert result.budget_consumed > 1.0
        assert result.burning
        assert not evaluation.ok

    def test_blown_ratio_budget_burns(self):
        evaluation = SloEngine([RATIO]).evaluate(self._registry(bad=30))
        [result] = evaluation.results
        assert result.bad_fraction == pytest.approx(0.3)
        assert result.budget_consumed == pytest.approx(3.0)
        assert result.burning

    def test_within_budget_does_not_burn(self):
        evaluation = SloEngine([RATIO]).evaluate(self._registry(bad=5))
        [result] = evaluation.results
        assert result.budget_consumed == pytest.approx(0.5)
        assert not result.burning

    def test_no_traffic_is_nan_not_healthy(self):
        evaluation = SloEngine([LATENCY, RATIO]).evaluate(MetricsRegistry())
        for result in evaluation.results:
            assert math.isnan(result.bad_fraction)
            assert math.isnan(result.budget_consumed)
            assert not result.burning  # no data — surfaced as '----', not BURN
        assert evaluation.ok

    def test_counter_families_summed_across_labels(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 50, mode="a")
        registry.inc("op.total", 50, mode="b")
        registry.inc("op.bad", 4, mode="a")
        registry.inc("op.bad", 8, mode="b")
        [result] = SloEngine([RATIO]).evaluate(registry).results
        assert result.total == 100
        assert result.bad == 12

    def test_snapshot_source_equals_registry_source(self):
        registry = self._registry(slow=10, fast=90, bad=7)
        engine = SloEngine([LATENCY, RATIO])
        from_registry = engine.evaluate(registry)
        from_snapshot = engine.evaluate(registry.snapshot())
        for a, b in zip(from_registry.results, from_snapshot.results):
            assert a.total == b.total
            assert a.bad == b.bad


class TestBurnRates:
    def test_windows_from_history_deltas(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        old = registry.snapshot()  # 0 bad / 100 total so far
        registry.inc("op.total", 100)
        registry.inc("op.bad", 20)  # this window: 20 bad / 100 -> burn 2.0
        [result] = SloEngine([RATIO]).evaluate(registry, history=[old]).results
        assert result.burn_rates["w1"] == pytest.approx(2.0)
        assert result.burning  # window burn >1 even though overall is 10%/10%=1.0

    def test_multi_window_labels_widen_backwards(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        first = registry.snapshot()
        registry.inc("op.total", 100)
        second = registry.snapshot()
        registry.inc("op.total", 100)
        registry.inc("op.bad", 5)
        [result] = (
            SloEngine([RATIO]).evaluate(registry, history=[first, second]).results
        )
        # w1 spans the newest window (since `second`), w2 reaches to `first`
        assert result.burn_rates["w1"] == pytest.approx(0.5)
        assert result.burn_rates["w2"] == pytest.approx(0.25)

    def test_counter_reset_clamps_to_zero(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        registry.inc("op.bad", 30)
        old = registry.snapshot()
        fresh = MetricsRegistry()  # simulated process restart
        fresh.inc("op.total", 200)
        fresh.inc("op.bad", 10)
        [result] = SloEngine([RATIO]).evaluate(fresh, history=[old]).results
        assert result.burn_rates["w1"] == 0.0

    def test_empty_window_is_nan(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        snap = registry.snapshot()
        [result] = SloEngine([RATIO]).evaluate(registry, history=[snap]).results
        assert math.isnan(result.burn_rates["w1"])


class TestEventLogBridge:
    def test_evaluate_events_uses_last_snapshot_and_history(self, tmp_path):
        path = tmp_path / "events.jsonl"
        registry = MetricsRegistry()
        log = obs.EventLog(path)
        registry.inc("serve.requests", 100)
        log.emit_metrics(registry)
        registry.inc("serve.requests", 100)
        registry.inc("serve.resilience.degradations", 5)
        log.emit_metrics(registry)
        log.close()
        evaluation = evaluate_events(path)
        by_name = {r.spec.name: r for r in evaluation.results}
        degraded = by_name["serve.degraded_verdicts"]
        assert degraded.total == 200
        assert degraded.bad == 5
        assert degraded.burn_rates["w1"] == pytest.approx(5.0)

    def test_no_snapshots_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = obs.EventLog(path)
        log.emit("run_start")
        log.close()
        with pytest.raises(ValueError, match="no metric snapshots"):
            evaluate_events(path)


class TestRendering:
    def test_report_shows_status_and_summary(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        registry.inc("op.bad", 30)
        report = render_slo_report(SloEngine([RATIO, LATENCY]).evaluate(registry))
        assert "[BURN]" in report
        assert "no traffic" in report  # latency saw nothing
        assert "1/2 burning (deg)" in report

    def test_report_all_ok(self):
        registry = MetricsRegistry()
        registry.inc("op.total", 100)
        report = render_slo_report(SloEngine([RATIO]).evaluate(registry))
        assert "all 1 within budget" in report


class TestBenchBridge:
    def _payload(self, tmp_path, registry):
        evaluation = SloEngine(default_serve_slos()).evaluate(registry)
        path = tmp_path / "BENCH_slo.json"
        obs.write_bench_json(
            path, "slo", evaluation_to_bench_rows(evaluation), meta=obs.run_metadata()
        )
        return obs.read_bench_json(path)

    def test_round_trip_validates(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 100)
        registry.observe("serve.assess.seconds", 0.001)
        payload = self._payload(tmp_path, registry)
        validate_slo_payload(payload)
        names = {row["name"] for row in payload["results"]}
        assert names == {
            "slo.serve.latency.assess",
            "slo.serve.degraded_verdicts",
            "slo.core.calibration.staleness",
        }

    def test_no_traffic_rows_report_zero_consumption(self, tmp_path):
        payload = self._payload(tmp_path, MetricsRegistry())
        for row in payload["results"]:
            assert row["params"]["traffic"] == "none"
            assert row["stats"]["mean_s"] == 0.0
            assert row["slo"]["burning"] is False

    def test_validate_rejects_wrong_bench_kind(self, tmp_path):
        registry = MetricsRegistry()
        evaluation = SloEngine(default_serve_slos()).evaluate(registry)
        path = tmp_path / "BENCH_other.json"
        obs.write_bench_json(
            path, "other", evaluation_to_bench_rows(evaluation), meta={}
        )
        with pytest.raises(ValueError, match="bench field"):
            validate_slo_payload(obs.read_bench_json(path))

    def test_validate_rejects_missing_slo_block(self, tmp_path):
        path = tmp_path / "BENCH_slo.json"
        obs.write_bench_json(
            path,
            "slo",
            [
                {
                    "name": "slo.x",
                    "params": {},
                    "stats": {"mean_s": 0.0, "min_s": 0.0, "repeats": 1},
                }
            ],
            meta={},
        )
        with pytest.raises(ValueError, match="slo extension"):
            validate_slo_payload(obs.read_bench_json(path))

    def test_burn_rate_nan_serializes_as_null(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("serve.requests", 10)
        snap = registry.snapshot()
        evaluation = SloEngine(default_serve_slos()).evaluate(
            registry, history=[snap]
        )
        rows = evaluation_to_bench_rows(evaluation)
        by_name = {row["name"]: row for row in rows}
        rates = by_name["slo.serve.degraded_verdicts"]["slo"]["burn_rates"]
        assert rates["w1"] is None  # empty window: no traffic delta


class TestDefaults:
    def test_default_specs_are_well_formed(self):
        specs = default_serve_slos()
        assert [s.name for s in specs] == [
            "serve.latency.assess",
            "serve.degraded_verdicts",
            "core.calibration.staleness",
        ]
        SloEngine(specs)  # no duplicates, all valid

    def test_default_overrides_flow_through(self):
        [latency, degraded, staleness] = default_serve_slos(
            latency_threshold_s=0.2, latency_objective=0.95
        )
        assert latency.threshold_s == 0.2
        assert latency.objective == 0.95
