"""The crash flight recorder: rings, triggers, bundles, signals."""

import json
import os
import signal

import pytest

from repro import obs
from repro.obs import context as trace_ctx
from repro.obs import runtime
from repro.obs.flightrec import (
    POSTMORTEM_SCHEMA_VERSION,
    FlightRecorder,
    flight_recording,
    read_postmortem,
    render_postmortem,
    validate_postmortem_bundle,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tsdb import MetricsScraper, TimeSeriesStore


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestFlightRecorder:
    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, max_spans=0)
        with pytest.raises(ValueError):
            FlightRecorder(tmp_path, min_dump_interval_s=-1.0)

    def test_rings_are_bounded(self, tmp_path):
        recorder = FlightRecorder(tmp_path, max_spans=3, max_events=2)
        for i in range(10):
            recorder.record_span({"name": f"s{i}"})
            recorder.record_event({"event": f"e{i}"})
        bundle = recorder.bundle(reason="test")
        assert [s["name"] for s in bundle["spans"]] == ["s7", "s8", "s9"]
        assert [e["event"] for e in bundle["events"]] == ["e8", "e9"]

    def test_trigger_event_dumps(self, tmp_path):
        recorder = FlightRecorder(tmp_path, clock=FakeClock())
        recorder.record_event({"event": "executor_degraded"})  # not a trigger
        assert recorder.dumps == []
        recorder.record_event({"event": "breaker_open", "component": "thread"})
        (path,) = recorder.dumps
        assert "breaker_open" in path.name
        bundle = read_postmortem(path)
        assert bundle["reason"] == "breaker_open"
        assert bundle["info"]["trigger_event"]["component"] == "thread"

    def test_dump_throttle_counts_suppressed(self, tmp_path):
        clock = FakeClock()
        recorder = FlightRecorder(
            tmp_path, min_dump_interval_s=5.0, clock=clock
        )
        assert recorder.dump(reason="first") is not None
        assert recorder.dump(reason="storm") is None  # inside the window
        assert recorder.dump(reason="storm") is None
        assert recorder.n_suppressed == 2
        assert recorder.n_triggers == 3
        # force punches through the throttle (the fatal-signal path)
        assert recorder.dump(reason="fatal", force=True) is not None
        clock.advance(6.0)
        assert recorder.dump(reason="later") is not None
        assert [p.name[:14] for p in recorder.dumps] == [
            "POSTMORTEM_001",
            "POSTMORTEM_002",
            "POSTMORTEM_003",
        ]

    def test_reason_sanitized_in_filename(self, tmp_path):
        recorder = FlightRecorder(tmp_path, clock=FakeClock())
        path = recorder.dump(reason="weird/../reason !")
        assert path.parent == tmp_path
        assert "/" not in path.name.replace("POSTMORTEM", "")
        assert path.name == "POSTMORTEM_001_weird____reason__.json"

    def test_bundle_includes_series_tails_and_slo_state(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("req.errors", 50)
        registry.inc("req.total", 100)
        scraper = MetricsScraper(
            registry,
            interval_s=1.0,
            clock=FakeClock(),
            slo_engine=obs.SloEngine(
                [
                    obs.SloSpec(
                        name="req.errors",
                        kind="ratio",
                        objective=0.99,
                        bad_metric="req.errors",
                        total_metric="req.total",
                    )
                ]
            ),
        )
        recorder = FlightRecorder(tmp_path, scraper=scraper, series_tail=8)
        scraper.scrape()
        bundle = recorder.bundle(reason="test")
        validate_postmortem_bundle(bundle)
        assert "req.total" in bundle["series"]
        (slo_row,) = bundle["slo"]
        assert slo_row["name"] == "req.errors"
        assert slo_row["burning"] is True
        assert bundle["fault_plan"] is None

    def test_bundle_prefers_explicit_store(self, tmp_path):
        store = TimeSeriesStore()
        store.append("m", 1.0, 2.0)
        recorder = FlightRecorder(tmp_path, store=store)
        assert recorder.bundle(reason="t")["series"] == {"m": [[1.0, 2.0]]}

    def test_dump_writes_valid_json_round_trip(self, tmp_path):
        recorder = FlightRecorder(tmp_path, clock=FakeClock())
        recorder.record_event({"event": "x", "weird": object()})
        path = recorder.dump(reason="round_trip", extra="detail")
        bundle = read_postmortem(path)  # validates on read
        assert bundle["postmortem"] == POSTMORTEM_SCHEMA_VERSION
        assert bundle["info"]["extra"] == "detail"
        # non-serializable fields were repr'd, not dropped
        assert "object object" in bundle["events"][0]["weird"]


class TestRuntimeWiring:
    def test_flight_recording_installs_and_restores(self, tmp_path):
        assert runtime.flight_recorder is None
        with flight_recording(tmp_path) as recorder:
            assert runtime.flight_recorder is recorder
        assert runtime.flight_recorder is None

    def test_finished_spans_feed_the_ring(self, tmp_path):
        with obs.activate(), flight_recording(tmp_path) as recorder:
            with trace_ctx.use(trace_ctx.new_root(test="flightrec")):
                with runtime.span("outer"):
                    with runtime.span("inner"):
                        pass
        names = [s["name"] for s in recorder._spans]
        assert names == ["inner", "outer"]  # exit order
        assert all("trace_id" in s for s in recorder._spans)

    def test_untraced_spans_stay_out_of_the_ring(self, tmp_path):
        with obs.activate(), flight_recording(tmp_path) as recorder:
            with runtime.span("untraced"):
                pass
        assert len(recorder._spans) == 0

    def test_resilience_events_feed_the_ring(self, tmp_path):
        from repro.resilience import FaultPlan
        from repro.resilience import runtime as res

        with flight_recording(tmp_path) as recorder:
            with res.activate(FaultPlan(seed=0)):
                res.emit("fault_injected", site="somewhere")
        (event,) = recorder._events
        assert event["event"] == "fault_injected"
        assert event["site"] == "somewhere"
        # the active plan was captured into the bundle
        bundle = recorder.bundle(reason="t")
        assert bundle["fault_plan"] is None  # plan deactivated on exit

    def test_active_fault_plan_lands_in_bundle(self, tmp_path):
        from repro.resilience import FaultPlan
        from repro.resilience import runtime as res

        plan = FaultPlan(seed=7)
        plan.arm("serve.executor.worker", "exception", max_fires=2)
        with flight_recording(tmp_path) as recorder:
            with res.activate(plan):
                bundle = recorder.bundle(reason="t")
        state = bundle["fault_plan"]
        assert state["seed"] == 7
        assert state["specs"]["serve.executor.worker"]["mode"] == "exception"
        assert "serve.executor.worker" in state["counts"]

    def test_event_log_opt_in_forwarding(self, tmp_path):
        from repro.obs.events import EventLog

        with flight_recording(tmp_path) as recorder:
            EventLog().emit("quiet")  # default: not forwarded
            EventLog(forward_to_recorder=True).emit("loud")
        assert [e["event"] for e in recorder._events] == ["loud"]


class TestSignalHandlers:
    def test_install_uninstall_restores_previous(self, tmp_path):
        fired = []

        def previous(signum, frame):
            fired.append(signum)

        old = signal.signal(signal.SIGUSR1, previous)
        try:
            recorder = FlightRecorder(tmp_path, clock=FakeClock())
            hooked = recorder.install_signal_handlers(signals=("SIGUSR1",))
            assert hooked == ["SIGUSR1"]
            os.kill(os.getpid(), signal.SIGUSR1)
            # the recorder dumped, then chained to the previous handler
            assert fired == [signal.SIGUSR1]
            (path,) = recorder.dumps
            assert "fatal_signal" in path.name
            bundle = read_postmortem(path)
            assert bundle["info"]["signal"] == int(signal.SIGUSR1)
            recorder.uninstall_signal_handlers()
            assert signal.getsignal(signal.SIGUSR1) is previous
        finally:
            signal.signal(signal.SIGUSR1, old)

    def test_unknown_signal_names_skipped(self, tmp_path):
        recorder = FlightRecorder(tmp_path)
        assert recorder.install_signal_handlers(signals=("SIGNOSUCH",)) == []


class TestBundleValidation:
    @staticmethod
    def _minimal():
        return {
            "postmortem": POSTMORTEM_SCHEMA_VERSION,
            "reason": "r",
            "info": {},
            "meta": {},
            "spans": [],
            "events": [],
            "series": {},
            "slo": None,
            "fault_plan": None,
        }

    def test_minimal_bundle_valid(self):
        validate_postmortem_bundle(self._minimal())

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda b: b.update(postmortem=99), "schema version"),
            (lambda b: b.update(reason=""), "reason"),
            (lambda b: b.update(meta=None), "meta"),
            (lambda b: b.update(spans={}), "spans"),
            (lambda b: b.update(events=[1]), r"events\[0\]"),
            (lambda b: b.update(series=[]), "series"),
            (lambda b: b.update(series={"m": [[1.0]]}), r"series\['m'\]\[0\]"),
            (lambda b: b.update(slo=[{"name": "x"}]), r"slo\[0\]"),
            (lambda b: b.update(fault_plan=[]), "fault_plan"),
        ],
    )
    def test_offending_path_named(self, mutate, message):
        bundle = self._minimal()
        mutate(bundle)
        with pytest.raises(ValueError, match=message):
            validate_postmortem_bundle(bundle)

    def test_read_postmortem_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_postmortem(path)
        path.write_text(json.dumps({"postmortem": 0}))
        with pytest.raises(ValueError, match="schema version"):
            read_postmortem(path)


class TestRenderPostmortem:
    def test_empty_bundle_renders_placeholders(self):
        text = render_postmortem(TestBundleValidation._minimal())
        assert "post-mortem: r" in text
        assert "slo state: (none recorded)" in text
        assert "trace tail: (no spans recorded)" in text
        assert "events: (none recorded)" in text
        assert "series tails: (none recorded)" in text
        assert "active fault plan: (none)" in text

    def test_full_bundle_renders_every_section(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("req.total", 100)
        scraper = MetricsScraper(
            registry,
            interval_s=1.0,
            clock=FakeClock(),
            slo_engine=obs.SloEngine(obs.default_serve_slos()),
        )
        with obs.activate(), flight_recording(
            tmp_path, scraper=scraper, clock=FakeClock()
        ) as recorder:
            with trace_ctx.use(trace_ctx.new_root(test="render")):
                with runtime.span("serve.assess_many"):
                    pass
            recorder.record_event({"event": "executor_degraded", "to": "serial"})
            scraper.scrape()
            path = recorder.dump(reason="test_render")
        text = render_postmortem(read_postmortem(path))
        assert "slo state:" in text
        assert "trace tail: 1 span(s), 1 trace(s)" in text
        assert "serve.assess_many" in text
        assert "executor_degraded  to=serial" in text
        assert "series tails" in text
        assert "req.total" in text

    def test_tail_limits_event_count(self):
        bundle = TestBundleValidation._minimal()
        bundle["events"] = [{"event": f"e{i}"} for i in range(30)]
        text = render_postmortem(bundle, tail=5)
        assert "events (last 5 of 30):" in text
        assert "e29" in text and "e24" not in text
