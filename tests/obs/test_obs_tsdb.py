"""The embedded time-series store, scraper, and anomaly detector."""

import math

import pytest

from repro.obs import context as trace_ctx
from repro.obs.events import EventLog
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.tsdb import (
    AnomalyDetector,
    MetricsScraper,
    SeriesKey,
    TimeSeriesStore,
    render_series_table,
    render_sparkline,
    scraping_session,
)


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSeriesKey:
    def test_render_forms(self):
        assert SeriesKey("a.b").render() == "a.b"
        assert SeriesKey("a.b", (("k", "v"),)).render() == "a.b{k=v}"
        assert SeriesKey("a.b", (("k", "v"),), "p95").render() == "a.b{k=v}.p95"

    def test_equality_and_hash(self):
        a = SeriesKey("x", (("k", "v"),), "sum")
        b = SeriesKey("x", (("k", "v"),), "sum")
        assert a == b and hash(a) == hash(b)
        assert a != SeriesKey("x", (("k", "v"),), "count")


class TestTimeSeriesStore:
    def test_validation(self):
        with pytest.raises(ValueError):
            TimeSeriesStore(max_samples=1)
        with pytest.raises(ValueError):
            TimeSeriesStore(max_series=0)

    def test_append_and_read(self):
        store = TimeSeriesStore()
        store.append("m", 1.0, 10.0, labels={"k": "v"}, kind="counter")
        store.append("m", 2.0, 11.0, labels={"k": "v"}, kind="counter")
        (key,) = store.series()
        assert key.render() == "m{k=v}"
        assert store.kind_of(key) == "counter"
        assert store.samples(key) == [(1.0, 10.0), (2.0, 11.0)]
        assert store.latest_time() == 2.0

    def test_out_of_order_rejected(self):
        store = TimeSeriesStore()
        store.append("m", 5.0, 1.0)
        with pytest.raises(ValueError, match="precedes"):
            store.append("m", 4.0, 2.0)
        # equal timestamps are fine (a fast scraper in one slot)
        store.append("m", 5.0, 3.0)

    def test_ring_bound(self):
        store = TimeSeriesStore(max_samples=4)
        for i in range(10):
            store.append("m", float(i), float(i))
        (key,) = store.series()
        assert store.samples(key) == [(t, t) for t in (6.0, 7.0, 8.0, 9.0)]

    def test_max_series_drops_and_counts(self):
        store = TimeSeriesStore(max_series=2)
        store.append("a", 1.0, 1.0)
        store.append("b", 1.0, 1.0)
        store.append("c", 1.0, 1.0)  # silently dropped
        assert len(store.series()) == 2
        assert store.dropped_series == 1
        # existing series still accept samples past the cap
        store.append("a", 2.0, 2.0)
        assert len(store.samples(SeriesKey("a"))) == 2

    def test_query_range_filter(self):
        store = TimeSeriesStore()
        for i in range(10):
            store.append("m", float(i), float(i * i))
        assert store.query("m", start=3.0, end=5.0) == [
            (3.0, 9.0),
            (4.0, 16.0),
            (5.0, 25.0),
        ]
        assert store.query("absent") == []

    def test_query_downsampling_aggs(self):
        store = TimeSeriesStore()
        # two samples per 10s bucket: (0,1), (5,3) | (10,5), (15,7)
        for t, v in ((0.0, 1.0), (5.0, 3.0), (10.0, 5.0), (15.0, 7.0)):
            store.append("m", t, v)
        assert store.query("m", step=10.0, agg="last") == [(0.0, 3.0), (10.0, 7.0)]
        assert store.query("m", step=10.0, agg="mean") == [(0.0, 2.0), (10.0, 6.0)]
        assert store.query("m", step=10.0, agg="min") == [(0.0, 1.0), (10.0, 5.0)]
        assert store.query("m", step=10.0, agg="max") == [(0.0, 3.0), (10.0, 7.0)]
        assert store.query("m", step=10.0, agg="sum") == [(0.0, 4.0), (10.0, 12.0)]

    def test_query_validation(self):
        store = TimeSeriesStore()
        with pytest.raises(ValueError, match="agg"):
            store.query("m", agg="median")
        with pytest.raises(ValueError, match="step"):
            store.query("m", step=0.0)

    def test_record_snapshot_scalars_and_histograms(self):
        registry = MetricsRegistry()
        registry.inc("req.total", 3, path="a")
        registry.observe("lat.seconds", 0.01)
        registry.observe("lat.seconds", 0.03)
        store = TimeSeriesStore()
        appended = store.record_snapshot(registry.snapshot(), t=100.0)
        rendered = {key.render() for key, _, _, _ in appended}
        assert "req.total{path=a}" in rendered
        assert "lat.seconds.count" in rendered
        assert "lat.seconds.p95" in rendered
        assert store.n_scrapes == 1
        # the histogram count series carries the real observation count
        assert store.samples(SeriesKey("lat.seconds", (), "count")) == [(100.0, 2.0)]

    def test_snapshot_at_reconstruction(self):
        registry = MetricsRegistry()
        registry.inc("req.total", 5)
        registry.observe("lat.seconds", 0.02)
        store = TimeSeriesStore()
        store.record_snapshot(registry.snapshot(), t=100.0)
        registry.inc("req.total", 5)
        registry.observe("lat.seconds", 0.04)
        store.record_snapshot(registry.snapshot(), t=200.0)

        early = store.snapshot_at(150.0)
        assert early["req.total"][0]["value"] == 5.0
        assert early["lat.seconds"][0]["summary"]["count"] == 1
        late = store.snapshot_at(None)
        assert late["req.total"][0]["value"] == 10.0
        assert late["lat.seconds"][0]["summary"]["count"] == 2
        # nothing retained that far back: absent, not zero-filled
        assert store.snapshot_at(50.0) == {}

    def test_dump_load_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        registry.inc("req.total", 2, path="a")
        registry.observe("lat.seconds", 0.02)
        store = TimeSeriesStore(max_samples=16, max_series=99)
        store.record_snapshot(registry.snapshot(), t=10.0)
        registry.inc("req.total", 1, path="a")
        store.record_snapshot(registry.snapshot(), t=20.0)
        path = tmp_path / "TSDB.jsonl"
        store.dump(path)

        loaded = TimeSeriesStore.load(path)
        assert loaded.max_samples == 16 and loaded.max_series == 99
        assert loaded.n_scrapes == 2
        assert [k.render() for k in loaded.series()] == [
            k.render() for k in store.series()
        ]
        for key in store.series():
            assert loaded.samples(key) == store.samples(key)
        # digests survived: snapshot reconstruction matches
        assert loaded.snapshot_at(None) == store.snapshot_at(None)

    def test_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            TimeSeriesStore.load(empty)
        bad_header = tmp_path / "bad.jsonl"
        bad_header.write_text('{"not": "a tsdb"}\n')
        with pytest.raises(ValueError, match="TSDB"):
            TimeSeriesStore.load(bad_header)
        bad_line = tmp_path / "line.jsonl"
        bad_line.write_text('{"tsdb": 1}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            TimeSeriesStore.load(bad_line)


class TestMetricsScraper:
    def test_validation(self):
        with pytest.raises(ValueError):
            MetricsScraper(MetricsRegistry(), interval_s=0)

    def test_wall_anchored_slots(self):
        clock = FakeClock(1000.0)
        registry = MetricsRegistry()
        registry.inc("req.total")
        scraper = MetricsScraper(registry, interval_s=5.0, clock=clock)
        assert scraper.maybe_scrape() is True  # first call always scrapes
        assert scraper.maybe_scrape() is False  # same slot
        clock.advance(4.9)
        assert scraper.maybe_scrape() is False  # still slot 200
        clock.advance(0.2)
        assert scraper.maybe_scrape() is True  # slot rolled over
        assert scraper.store.n_scrapes == 2
        assert scraper.last_scrape_wall == clock.now

    def test_scrape_is_unconditional(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        registry.inc("req.total")
        scraper = MetricsScraper(registry, interval_s=5.0, clock=clock)
        assert scraper.scrape() == 1
        assert scraper.scrape() == 1  # same slot, still scrapes
        assert scraper.store.n_scrapes == 2

    def test_counters_differentiated_to_rates(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        observed = []

        class SpyDetector:
            def observe(self, key, t, value, stat="value"):
                observed.append((key.render(), t, value, stat))

        scraper = MetricsScraper(
            registry, interval_s=1.0, clock=clock, detector=SpyDetector()
        )
        registry.inc("req.total", 10)
        registry.inc("depth.gauge", 3)  # counter kind via inc
        registry.gauge("queue.depth").set(7)
        scraper.scrape()
        # first scrape: counters have no previous point -> no rate yet,
        # gauges observed at face value
        assert ("queue.depth", clock.now, 7.0, "value") in observed
        assert not any(stat == "rate" for _, _, _, stat in observed)

        observed.clear()
        clock.advance(2.0)
        registry.inc("req.total", 6)
        scraper.scrape()
        assert ("req.total", clock.now, 3.0, "rate") in observed  # 6 / 2s

    def test_counter_reset_clamped_to_zero_rate(self):
        clock = FakeClock()
        observed = []

        class SpyDetector:
            def observe(self, key, t, value, stat="value"):
                observed.append((key.render(), value, stat))

        registry = MetricsRegistry()
        registry.inc("req.total", 100)
        scraper = MetricsScraper(
            registry, interval_s=1.0, clock=clock, detector=SpyDetector()
        )
        scraper.scrape()
        clock.advance(1.0)
        fresh = MetricsRegistry()  # "restarted process": counter reset
        fresh.inc("req.total", 1)
        scraper.registry = fresh
        observed.clear()
        scraper.scrape()
        assert ("req.total", 0.0, "rate") in observed

    def test_scraping_session_installs_and_restores(self):
        from repro.obs import runtime

        scraper = MetricsScraper(MetricsRegistry(), interval_s=1.0)
        assert runtime.scraper is None
        with scraping_session(scraper) as active:
            assert active is scraper
            assert runtime.scraper is scraper
        assert runtime.scraper is None
        with scraping_session(None):
            assert runtime.scraper is None


class TestAnomalyDetector:
    def test_validation(self):
        for kwargs in (
            {"window": 3},
            {"threshold": 0.0},
            {"min_samples": 2},
            {"ewma_alpha": 0.0},
            {"ewma_alpha": 1.5},
            {"cooldown_samples": 0},
        ):
            with pytest.raises(ValueError):
                AnomalyDetector(**kwargs)

    @staticmethod
    def _feed_steady(detector, key, n, value=10.0, t0=0.0):
        for i in range(n):
            assert detector.observe(key, t0 + i, value + 0.01 * (i % 3)) is None

    def test_spike_fires_after_warmup(self):
        detector = AnomalyDetector(min_samples=8, threshold=4.0, ewma_alpha=1.0)
        key = SeriesKey("m")
        self._feed_steady(detector, key, 8)
        anomaly = detector.observe(key, 100.0, 1000.0)
        assert anomaly is not None
        assert anomaly["event"] == "metric_anomaly"
        assert anomaly["series"] == "m"
        assert abs(anomaly["zscore"]) >= 4.0
        assert detector.n_anomalies == 1
        assert list(detector.anomalies) == [anomaly]

    def test_too_few_samples_never_fire(self):
        detector = AnomalyDetector(min_samples=8, ewma_alpha=1.0)
        key = SeriesKey("m")
        for i in range(7):
            assert detector.observe(key, float(i), 10.0) is None
        # 8th value is wild but the window only holds 7 -> still silent
        assert detector.observe(key, 7.0, 1e9) is None

    def test_cooldown_suppresses_re_alarms(self):
        detector = AnomalyDetector(
            min_samples=8, threshold=4.0, ewma_alpha=1.0, cooldown_samples=4
        )
        key = SeriesKey("m")
        self._feed_steady(detector, key, 8)
        assert detector.observe(key, 10.0, 1000.0) is not None
        # spikes inside the cooldown are counted into the window but
        # fire nothing
        assert detector.observe(key, 11.0, 2000.0) is None
        assert detector.n_anomalies == 1

    def test_level_shift_stops_alarming(self):
        detector = AnomalyDetector(
            min_samples=8,
            threshold=4.0,
            ewma_alpha=1.0,
            cooldown_samples=1,
            window=8,
        )
        key = SeriesKey("m")
        self._feed_steady(detector, key, 8)
        fired = sum(
            detector.observe(key, 100.0 + i, 1000.0 + 0.01 * (i % 3)) is not None
            for i in range(20)
        )
        assert fired >= 1
        # after the window re-centers, the new level is the baseline
        assert detector.observe(key, 200.0, 1000.0) is None

    def test_anomaly_event_is_trace_stamped_and_logged(self):
        log = EventLog()
        detector = AnomalyDetector(min_samples=8, ewma_alpha=1.0, event_log=log)
        key = SeriesKey("m")
        self._feed_steady(detector, key, 8)
        ctx = trace_ctx.new_root(test="anomaly")
        with trace_ctx.use(ctx):
            anomaly = detector.observe(key, 50.0, 1e6)
        assert anomaly is not None
        assert anomaly["trace_id"] == ctx.trace_id
        (event,) = [e for e in log.events if e["event"] == "metric_anomaly"]
        assert event["series"] == "m"
        assert event["trace_id"] == ctx.trace_id

    def test_anomaly_feeds_flight_recorder(self, tmp_path):
        from repro.obs.flightrec import flight_recording

        detector = AnomalyDetector(min_samples=8, ewma_alpha=1.0)
        key = SeriesKey("m")
        self._feed_steady(detector, key, 8)
        with flight_recording(tmp_path) as recorder:
            detector.observe(key, 50.0, 1e6)
        assert any(
            e.get("event") == "metric_anomaly" for e in recorder._events
        )


class TestSloWindowEquivalence:
    """Acceptance: TSDB-backed burn == snapshot-delta burn on same data."""

    SPECS = [
        SloSpec(
            name="req.errors",
            kind="ratio",
            objective=0.99,
            bad_metric="req.errors",
            total_metric="req.total",
        ),
        SloSpec(
            name="lat",
            kind="latency",
            objective=0.95,
            metric="lat.seconds",
            threshold_s=0.05,
        ),
    ]

    @staticmethod
    def _drive(registry, errors, total, slow, fast):
        registry.inc("req.errors", errors)
        registry.inc("req.total", total)
        for _ in range(slow):
            registry.observe("lat.seconds", 0.2)
        for _ in range(fast):
            registry.observe("lat.seconds", 0.001)

    def test_evaluate_windows_matches_snapshot_delta_math(self):
        registry = MetricsRegistry()
        store = TimeSeriesStore()
        snapshots = []
        # synthetic load: error/latency mix changes scrape to scrape
        traffic = [(0, 100, 1, 99), (3, 100, 10, 90), (9, 100, 30, 70)]
        times = [100.0, 160.0, 220.0]
        for (errors, total, slow, fast), t in zip(traffic, times):
            self._drive(registry, errors, total, slow, fast)
            snapshot = registry.snapshot()
            snapshots.append((t, snapshot))
            store.record_snapshot(snapshot, t)

        engine = SloEngine(self.SPECS)
        now = times[-1]
        windows = (60.0, 120.0, 600.0)
        windowed = engine.evaluate_windows(store, windows, now=now)

        # the reference: the documented snapshot-delta math applied to
        # the raw snapshots the store ingested
        latest = snapshots[-1][1]
        for result in windowed.results:
            point = engine.evaluate(latest).results
            reference = next(r for r in point if r.spec.name == result.spec.name)
            assert result.total == reference.total
            assert result.bad == pytest.approx(reference.bad)
            for window in windows:
                older = {}
                for t, snapshot in snapshots:
                    if t <= now - window:
                        older = snapshot
                expected = engine._window_burn(result.spec, older, latest)
                got = result.burn_rates[f"{window:g}s"]
                if math.isnan(expected):
                    assert math.isnan(got)
                else:
                    assert got == pytest.approx(expected)

    def test_window_predating_history_sees_life_to_date_burn(self):
        registry = MetricsRegistry()
        registry.inc("req.errors", 5)
        registry.inc("req.total", 100)
        registry.observe("lat.seconds", 0.001)
        store = TimeSeriesStore()
        store.record_snapshot(registry.snapshot(), 100.0)
        engine = SloEngine(self.SPECS[:1])
        evaluation = engine.evaluate_windows(store, (3600.0,), now=100.0)
        (result,) = evaluation.results
        # empty older snapshot == zero counters: burn over the window is
        # the life-to-date bad fraction over the budget
        assert result.burn_rates["3600s"] == pytest.approx(0.05 / 0.01)
        assert result.burning

    def test_empty_store_raises(self):
        engine = SloEngine(self.SPECS[:1])
        with pytest.raises(ValueError, match="no samples"):
            engine.evaluate_windows(TimeSeriesStore(), (60.0,))

    def test_scraper_keeps_last_evaluation_and_notifies_recorder(self, tmp_path):
        from repro.obs.flightrec import flight_recording

        clock = FakeClock()
        registry = MetricsRegistry()
        registry.inc("req.errors", 50)
        registry.inc("req.total", 100)
        scraper = MetricsScraper(
            registry,
            interval_s=1.0,
            clock=clock,
            slo_engine=SloEngine(self.SPECS[:1]),
            slo_windows_s=(60.0,),
        )
        with flight_recording(
            tmp_path, scraper=scraper, min_dump_interval_s=0.0, clock=clock
        ) as recorder:
            scraper.scrape()
        assert scraper.last_slo_evaluation is not None
        assert scraper.last_slo_evaluation.burning
        assert len(recorder.dumps) == 1
        assert "slo_burn" in recorder.dumps[0].name


class TestRendering:
    def test_sparkline_shapes(self):
        assert render_sparkline([]) == ""
        assert render_sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
        line = render_sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"
        assert len(render_sparkline(list(range(100)), width=24)) == 24
        assert render_sparkline([float("nan"), 1.0, 2.0]) == render_sparkline(
            [1.0, 2.0]
        )

    def test_series_table(self):
        store = TimeSeriesStore()
        assert "no series" in render_series_table(store)
        for i in range(5):
            store.append("req.total", float(i), float(i), kind="counter")
        store.n_scrapes = 5
        table = render_series_table(store)
        assert "req.total" in table
        assert "counter" in table
        assert "5 scrape(s)" in table
