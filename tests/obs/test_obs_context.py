"""Trace-context unit tests: identity, serialization, propagation.

The contract: a :class:`TraceContext` survives every boundary crossing
byte-identically (headers round trip), derives children that stay in
the same trace, and rides the contextvar so spans opened anywhere under
``use()`` inherit the request identity.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs import context as ctx_mod
from repro.obs import runtime
from repro.obs.context import (
    SpanLog,
    TraceContext,
    child_of,
    current,
    explicit_span,
    innermost_explicit,
    new_root,
    read_span_jsonl,
    span_to_dict,
    tracing_session,
    use,
    wall_clock_of,
)


def _record_of(span):
    """A SpanRecord equivalent to what ``span``'s exit would emit."""
    from repro.obs.tracing import SpanRecord

    return SpanRecord(
        span_id=-1,
        parent_id=None,
        name=span.name,
        labels=span.labels,
        start=span._start,
        duration=0.0,
        trace_id=span.ctx.trace_id,
        trace_span_id=span.ctx.span_id,
        trace_parent_id=span.ctx.parent_span_id,
        events=span.events,
    )


class TestTraceContextIdentity:
    def test_new_root_shape(self):
        ctx = new_root()
        assert len(ctx.trace_id) == 32
        assert len(ctx.span_id) == 16
        assert ctx.parent_span_id is None
        assert ctx.baggage == {}

    def test_new_root_baggage_stringified(self):
        ctx = new_root(op="assess", seed=7)
        assert ctx.baggage == {"op": "assess", "seed": "7"}

    def test_child_keeps_trace_and_baggage(self):
        root = new_root(tenant="a")
        child = child_of(root)
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == root.span_id
        assert child.span_id != root.span_id
        assert child.baggage == root.baggage

    def test_ids_are_validated(self):
        with pytest.raises(ValueError, match="trace_id"):
            TraceContext(trace_id="xyz", span_id="0" * 16)
        with pytest.raises(ValueError, match="span_id"):
            TraceContext(trace_id="0" * 32, span_id="nope")

    def test_roots_are_distinct(self):
        assert new_root().trace_id != new_root().trace_id


class TestSerialization:
    def test_traceparent_round_trip(self):
        ctx = new_root()
        header = ctx.to_traceparent()
        assert header == f"00-{ctx.trace_id}-{ctx.span_id}-01"
        back = TraceContext.from_traceparent(header)
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id

    @pytest.mark.parametrize(
        "junk",
        ["", "garbage", "00-short-00", "zz-" + "0" * 32 + "-" + "0" * 16 + "-01"],
    )
    def test_malformed_traceparent_raises(self, junk):
        with pytest.raises(ValueError):
            TraceContext.from_traceparent(junk)

    def test_headers_round_trip_with_baggage(self):
        ctx = new_root(op="assess_many", batch="40")
        back = TraceContext.from_headers(ctx.to_headers())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.baggage == ctx.baggage

    def test_headers_are_json_and_pickle_safe(self):
        headers = new_root(k="v").to_headers()
        assert json.loads(json.dumps(headers)) == headers
        assert all(isinstance(v, str) for v in headers.values())

    def test_headers_without_traceparent_raise(self):
        with pytest.raises(ValueError, match="traceparent"):
            TraceContext.from_headers({"baggage": "a=b"})

    def test_malformed_baggage_member_raises(self):
        ctx = new_root()
        headers = {"traceparent": ctx.to_traceparent(), "baggage": "nokey"}
        with pytest.raises(ValueError, match="baggage"):
            TraceContext.from_headers(headers)

    def test_with_baggage_is_a_copy(self):
        ctx = new_root(a="1")
        more = ctx.with_baggage(b=2)
        assert ctx.baggage == {"a": "1"}
        assert more.baggage == {"a": "1", "b": "2"}
        assert more.trace_id == ctx.trace_id


class TestPropagation:
    def test_current_defaults_to_none(self):
        assert current() is None

    def test_use_attaches_and_restores(self):
        ctx = new_root()
        with use(ctx) as active:
            assert active is ctx
            assert current() is ctx
        assert current() is None

    def test_use_nests(self):
        outer, inner = new_root(), new_root()
        with use(outer):
            with use(inner):
                assert current() is inner
            assert current() is outer

    def test_live_span_derives_child_context(self):
        """Opening obs.span under a context steps the current() chain."""
        root = new_root()
        with obs.activate():
            with use(root):
                with obs.span("outer"):
                    stepped = current()
                    assert stepped is not None
                    assert stepped.trace_id == root.trace_id
                    assert stepped.parent_span_id == root.span_id
                assert current() is root

    def test_span_records_carry_trace_ids(self):
        root = new_root()
        with obs.activate() as session:
            with use(root):
                with obs.span("work"):
                    pass
        [record] = session.tracer.finished
        assert record.trace_id == root.trace_id
        assert record.trace_parent_id == root.span_id

    def test_spans_without_context_have_no_trace_id(self):
        with obs.activate() as session:
            with obs.span("plain"):
                pass
        [record] = session.tracer.finished
        assert record.trace_id is None


class TestExplicitSpan:
    def test_runs_under_child_of_given_ctx(self):
        parent = new_root()
        with explicit_span("shard", ctx=parent, shard=3) as span:
            assert span.ctx.trace_id == parent.trace_id
            assert span.ctx.parent_span_id == parent.span_id
            assert current() is span.ctx
            assert innermost_explicit() is span
        assert current() is None
        assert innermost_explicit() is None

    def test_labels_stringified(self):
        with explicit_span("shard", ctx=new_root(), shard=3) as span:
            assert span.labels == {"shard": "3"}

    def test_add_event_records_offsets(self, tmp_path):
        sink_path = tmp_path / "spans.jsonl"
        with tracing_session(sink_path):
            with explicit_span("shard", ctx=new_root()) as span:
                span.add_event("retry", attempt=1)
        [line] = read_span_jsonl(sink_path)
        [event] = line["events"]
        assert event["name"] == "retry"
        assert event["attempt"] == "1"
        assert event["offset_s"] >= 0.0

    def test_does_not_touch_tracer_stack(self):
        """Explicit spans never push onto the shared tracer stack."""
        with obs.activate() as session:
            with explicit_span("worker", ctx=new_root()):
                assert not session.tracer._stack
        assert len(session.tracer.finished) == 1

    def test_thread_isolation(self):
        """Each thread sees only its own explicit-span stack."""
        seen = {}

        def worker():
            seen["other"] = innermost_explicit()

        with explicit_span("mine", ctx=new_root()):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
            assert innermost_explicit() is not None
        assert seen["other"] is None


class TestSpanSink:
    def test_sink_skips_records_without_trace(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with obs.activate(), tracing_session(path):
            with obs.span("untraced"):
                pass
            with use(new_root()):
                with obs.span("traced"):
                    pass
        spans = read_span_jsonl(path)
        assert [s["name"] for s in spans] == ["traced"]

    def test_span_to_dict_shape(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        root = new_root()
        with obs.activate(), tracing_session(path):
            with use(root):
                with obs.span("outer", n=2):
                    with obs.span("inner"):
                        pass
        inner, outer = read_span_jsonl(path)  # children finish first
        assert inner["name"] == "inner"
        assert outer["name"] == "outer"
        assert inner["trace_id"] == outer["trace_id"] == root.trace_id
        assert inner["parent_span_id"] == outer["span_id"]
        assert outer["labels"] == {"n": "2"}
        assert inner["duration_s"] <= outer["duration_s"]
        assert isinstance(outer["pid"], int)

    def test_tracing_session_restores_previous_sink(self, tmp_path):
        assert runtime.span_sink is None
        with tracing_session(tmp_path / "a.jsonl") as outer_sink:
            assert runtime.span_sink is outer_sink
            with tracing_session(tmp_path / "b.jsonl"):
                assert runtime.span_sink is not outer_sink
            assert runtime.span_sink is outer_sink
        assert runtime.span_sink is None

    def test_tracing_session_none_disables(self, tmp_path):
        with tracing_session(tmp_path / "a.jsonl"):
            with tracing_session(None):
                assert runtime.span_sink is None

    def test_read_rejects_junk(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="line 1"):
            read_span_jsonl(path)
        path.write_text('{"no": "trace"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="not a span"):
            read_span_jsonl(path)

    def test_multiple_writers_append(self, tmp_path):
        """Two SpanLog handles on one file interleave whole lines."""
        path = tmp_path / "spans.jsonl"
        ctx = new_root()
        with SpanLog(path) as a, SpanLog(path) as b:
            with explicit_span("one", ctx=ctx) as span_a:
                pass
            with explicit_span("two", ctx=ctx) as span_b:
                pass
            # reconstruct the records the sinks would have been handed
            a.write(_record_of(span_a))
            b.write(_record_of(span_b))
        names = {s["name"] for s in read_span_jsonl(path)}
        assert names == {"one", "two"}


class TestWallAnchor:
    def test_wall_clock_of_is_affine(self):
        import time

        a = wall_clock_of(ctx_mod._ANCHOR_PERF)
        assert a == pytest.approx(ctx_mod._ANCHOR_WALL)
        assert wall_clock_of(ctx_mod._ANCHOR_PERF + 5.0) == pytest.approx(a + 5.0)
        # anchored positions land near the actual wall clock
        now = wall_clock_of(time.perf_counter())
        assert abs(now - time.time()) < 5.0
