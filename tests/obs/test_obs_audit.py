"""Decision-provenance audit layer: records, sampling, round trip, explain."""

import tracemalloc

import numpy as np
import pytest

from repro.adversary.hibernating import hibernating_attack_history
from repro.core.collusion import CollusionResilientMultiTest, CollusionResilientTest
from repro.core.config import BehaviorTestConfig
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating
from repro.feedback.windows import window_counts
from repro.main import main
from repro.obs import audit
from repro.stats.binomial import binomial_pmf
from repro.stats.distances import get_distance
from repro.stats.empirical import empirical_pmf
from repro.trust import AverageTrust

CONFIG = BehaviorTestConfig()


def _hibernating_history(server="attacker"):
    outcomes = hibernating_attack_history(600, 40, seed=2008)
    return TransactionHistory.from_outcomes(outcomes, server=server), outcomes


class TestAuditTrailSampling:
    def test_sample_every_one_records_everything(self):
        trail = audit.AuditTrail()
        assert all(trail.want_record() for _ in range(10))

    def test_sample_every_n_records_one_in_n(self):
        trail = audit.AuditTrail(sample_every=4)
        hits = [trail.want_record() for _ in range(12)]
        assert hits == [True, False, False, False] * 3
        assert trail.decisions_seen == 12

    def test_nested_scopes_share_one_decision(self):
        trail = audit.AuditTrail(sample_every=2)
        outcomes = []
        for _ in range(4):
            with trail.decision_scope(server="s") as sampled:
                # inner scopes must not advance the sampling clock
                with trail.decision_scope(step=1) as inner:
                    assert inner == sampled
                assert trail.want_record() == sampled
                outcomes.append(sampled)
        assert outcomes == [True, False, True, False]

    def test_scope_context_merges_inner_wins(self):
        trail = audit.AuditTrail()
        with trail.decision_scope(server="a", step=1):
            with trail.decision_scope(step=2, client="c"):
                assert trail.scope_context() == {
                    "server": "a",
                    "step": 2,
                    "client": "c",
                }

    def test_emit_lifts_server_and_keeps_context(self):
        trail = audit.AuditTrail()
        with trail.decision_scope(server="srv", step=7):
            record = trail.emit({"kind": "behavior_test"})
        assert record["server"] == "srv"
        assert record["context"] == {"step": 7}

    def test_emit_defaults_unknown_server(self):
        trail = audit.AuditTrail()
        assert trail.emit({})["server"] == "unknown"

    def test_capacity_evicts_oldest_and_counts(self):
        trail = audit.AuditTrail(capacity=3)
        for i in range(5):
            trail.emit({"i": i})
        assert [r["i"] for r in trail.records] == [2, 3, 4]
        assert trail.dropped == 2

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            audit.AuditTrail(sample_every=0)
        with pytest.raises(ValueError):
            audit.AuditTrail(capacity=0)


class TestSessionLifecycle:
    def test_session_restores_prior_state(self):
        assert not audit.enabled
        with audit.audit_session() as trail:
            assert audit.enabled
            assert audit.trail is trail
        assert not audit.enabled

    def test_enable_disable(self):
        fresh = audit.AuditTrail()
        assert audit.enable_audit(fresh) is fresh
        assert audit.enabled and audit.trail is fresh
        audit.disable_audit()
        assert not audit.enabled


class TestGoldenHibernatingAttack:
    """The acceptance scenario: a seeded hibernating attack, explained."""

    def test_failing_suffix_matches_independent_recomputation(self):
        history, outcomes = _hibernating_history()
        test = MultiBehaviorTest(CONFIG)
        with audit.audit_session() as trail:
            report = test.test(history)
        assert not report.passed
        (record,) = trail.records
        audit.validate_audit_record(record)
        assert record["test"] == "multi"
        assert record["reason"] == audit.REASON_SUFFIX_DISTANCE

        # recompute the failing round from scratch, straight off the
        # stats primitives the test itself is built on
        length = record["failing_suffix"]
        fail_length, verdict = report.first_failure
        assert length == fail_length
        suffix = np.asarray(outcomes)[len(outcomes) - length :]
        m = CONFIG.window_size
        counts = window_counts(suffix, m, align="recent")
        p_hat = float(counts.sum()) / (counts.size * m)
        observed = empirical_pmf(counts, m + 1)
        expected = binomial_pmf(m, p_hat)
        distance = float(get_distance(CONFIG.distance)(observed, expected))

        failing = next(
            r for r in record["rounds"] if r["suffix_length"] == length
        )
        assert failing["p_hat"] == pytest.approx(p_hat, rel=1e-9)
        assert failing["distance"] == pytest.approx(distance, rel=1e-9)
        assert failing["distance"] == pytest.approx(verdict.distance, rel=1e-9)
        assert failing["epsilon"] == pytest.approx(verdict.threshold, rel=1e-9)
        assert not failing["passed"]
        assert failing["distance"] > failing["epsilon"]
        assert failing["observed_pmf"] == pytest.approx(list(observed), abs=1e-8)
        assert failing["expected_pmf"] == pytest.approx(list(expected), abs=1e-8)

    def test_jsonl_round_trip_and_explain_cli(self, tmp_path, capsys):
        history, _ = _hibernating_history()
        test = MultiBehaviorTest(CONFIG)
        path = tmp_path / "run_audit.jsonl"
        with audit.audit_session(path=path, run_meta={"seed": 2008}) as trail:
            report = test.test(history)
            (record,) = trail.records
        records = audit.read_audit_jsonl(path)
        assert records == [record]

        assert main(["explain", "attacker", str(path)]) == 0
        out = capsys.readouterr().out
        length, verdict = report.first_failure
        assert f"most recent {length} transactions" in out
        assert f"{verdict.distance:.6f}" in out
        assert f"{verdict.threshold:.6f}" in out
        assert "REJECTED" in out

    def test_explain_unknown_server_lists_known(self, tmp_path, capsys):
        history, _ = _hibernating_history()
        path = tmp_path / "run_audit.jsonl"
        with audit.audit_session(path=path):
            MultiBehaviorTest(CONFIG).test(history)
        assert main(["explain", "nobody", str(path)]) == 1
        err = capsys.readouterr().err
        assert "nobody" in err and "attacker" in err


class TestRecordShapes:
    def test_single_test_record_honest_passes(self):
        rng = np.random.default_rng(42)
        outcomes = (rng.random(400) < 0.95).astype(np.int8)
        test = SingleBehaviorTest(CONFIG)
        with audit.audit_session() as trail:
            verdict = test.test(outcomes)
        (record,) = trail.records
        audit.validate_audit_record(record)
        assert verdict.passed
        assert record["passed"] and record["reason"] is None
        assert record["failing_suffix"] is None
        assert record["inputs"]["n"] == 400

    def test_insufficient_history_reason(self):
        test = SingleBehaviorTest(CONFIG)
        with audit.audit_session() as trail:
            verdict = test.test(np.ones(5, dtype=np.int8))
        (record,) = trail.records
        audit.validate_audit_record(record)
        assert verdict.insufficient
        # on_insufficient="pass" (the default): passed, but flagged
        assert record["passed"]
        assert record["rounds"][0]["insufficient"]

    def test_composite_tests_emit_exactly_one_record(self):
        history, _ = _hibernating_history()
        with audit.audit_session() as trail:
            MultiBehaviorTest(CONFIG).test(history)
            SingleBehaviorTest(CONFIG).test(history)
        assert len(trail.records) == 2
        assert [r["test"] for r in trail.records] == ["multi", "single"]

    def test_naive_and_optimized_records_agree(self):
        history, _ = _hibernating_history()
        records = []
        for strategy in ("optimized", "naive"):
            with audit.audit_session() as trail:
                # collect_all: early-stopping visits different rounds per
                # strategy; with every round run the records must agree
                MultiBehaviorTest(CONFIG, strategy=strategy, collect_all=True).test(
                    history
                )
            records.append(trail.records[0])
        fast, naive = records
        assert fast["failing_suffix"] == naive["failing_suffix"]
        assert fast["inputs"]["strategy"] == "optimized"
        assert naive["inputs"]["strategy"] == "naive"
        f = fast["rounds"][-1]
        n = naive["rounds"][-1]
        assert f["distance"] == pytest.approx(n["distance"], rel=1e-9)

    def test_assessment_record_trusted_and_suspicious(self):
        honest = TransactionHistory.from_outcomes(
            (np.random.default_rng(1).random(400) < 0.95).astype(np.int8),
            server="alice",
        )
        attacker, _ = _hibernating_history("mallory")
        assessor = TwoPhaseAssessor(
            behavior_test=MultiBehaviorTest(CONFIG), trust_function=AverageTrust()
        )
        with audit.audit_session() as trail:
            good = assessor.assess(honest)
            bad = assessor.assess(attacker)
        for record in trail.records:
            audit.validate_audit_record(record)
        assessments = [r for r in trail.records if r["kind"] == "assessment"]
        assert len(assessments) == 2
        ok, flagged = assessments
        assert good.status.value == "trusted"
        assert ok["server"] == "alice"
        assert ok["accepted"] and ok["reason"] is None
        assert ok["trust"]["function"] == "average"
        assert ok["trust"]["value"] == pytest.approx(good.trust_value)
        assert bad.status.value == "suspicious"
        assert flagged["server"] == "mallory"
        assert not flagged["accepted"]
        assert flagged["reason"] == audit.REASON_SUFFIX_DISTANCE
        assert flagged["behavior"]["failing_suffix"] is not None
        assert flagged["behavior"]["distance"] > flagged["behavior"]["epsilon"]

    def test_collusion_record_carries_reorder_trace(self):
        feedbacks = []
        t = 0.0
        rng = np.random.default_rng(3)
        # 2 heavy issuers + a tail of one-off clients
        for i in range(200):
            t += 1.0
            client = f"big{i % 2}" if i % 4 < 3 else f"small{i}"
            feedbacks.append(
                Feedback(
                    time=t,
                    server="srv",
                    client=client,
                    rating=Rating.POSITIVE
                    if rng.random() < 0.95
                    else Rating.NEGATIVE,
                )
            )
        history = TransactionHistory.from_feedbacks(feedbacks)
        for test in (
            CollusionResilientTest(CONFIG),
            CollusionResilientMultiTest(CONFIG),
        ):
            with audit.audit_session() as trail:
                test.test(history)
            (record,) = trail.records
            audit.validate_audit_record(record)
            reorder = record["reorder"]
            assert reorder["n_feedbacks"] == 200
            sizes = reorder["group_sizes"]
            assert sizes == sorted(sizes, reverse=True)
            assert reorder["issuers"][0] in ("big0", "big1")

    def test_include_pmfs_false_strips_pmfs(self):
        history, _ = _hibernating_history()
        with audit.audit_session(include_pmfs=False) as trail:
            MultiBehaviorTest(CONFIG).test(history)
        (record,) = trail.records
        audit.validate_audit_record(record)
        assert all("observed_pmf" not in r for r in record["rounds"])


class TestSummarize:
    def _records(self):
        honest = (np.random.default_rng(5).random(400) < 0.95).astype(np.int8)
        attacker, _ = _hibernating_history()
        with audit.audit_session() as trail:
            test = MultiBehaviorTest(CONFIG)
            with trail.decision_scope(server="alice", adversary="honest"):
                test.test(honest)
            with trail.decision_scope(adversary="hibernating"):
                test.test(attacker)
        return trail.records

    def test_summary_counts_reasons_and_margins(self):
        summary = audit.summarize_records(self._records())
        assert summary["n_behavior_tests"] == 2
        assert summary["reasons"] == {audit.REASON_SUFFIX_DISTANCE: 1}
        assert summary["by_adversary_class"]["hibernating"]["detections"] == 1
        assert summary["by_adversary_class"]["honest"]["detections"] == 0
        assert summary["margins"]["negative"] == 1

    def test_render_summary_mentions_reasons(self):
        text = audit.render_audit_summary(audit.summarize_records(self._records()))
        assert audit.REASON_SUFFIX_DISTANCE in text
        assert "margin" in text

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            audit.validate_audit_record({"schema_version": 1, "kind": "nope"})
        with pytest.raises(ValueError):
            audit.validate_audit_record("not a dict")
        good, *_ = self._records()
        bad = dict(good)
        bad["passed"] = not bad["passed"]  # reason now disagrees
        with pytest.raises(ValueError):
            audit.validate_audit_record(bad)


class TestDisabledOverhead:
    """Auditing off must cost one attribute read on the hot path."""

    def test_disabled_single_test_allocates_nothing_in_audit(self):
        outcomes = (np.random.default_rng(9).random(400) < 0.95).astype(np.int8)
        test = SingleBehaviorTest(CONFIG)
        test.test(outcomes)  # warm caches (calibration, pmf buffers)

        import repro.obs.audit as audit_module

        assert not audit_module.enabled
        tracemalloc.start()
        for _ in range(200):
            test.test(outcomes)
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        audit_allocs = [
            stat
            for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.endswith("obs/audit.py")
        ]
        assert not audit_allocs, f"disabled audit path allocated: {audit_allocs}"

    def test_sampled_auditing_bounds_record_count(self):
        history, _ = _hibernating_history()
        test = MultiBehaviorTest(CONFIG)
        with audit.audit_session(sample_every=10) as trail:
            for _ in range(30):
                test.test(history)
        assert len(trail.records) == 3
        assert trail.decisions_seen == 30
