"""Instrumentation correctness: registry numbers match pipeline ground truth."""

import numpy as np
import pytest

from repro import obs
from repro.core.calibration import ThresholdCalibrator
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.experiments.fig9_performance import run_fig9
from repro.feedback.history import TransactionHistory
from repro.p2p.network import SimulatedNetwork
from repro.simulation.engine import ReputationSimulation
from repro.simulation.server import HonestBehavior
from repro.trust.average import AverageTrust


class TestMultiTestingCounters:
    def test_optimized_run_reuses_suffix_stats(self):
        # multi_step < window_size: consecutive suffixes often share the
        # exact window set, plus every extension round carries over the
        # already-ingested windows — reuse must show up either way
        config = BehaviorTestConfig(window_size=10, multi_step=3)
        outcomes = generate_honest_outcomes(600, 0.95, seed=11)
        with obs.activate() as session:
            test = MultiBehaviorTest(config, strategy="optimized", collect_all=True)
            report = test.test(outcomes)
        reg = session.registry
        assert reg.value("core.multi_testing.suffix_reuse", strategy="optimized") > 0
        assert (
            reg.value("core.multi_testing.rounds", strategy="optimized")
            == report.n_rounds
        )
        assert reg.value("core.multi_testing.runs", strategy="optimized") == 1

    def test_default_step_still_reuses_window_stats(self):
        outcomes = generate_honest_outcomes(2000, 0.95, seed=11)
        with obs.activate() as session:
            MultiBehaviorTest(strategy="optimized", collect_all=True).test(outcomes)
        assert (
            session.registry.value(
                "core.multi_testing.suffix_reuse", strategy="optimized"
            )
            > 0
        )

    def test_naive_recomputes_every_round(self):
        config = BehaviorTestConfig(window_size=10, multi_step=50)
        outcomes = generate_honest_outcomes(1000, 0.95, seed=11)
        with obs.activate() as session:
            test = MultiBehaviorTest(config, strategy="naive", collect_all=True)
            report = test.test(outcomes)
        reg = session.registry
        # naive work = sum of windows over all rounds, far above one pass
        recomputed = reg.value(
            "core.multi_testing.suffix_recomputed", strategy="naive"
        )
        total_windows = 1000 // 10
        assert recomputed > total_windows
        assert reg.value("core.multi_testing.rounds", strategy="naive") == report.n_rounds

    def test_early_stop_counted(self):
        config = BehaviorTestConfig(window_size=10, multi_step=50)
        rng = np.random.default_rng(5)
        # honest prefix then a burst of failures: some suffix round fails
        outcomes = np.concatenate(
            [
                (rng.random(800) < 0.95).astype(np.int64),
                np.zeros(120, dtype=np.int64),
            ]
        )
        with obs.activate() as session:
            report = MultiBehaviorTest(config, strategy="optimized").test(outcomes)
        assert not report.passed
        assert (
            session.registry.value(
                "core.multi_testing.early_stops", strategy="optimized"
            )
            == 1
        )


class TestCalibrationCounters:
    def test_cache_hit_miss_mirrors_calibrator(self):
        calibrator = ThresholdCalibrator(n_sets=50)
        with obs.activate() as session:
            calibrator.threshold(10, 20, 0.95)  # miss
            calibrator.threshold(10, 20, 0.951)  # hit (same quantized p)
            calibrator.threshold(10, 30, 0.95)  # miss
        hits, misses = calibrator.cache_stats
        reg = session.registry
        assert reg.value("core.calibration.cache_hits") == hits == 1
        assert reg.value("core.calibration.cache_misses") == misses == 2
        hist = reg.histogram("core.calibration.seconds")
        assert hist.count == 2  # one timing per actual calibration
        assert hist.sum > 0


class TestTwoPhaseCounters:
    def _history(self, outcomes):
        return TransactionHistory.from_outcomes(np.asarray(outcomes, dtype=np.int64))

    def test_phase1_rejection_vs_phase2_assessment(self):
        config = BehaviorTestConfig(window_size=10, multi_step=50)
        honest = generate_honest_outcomes(600, 0.95, seed=3)
        rng = np.random.default_rng(4)
        dishonest = np.concatenate(
            [
                (rng.random(500) < 0.95).astype(np.int64),
                np.zeros(100, dtype=np.int64),
            ]
        )
        assessor = TwoPhaseAssessor(
            behavior_test=MultiBehaviorTest(config),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        with obs.activate() as session:
            good = assessor.assess(self._history(honest))
            bad = assessor.assess(self._history(dishonest))
        assert good.status.value in ("trusted", "untrusted")
        assert bad.status.value == "suspicious"
        reg = session.registry
        assert reg.value("core.two_phase.assessments") == 2
        assert reg.value("core.two_phase.phase1_rejections") == 1
        assert reg.value("core.two_phase.phase2_assessments") == 1
        assert reg.value("core.two_phase.status", status="suspicious") == 1
        assert reg.total("core.two_phase.status") == 2

    def test_single_test_counter_and_distance_evals(self):
        honest = generate_honest_outcomes(400, 0.95, seed=9)
        with obs.activate() as session:
            SingleBehaviorTest().test(honest)
        reg = session.registry
        assert reg.value("core.testing.tests", test="single", result="pass") == 1
        assert reg.value("stats.distances.evaluations", distance="l1") >= 1


class TestSimulationBridge:
    def _run_simulation(self, steps=5):
        assessor = TwoPhaseAssessor(
            trust_function=AverageTrust(), trust_threshold=0.5
        )
        sim = ReputationSimulation(
            servers={"srv-a": HonestBehavior(0.95), "srv-b": HonestBehavior(0.6)},
            clients=[f"c{i}" for i in range(6)],
            assessor=assessor,
            bootstrap_transactions=3,
            seed=42,
        )
        sim.run(steps)
        return sim

    def test_registry_totals_equal_simulation_metrics(self):
        with obs.activate() as session:
            sim = self._run_simulation(steps=6)
        reg = session.registry
        metrics = sim.metrics
        summary = metrics.summary()
        assert reg.value("simulation.steps") == summary["steps"]
        assert reg.value("simulation.transactions") == summary["transactions"]
        assert reg.value("simulation.good_transactions") == metrics.total_good
        assert reg.value("simulation.requests") == sum(
            m.requests for m in metrics.per_server.values()
        )
        assert (
            reg.value("simulation.refusals", reason="suspicious")
            == summary["refusals_suspicious"]
        )
        assert (
            reg.value("simulation.refusals", reason="trust")
            == summary["refusals_trust"]
        )
        hist = reg.histogram("simulation.step_seconds")
        assert hist.count == summary["steps"]

    def test_assessments_counter_mirrors_metrics(self):
        with obs.activate() as session:
            sim = self._run_simulation(steps=6)
        assert sim.metrics.total_assessments > 0
        assert (
            session.registry.value("simulation.assessments")
            == sim.metrics.total_assessments
        )

    def test_run_with_monitor_streams_heartbeats(self):
        log = obs.EventLog()
        monitor = obs.ProgressMonitor(
            log, total=6, label="steps", interval_seconds=None, interval_ticks=2
        )
        assessor = TwoPhaseAssessor(
            trust_function=AverageTrust(), trust_threshold=0.5
        )
        sim = ReputationSimulation(
            servers={"srv-a": HonestBehavior(0.95)},
            clients=[f"c{i}" for i in range(6)],
            assessor=assessor,
            bootstrap_transactions=3,
            seed=42,
        )
        sim.run(6, monitor=monitor)
        monitor.finish()
        assert monitor.done == 6
        (end,) = [e for e in log.events if e["event"] == "progress_end"]
        summary = sim.metrics.summary()
        assert end["counts"]["transactions"] == summary["transactions"]
        assert end["counts"]["assessments"] == summary["assessments"]
        assert end["counts"]["requests"] == summary["requests"]
        beats = [e for e in log.events if e["event"] == "heartbeat"]
        assert len(beats) >= 3  # every 2 of 6 ticks, plus finish()

    def test_run_without_monitor_unchanged(self):
        sim = self._run_simulation(steps=3)
        assert sim.metrics.steps == 3

    def test_publish_bridges_totals_as_gauges(self):
        sim = self._run_simulation(steps=4)  # obs disabled during the run
        reg = obs.MetricsRegistry()
        sim.metrics.publish(reg)
        assert reg.value("simulation.totals.steps") == sim.metrics.summary()["steps"]
        assert (
            reg.value("simulation.totals.transactions")
            == sim.metrics.total_transactions
        )
        assert reg.value("simulation.totals.servers") == 2


class TestP2PCounters:
    def test_network_messages_and_drops_mirror_stats(self):
        net = SimulatedNetwork(drop_rate=0.5, seed=1)
        net.register("n1", lambda t, p: "ok")
        with obs.activate() as session:
            for _ in range(40):
                net.send("n1", "ping", {})
        reg = session.registry
        assert reg.value("p2p.network.messages", type="ping") == net.stats.messages == 40
        assert reg.value("p2p.network.drops", type="ping") == net.stats.drops > 0

    def test_gossip_rounds_counted(self):
        from repro.p2p.gossip import GossipAggregator

        agg = GossipAggregator([0.0, 1.0, 0.5, 0.25], seed=3)
        with obs.activate() as session:
            agg.run_round()
            agg.run_round()
        reg = session.registry
        assert reg.value("p2p.gossip.rounds") == 2
        assert reg.value("p2p.gossip.messages") == 2 * 2 * 2  # 2 rounds x 2 pairs x 2


class TestFig9ThroughObs:
    @pytest.fixture(scope="class")
    def fig9_session(self, tmp_path_factory):
        bench_path = tmp_path_factory.mktemp("bench") / "BENCH_fig9.json"
        with obs.activate() as session:
            result = run_fig9(
                history_sizes=(2_000,),
                naive_sizes=(2_000,),
                multi_step=500,
                quick=True,
                bench_path=str(bench_path),
            )
        return session, result, bench_path

    def test_bench_artifact_produced_and_valid(self, fig9_session):
        _, result, bench_path = fig9_session
        payload = obs.read_bench_json(bench_path)  # validates on read
        assert payload["bench"] == "fig9"
        names = {row["name"] for row in payload["results"]}
        assert names == {"single", "multi_optimized", "multi_naive"}
        for row in payload["results"]:
            assert row["params"]["history_size"] == 2_000
            assert row["stats"]["min_s"] > 0
            assert row["stats"]["mean_s"] >= row["stats"]["min_s"] - 1e-12
        assert payload["meta"]["seed"] == 2008
        assert payload["meta"]["config_hash"]
        # the table reports the same minima the artifact captured
        by_name = {row["name"]: row["stats"]["min_s"] for row in payload["results"]}
        assert result.rows[0]["single_s"] == pytest.approx(by_name["single"])

    def test_span_coverage_no_untraced_gaps(self, fig9_session):
        session, _, _ = fig9_session
        tracer = session.tracer
        (root,) = tracer.find("experiments.fig9.run")
        # acceptance criterion: the instrumented sweep explains >= 95% of
        # its own wall time through direct child spans
        assert tracer.coverage(root) >= 0.95
        child_names = {c.name for c in tracer.children(root)}
        assert "experiments.fig9.prepare" in child_names
        assert "experiments.fig9.measure" in child_names
        assert "experiments.fig9.export" in child_names

    def test_timer_histograms_match_schemes(self, fig9_session):
        session, _, _ = fig9_session
        reg = session.registry
        for scheme in ("single", "multi_optimized", "multi_naive"):
            hist = reg.histogram(
                "experiments.fig9.test_seconds", scheme=scheme, history_size=2_000
            )
            assert hist.count == 1  # quick mode: one repeat

    def test_disabled_run_leaves_ambient_registry_untouched(self):
        from repro.obs import runtime

        assert not runtime.enabled
        before = len(runtime.registry)
        run_fig9(
            history_sizes=(2_000,), naive_sizes=(), multi_step=500, quick=True
        )
        assert not runtime.enabled
        assert len(runtime.registry) == before
