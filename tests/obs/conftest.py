"""Fixtures for the observability tests: always leave obs disabled."""

from __future__ import annotations

import pytest

from repro.obs import audit, runtime, scope


@pytest.fixture(autouse=True)
def _obs_disabled_after():
    """Guarantee test isolation: obs globals restored after every test."""
    saved = (runtime.enabled, runtime.registry, runtime.tracer, runtime.profiler)
    saved_sink = runtime.span_sink
    saved_scrape = (runtime.scraper, runtime.flight_recorder)
    saved_audit = (audit.enabled, audit.trail)
    saved_scope_cap = scope.max_nodes
    yield
    runtime.enabled, runtime.registry, runtime.tracer, runtime.profiler = saved
    runtime.span_sink = saved_sink
    runtime.scraper, runtime.flight_recorder = saved_scrape
    audit.enabled, audit.trail = saved_audit
    # node-scope attribution state (seen-node set, overflow counter, and
    # the active flag itself) is process-global like the runtime flags
    scope.reset(max_nodes_cap=saved_scope_cap)
