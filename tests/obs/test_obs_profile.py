"""Phase-attributed profiler: attribution, sampling, exports, zero-cost path."""

import json
import tracemalloc

import pytest

from repro import obs
from repro.obs import runtime
from repro.obs.profile import (
    UNTRACED,
    PhaseProfiler,
    profile_payload,
    validate_profile_payload,
)


def _visit(profiler, name, start, end, inner=None):
    """Drive the span hooks directly with a synthetic clock."""
    profiler.on_span_begin(name, start)
    if inner is not None:
        inner()
    profiler.on_span_end(end)


class TestPhaseAttribution:
    def test_nested_spans_build_semicolon_paths(self):
        prof = PhaseProfiler()
        prof.on_span_begin("outer", 0.0)
        prof.on_span_begin("inner", 1.0)
        prof.on_span_end(3.0)
        prof.on_span_end(10.0)
        assert {s.path for s in prof.phases()} == {"outer", "outer;inner"}

    def test_self_time_excludes_children(self):
        prof = PhaseProfiler()
        prof.on_span_begin("outer", 0.0)
        prof.on_span_begin("inner", 1.0)
        prof.on_span_end(3.0)
        prof.on_span_end(10.0)
        outer = prof.phase("outer")
        inner = prof.phase("outer;inner")
        assert outer.wall_s == pytest.approx(10.0)
        assert outer.self_s == pytest.approx(8.0)  # 10 - 2s child
        assert inner.wall_s == pytest.approx(2.0)
        assert inner.self_s == pytest.approx(2.0)

    def test_repeat_visits_accumulate_calls(self):
        prof = PhaseProfiler()
        for i in range(3):
            _visit(prof, "phase", float(i), float(i) + 0.5)
        stat = prof.phase("phase")
        assert stat.calls == 3
        assert stat.wall_s == pytest.approx(1.5)

    def test_phases_sorted_by_cumulative_wall_time(self):
        prof = PhaseProfiler()
        _visit(prof, "cheap", 0.0, 1.0)
        _visit(prof, "expensive", 1.0, 9.0)
        assert [s.path for s in prof.phases()] == ["expensive", "cheap"]

    def test_span_closed_before_install_is_ignored(self):
        # on_span_end with no open frame: the span predates the profiler
        prof = PhaseProfiler()
        prof.on_span_end(1.0)  # must not raise
        assert prof.phases() == []

    def test_negative_sample_interval_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfiler(sample_interval=-1)


class TestMemoryAttribution:
    def test_child_peak_not_billed_to_parent_self_window(self):
        prof = PhaseProfiler(track_memory=True)
        prof.install()
        try:
            with runtime.activate():
                runtime.profiler = prof
                try:
                    with runtime.span("outer"):
                        with runtime.span("inner"):
                            blob = bytearray(512 * 1024)
                        del blob
                finally:
                    runtime.profiler = None
        finally:
            prof.uninstall()
        inner = prof.phase("outer;inner")
        outer = prof.phase("outer")
        assert inner.mem_peak_bytes >= 512 * 1024
        # child peaks propagate upward: the parent's high-water is >= child's
        assert outer.mem_peak_bytes >= inner.mem_peak_bytes

    def test_install_starts_and_uninstall_stops_tracemalloc(self):
        if tracemalloc.is_tracing():  # pragma: no cover - env dependent
            pytest.skip("tracemalloc already active in this interpreter")
        prof = PhaseProfiler(track_memory=True)
        prof.install()
        assert tracemalloc.is_tracing()
        prof.uninstall()
        assert not tracemalloc.is_tracing()


class TestSampling:
    def _run_workload(self):
        import gc

        def leaf():
            return sum(range(5))

        # a GC pass mid-workload would fire finalizer/weakref callbacks,
        # injecting call events that shift the deterministic countdown —
        # collect up front and keep the collector off while sampling
        gc.collect()
        gc.disable()
        try:
            with obs.profile_session(sample_interval=7) as prof:
                with runtime.span("work"):
                    for _ in range(200):
                        leaf()
        finally:
            gc.enable()
        return prof

    def test_samples_attributed_to_open_phase(self):
        prof = self._run_workload()
        folded = prof.folded_samples
        assert folded, "sampling produced no stacks"
        assert any(key.startswith("work;") for key in folded)
        assert prof.phase("work").samples > 0

    def test_sampling_is_deterministic(self):
        first = self._run_workload().folded_samples
        second = self._run_workload().folded_samples
        in_phase = lambda d: {k: v for k, v in d.items() if k.startswith("work;")}
        assert in_phase(first) == in_phase(second)

    def test_samples_outside_spans_fall_into_untraced(self):
        prof = PhaseProfiler(sample_interval=1)
        prof.install()
        try:
            sum(range(10))
        finally:
            prof.uninstall()
        assert any(key.startswith(UNTRACED) for key in prof.folded_samples)

    def test_previous_profile_hook_restored(self):
        import sys

        sentinel = lambda frame, event, arg: None
        sys.setprofile(sentinel)
        try:
            prof = PhaseProfiler(sample_interval=5)
            prof.install()
            prof.uninstall()
            assert sys.getprofile() is sentinel
        finally:
            sys.setprofile(None)


class TestPeriodicSampling:
    """The out-of-band ``sample_hz`` mode (the fig9 runner default)."""

    def test_negative_hz_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfiler(sample_hz=-1.0)

    def test_periodic_samples_land_in_open_phase(self):
        import time

        with obs.profile_session(sample_hz=500.0) as prof:
            with runtime.span("work"):
                deadline = time.perf_counter() + 0.08
                while time.perf_counter() < deadline:
                    sum(range(50))
        folded = prof.folded_samples
        assert folded, "periodic sampler captured no stacks"
        assert any(key.startswith("work") for key in folded)
        assert prof.phase("work").samples > 0

    def test_sampler_thread_stopped_after_session(self):
        import threading

        with obs.profile_session(sample_hz=500.0):
            names = {t.name for t in threading.enumerate()}
            assert "repro-obs-sampler" in names
        names = {t.name for t in threading.enumerate()}
        assert "repro-obs-sampler" not in names

    def test_payload_records_sample_hz(self):
        prof = PhaseProfiler(sample_hz=97.0)
        prof.install()
        prof.uninstall()
        payload = profile_payload("p", prof)
        assert payload["sample_hz"] == 97.0
        validate_profile_payload(payload)

    def test_both_modes_can_coexist(self):
        # interval mode stays deterministic; hz mode just adds extra
        # statistical stacks on top — install/uninstall must manage both
        with obs.profile_session(sample_interval=7, sample_hz=500.0) as prof:
            with runtime.span("work"):
                for _ in range(200):
                    sum(range(5))
        assert any(key.startswith("work") for key in prof.folded_samples)


class TestLifecycle:
    def test_double_install_rejected(self):
        prof = PhaseProfiler()
        prof.install()
        try:
            with pytest.raises(RuntimeError):
                prof.install()
        finally:
            prof.uninstall()

    def test_uninstall_without_install_is_noop(self):
        PhaseProfiler().uninstall()

    def test_profile_session_restores_runtime_profiler(self):
        assert runtime.profiler is None
        with obs.profile_session() as prof:
            assert runtime.profiler is prof
            assert runtime.is_enabled()
        assert runtime.profiler is None

    def test_profile_session_rides_ambient_session(self):
        with runtime.activate() as ambient:
            with obs.profile_session() as prof:
                with runtime.span("phase"):
                    pass
            assert runtime.is_enabled()  # ambient session not torn down
            assert ambient is not None
        assert prof.phase("phase") is not None

    def test_profile_session_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with obs.profile_session():
                raise RuntimeError("boom")
        assert runtime.profiler is None
        assert not runtime.is_enabled()


class TestDisabledPathCost:
    def test_disabled_spans_allocate_nothing(self):
        """With obs off the span fast path must not allocate (profiler or not)."""
        assert not runtime.is_enabled()

        def burst(n):
            for _ in range(n):
                with runtime.span("hot.loop"):
                    pass

        burst(100)  # warm up caches outside the measurement window
        tracemalloc.start()
        try:
            burst(10_000)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak < 16 * 1024, f"disabled span path allocated {peak} bytes"

    def test_enabled_span_without_profiler_skips_hooks(self):
        with runtime.activate():
            assert runtime.profiler is None
            with runtime.span("plain"):
                pass  # must not raise despite profiler=None


class TestFoldedRendering:
    def _profiled(self):
        prof = PhaseProfiler()
        prof.on_span_begin("a", 0.0)
        prof.on_span_begin("b", 1.0)
        prof.on_span_end(2.0)
        prof.on_span_end(3.0)
        return prof

    def test_wall_folded_lines(self):
        text = obs.render_folded(self._profiled())
        lines = text.strip().splitlines()
        assert lines == ["a 2000000", "a;b 1000000"]

    def test_samples_folded_empty_without_sampling(self):
        assert obs.render_folded(self._profiled(), source="samples") == ""

    def test_invalid_source_rejected(self):
        with pytest.raises(ValueError):
            obs.render_folded(self._profiled(), source="flame")


class TestArtifacts:
    def _profiled(self):
        prof = PhaseProfiler()
        _visit(prof, "phase", 0.0, 1.0)
        return prof

    def test_payload_round_trip(self, tmp_path):
        path = tmp_path / "PROFILE_x.json"
        written = obs.write_profile_json(
            path, "x", self._profiled(), meta={"seed": 1}
        )
        loaded = obs.read_profile_json(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["profile"] == "x"
        assert loaded["schema_version"] == obs.PROFILE_SCHEMA_VERSION
        assert loaded["meta"]["seed"] == 1
        assert loaded["phases"][0]["path"] == "phase"

    def test_folded_path_and_write_folded(self, tmp_path):
        path = tmp_path / "PROFILE_x.json"
        folded = obs.folded_path_for(path)
        assert folded == tmp_path / "PROFILE_x.folded"
        obs.write_folded(folded, self._profiled())
        assert folded.read_text().startswith("phase ")

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.pop("profile"),
            lambda p: p.update(profile=""),
            lambda p: p.update(schema_version=99),
            lambda p: p.update(meta=[]),
            lambda p: p.update(phases={}),
            lambda p: p["phases"].append({"path": "x"}),
            lambda p: p["phases"].append(
                {
                    "path": "",
                    "calls": 1,
                    "wall_s": 0.0,
                    "self_s": 0.0,
                    "mem_peak_bytes": 0,
                    "samples": 0,
                }
            ),
            lambda p: p["phases"][0].update(calls=True),
            lambda p: p.update(folded_samples=[]),
        ],
    )
    def test_validate_rejects_malformed(self, mutate):
        payload = obs.profile_payload("x", self._profiled())
        mutate(payload)
        with pytest.raises(ValueError):
            obs.validate_profile_payload(payload)

    def test_validate_accepts_good_payload(self):
        obs.validate_profile_payload(obs.profile_payload("x", self._profiled()))
