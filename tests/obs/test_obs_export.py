"""Exporter output formats: aligned text and Prometheus exposition."""

import re

from repro import obs


def _populated_registry() -> obs.MetricsRegistry:
    reg = obs.MetricsRegistry()
    reg.inc("core.calibration.cache_hits", 7)
    reg.inc("p2p.network.messages", 3, type="lookup")
    reg.set("simulation.totals.steps", 50)
    for v in (0.01, 0.02, 0.04):
        reg.observe("core.testing.seconds", v)
    return reg


class TestTextExporter:
    def test_contains_every_metric_line(self):
        text = obs.render_text(_populated_registry())
        assert "core.calibration.cache_hits" in text
        assert "p2p.network.messages{type=lookup}  3" in text
        assert "simulation.totals.steps" in text
        assert re.search(r"core\.testing\.seconds\s+count=3", text)
        assert "p95=" in text and "mean=" in text

    def test_empty_registry(self):
        assert "no metrics" in obs.render_text(obs.MetricsRegistry())


class TestPrometheusExporter:
    def test_counter_exposition(self):
        out = obs.render_prometheus(_populated_registry())
        assert "# TYPE repro_core_calibration_cache_hits_total counter" in out
        assert "repro_core_calibration_cache_hits_total 7" in out
        assert 'repro_p2p_network_messages_total{type="lookup"} 3' in out

    def test_gauge_exposition(self):
        out = obs.render_prometheus(_populated_registry())
        assert "# TYPE repro_simulation_totals_steps gauge" in out
        assert "repro_simulation_totals_steps 50" in out

    def test_histogram_as_summary(self):
        out = obs.render_prometheus(_populated_registry())
        assert "# TYPE repro_core_testing_seconds summary" in out
        assert 'repro_core_testing_seconds{quantile="0.5"}' in out
        assert 'repro_core_testing_seconds{quantile="0.99"}' in out
        assert "repro_core_testing_seconds_count 3" in out
        assert re.search(r"repro_core_testing_seconds_sum 0\.0[67]", out)

    def test_names_sanitized(self):
        reg = obs.MetricsRegistry()
        reg.inc("weird-name.with chars!")
        out = obs.render_prometheus(reg)
        sample_lines = [l for l in out.splitlines() if not l.startswith("#")]
        for line in sample_lines:
            name = line.split("{")[0].split(" ")[0]
            assert re.fullmatch(r"[a-zA-Z_:][a-zA-Z0-9_:]*", name), name

    def test_type_comment_emitted_once_per_name(self):
        reg = obs.MetricsRegistry()
        reg.inc("msgs", 1, type="a")
        reg.inc("msgs", 1, type="b")
        out = obs.render_prometheus(reg)
        assert out.count("# TYPE repro_msgs_total counter") == 1
        assert out.count("repro_msgs_total{") == 2

    def test_empty_registry(self):
        assert obs.render_prometheus(obs.MetricsRegistry()) == ""

    def test_help_emitted_once_per_family(self):
        reg = obs.MetricsRegistry()
        reg.inc("msgs", 1, type="a")
        reg.inc("msgs", 1, type="b")
        reg.set("load", 0.5)
        out = obs.render_prometheus(reg)
        assert out.count("# HELP repro_msgs_total repro metric 'msgs'") == 1
        assert out.count("# HELP repro_load repro metric 'load'") == 1

    def test_family_series_are_contiguous(self):
        reg = obs.MetricsRegistry()
        reg.inc("a.msgs", 1, type="x")
        reg.set("b.gauge", 1)
        reg.inc("a.msgs", 1, type="y")
        out = obs.render_prometheus(reg)
        lines = out.splitlines()
        series = [l.split("{")[0].split(" ")[0] for l in lines if not l.startswith("#")]
        # once a family's samples end, the name never reappears
        seen, finished = set(), set()
        for name in series:
            assert name not in finished, f"family {name} split across the output"
            if seen and name not in seen:
                finished |= seen - {name}
            seen.add(name)

    def test_label_value_backslash_escaped(self):
        reg = obs.MetricsRegistry()
        reg.inc("m", 1, path="C:\\temp\\x")
        out = obs.render_prometheus(reg)
        assert 'path="C:\\\\temp\\\\x"' in out

    def test_label_value_quote_escaped(self):
        reg = obs.MetricsRegistry()
        reg.inc("m", 1, msg='say "hi"')
        out = obs.render_prometheus(reg)
        assert 'msg="say \\"hi\\""' in out

    def test_label_value_newline_escaped(self):
        reg = obs.MetricsRegistry()
        reg.inc("m", 1, text="line1\nline2")
        out = obs.render_prometheus(reg)
        assert 'text="line1\\nline2"' in out
        # the exposition format is line-oriented: no raw newline may leak
        for line in out.splitlines():
            assert "line1" not in line or "line2" in line

    def test_escaping_round_trips_through_exposition_parser(self):
        # unescape exactly per the spec and recover the original value
        reg = obs.MetricsRegistry()
        original = 'mix\\of "all" three\nescapes'
        reg.inc("m", 1, v=original)
        out = obs.render_prometheus(reg)
        (line,) = [l for l in out.splitlines() if l.startswith("repro_m_total{")]
        quoted = line[line.index('v="') + 3 : line.rindex('"}')]
        unescaped = (
            quoted.replace("\\\\", "\x00")
            .replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\x00", "\\")
        )
        assert unescaped == original
