"""Adversarial edge cases: where each defense layer ends and the next begins.

Each test documents a *known boundary* of a scheme — not a bug, but the
place where responsibility hands over to another mechanism (trust
threshold, joining cost, ...).  Keeping these as executable facts stops
future refactors from accidentally claiming more than the math delivers.
"""

import numpy as np
import pytest

from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.segmented import SegmentedBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.feedback.history import TransactionHistory
from repro.trust.average import AverageTrust


class TestSegmentationLaundering:
    """A long constant-rate bad regime is *legitimized* by segmentation —
    and that is fine, because the trust phase rejects it."""

    def _laundered_history(self, seed=1):
        # honest cover, then a long steady 50%-quality regime: iid within
        # the regime, long enough to be its own segment
        return np.concatenate(
            [
                generate_honest_outcomes(600, 0.97, seed=seed),
                generate_honest_outcomes(300, 0.5, seed=seed + 1),
            ]
        )

    def test_segmented_test_passes_the_laundered_history(
        self, paper_config, shared_calibrator
    ):
        trace = self._laundered_history()
        report = SegmentedBehaviorTest(paper_config, shared_calibrator).test(trace)
        assert report.passed  # each regime is genuinely binomial
        assert report.n_segments == 2

    def test_trust_phase_catches_what_segmentation_legitimizes(
        self, paper_config, shared_calibrator
    ):
        trace = self._laundered_history()
        assessor = TwoPhaseAssessor(
            behavior_test=SegmentedBehaviorTest(paper_config, shared_calibrator),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        result = assessor.assess(TransactionHistory.from_outcomes(trace))
        # not suspicious — openly bad; the threshold does the rejecting
        assert result.status is AssessmentStatus.UNTRUSTED

    def test_plain_multi_testing_flags_the_same_history(
        self, paper_config, shared_calibrator
    ):
        # the static schemes treat the regime change itself as suspicious:
        # stricter on attackers, but also the source of the false alarms
        # on honest drift that motivated segmentation
        trace = self._laundered_history()
        assert not MultiBehaviorTest(paper_config, shared_calibrator).test(trace).passed


class TestWindowBoundaryGaming:
    def test_one_bad_per_window_at_boundaries_detected(
        self, paper_config, shared_calibrator
    ):
        # an attacker aware of m=10 spacing its bads exactly m apart still
        # produces constant window counts — more regular than binomial
        trace = np.tile([1] * 9 + [0], 60)
        assert not SingleBehaviorTest(paper_config, shared_calibrator).test(trace).passed

    def test_window_size_mismatch_does_not_blind_the_test(
        self, shared_calibrator
    ):
        # attacker calibrated against m=10 regularity, defender uses m=7
        config = BehaviorTestConfig(window_size=7)
        test_ = SingleBehaviorTest(config)
        trace = np.tile([1] * 9 + [0], 60)
        assert not test_.test(trace).passed


class TestTinyAndDegenerateInputs:
    def test_history_of_exactly_min_transactions(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        verdict = test_.test(np.ones(paper_config.min_transactions, dtype=np.int8))
        assert not verdict.insufficient
        assert verdict.n_windows == paper_config.min_windows

    def test_one_below_min_transactions(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        verdict = test_.test(
            np.ones(paper_config.min_transactions - 1, dtype=np.int8)
        )
        assert verdict.insufficient

    def test_single_bad_in_otherwise_perfect_history(
        self, paper_config, shared_calibrator
    ):
        # one blemish in 1000 transactions must never flag a server
        trace = np.ones(1000, dtype=np.int8)
        trace[500] = 0
        assert SingleBehaviorTest(paper_config, shared_calibrator).test(trace).passed
        assert MultiBehaviorTest(paper_config, shared_calibrator).test(trace).passed

    def test_alternating_good_bad_detected(self, paper_config, shared_calibrator):
        # p_hat = 0.5 but every window is exactly 5/10: zero variance
        trace = np.tile([1, 0], 300)
        assert not SingleBehaviorTest(paper_config, shared_calibrator).test(trace).passed

    def test_maximum_variance_blocks_detected(self, paper_config, shared_calibrator):
        # all-good and all-bad windows only: far over-dispersed
        trace = np.tile([1] * 10 + [0] * 10, 30)
        assert not SingleBehaviorTest(paper_config, shared_calibrator).test(trace).passed
