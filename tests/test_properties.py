"""Cross-cutting property-based tests (hypothesis).

Invariants that span modules and would be awkward to pin with single
examples: ring-interval algebra, serialization round-trips, reorder
invariants, oracle/assessor consistency.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary.oracle import AssessmentOracle
from repro.core.collusion import reorder_by_issuer
from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.feedback.history import TransactionHistory
from repro.feedback.io import (
    read,
    write_feedback_csv,
    write_feedback_jsonl,
)
from repro.feedback.records import Feedback, Rating
from repro.p2p.chord import in_interval
from repro.trust.average import AverageTrust
from repro.trust.weighted import WeightedTrust

# ---------------------------------------------------------------------- #
# strategies

feedback_lists = st.lists(
    st.builds(
        Feedback,
        time=st.integers(min_value=0, max_value=10_000).map(float),
        server=st.just("srv"),
        client=st.sampled_from([f"c{i}" for i in range(8)]),
        rating=st.sampled_from([Rating.POSITIVE, Rating.NEGATIVE]),
        category=st.sampled_from([None, "NA", "EU"]),
        authentic=st.booleans(),
    ),
    min_size=1,
    max_size=40,
)

outcome_arrays = st.lists(
    st.integers(min_value=0, max_value=1), min_size=1, max_size=120
).map(lambda xs: np.asarray(xs, dtype=np.int8))


class TestRingIntervalAlgebra:
    @given(
        x=st.integers(min_value=0, max_value=255),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_open_interval_partitions_the_ring(self, x, a, b):
        # for a != b, every x != a is in exactly one of (a, b] and (b, a]
        if a == b:
            return
        in_first = in_interval(x, a, b, inclusive_right=True)
        in_second = in_interval(x, b, a, inclusive_right=True)
        if x == a:
            # x == a is the excluded-left endpoint of (a, b] and the
            # inclusive-right endpoint of (b, a]
            assert in_second and not in_first
        else:
            assert in_first != in_second

    @given(
        x=st.integers(min_value=0, max_value=255),
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    def test_endpoints(self, x, a, b):
        assert not in_interval(a, a, b) or a == b  # left endpoint excluded
        if a != b:
            assert in_interval(b, a, b, inclusive_right=True)
            assert not in_interval(b, a, b, inclusive_right=False)


class TestSerializationRoundTrips:
    @given(feedbacks=feedback_lists)
    def test_csv_roundtrip(self, tmp_path_factory, feedbacks):
        path = tmp_path_factory.mktemp("io") / "fb.csv"
        write_feedback_csv(path, feedbacks)
        assert read(path, format="csv") == feedbacks

    @given(feedbacks=feedback_lists)
    def test_jsonl_roundtrip(self, tmp_path_factory, feedbacks):
        path = tmp_path_factory.mktemp("io") / "fb.jsonl"
        write_feedback_jsonl(path, feedbacks)
        assert read(path, format="jsonl") == feedbacks


class TestReorderInvariants:
    @given(feedbacks=feedback_lists)
    def test_permutation(self, feedbacks):
        reordered = reorder_by_issuer(feedbacks)
        assert sorted(map(id, reordered)) == sorted(map(id, feedbacks))

    @given(feedbacks=feedback_lists)
    def test_idempotent_on_group_structure(self, feedbacks):
        once = reorder_by_issuer(feedbacks)
        twice = reorder_by_issuer(once)
        assert once == twice

    @given(feedbacks=feedback_lists)
    def test_groups_contiguous_and_sorted_by_size(self, feedbacks):
        reordered = reorder_by_issuer(feedbacks)
        # contiguity: each client's feedback forms one run
        seen, previous = set(), None
        sizes = []
        run = 0
        for fb in reordered:
            if fb.client != previous:
                assert fb.client not in seen
                seen.add(fb.client)
                if previous is not None:
                    sizes.append(run)
                run = 0
                previous = fb.client
            run += 1
        sizes.append(run)
        assert sizes == sorted(sizes, reverse=True)


class TestOracleConsistency:
    @given(outcomes=outcome_arrays)
    def test_oracle_trust_matches_direct_score(self, outcomes):
        for fn in (AverageTrust(), WeightedTrust(0.5)):
            oracle = AssessmentOracle(
                fn, None, history=TransactionHistory.from_outcomes(outcomes)
            )
            assert oracle.trust_value == pytest.approx(fn.score(outcomes), abs=1e-9)

    @given(
        outcomes=outcome_arrays,
        extra=st.lists(st.integers(min_value=0, max_value=1), max_size=10),
    )
    def test_oracle_stays_in_sync_through_updates(self, outcomes, extra):
        fn = WeightedTrust(0.5)
        oracle = AssessmentOracle(
            fn, None, history=TransactionHistory.from_outcomes(outcomes)
        )
        for outcome in extra:
            oracle.record_outcome(outcome)
        combined = np.concatenate([outcomes, np.asarray(extra, dtype=np.int8)])
        assert oracle.trust_value == pytest.approx(fn.score(combined), abs=1e-9)


class TestAssessorConsistency:
    @given(
        p=st.floats(min_value=0.0, max_value=1.0),
        n=st.integers(min_value=40, max_value=300),
        seed=st.integers(min_value=0, max_value=500),
    )
    def test_status_is_function_of_verdict_and_trust(
        self, paper_config, shared_calibrator, p, n, seed
    ):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        assessor = TwoPhaseAssessor(
            behavior_test=test_, trust_function=AverageTrust(), trust_threshold=0.9
        )
        history = TransactionHistory.from_outcomes(
            generate_honest_outcomes(n, p, seed=seed)
        )
        result = assessor.assess(history)
        verdict = test_.test(history)
        if not verdict.passed:
            assert result.status is AssessmentStatus.SUSPICIOUS
            assert result.trust_value is None
        elif history.p_hat >= 0.9:
            assert result.status is AssessmentStatus.TRUSTED
        else:
            assert result.status is AssessmentStatus.UNTRUSTED
