"""Service-level contract of the vectorized cold-path prefold.

``AssessmentService(vectorized=True)`` must be a pure optimization:
identical assessments to the scalar service on every schedule, engaged
only when a batch is genuinely cold and large enough, and standing down
whenever correctness demands it (armed fault plans, degraded
calibrations, unsupported testers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.feedback.history import TransactionHistory
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.resilience import FaultPlan
from repro.resilience import runtime as res
from repro.serve import AssessmentService

CONFIG = AssessorConfig(test_config=BehaviorTestConfig(calibration_sets=50))


def _populate(service: AssessmentService, n=60, seed=11):
    rng = np.random.default_rng(seed)
    lengths = rng.integers(10, 240, size=n)
    rates = 0.5 + 0.49 * rng.random(n)
    for i in range(n):
        history = TransactionHistory.from_outcomes(
            generate_honest_outcomes(int(lengths[i]), float(rates[i]), seed=seed + i),
            server=f"server-{i:03d}",
        )
        service.add_server(history)
    return [f"server-{i:03d}" for i in range(n)]


def _pair(**kwargs):
    vector = AssessmentService(config=CONFIG, vectorized=True, **kwargs)
    scalar = AssessmentService(config=CONFIG, vectorized=False, **kwargs)
    ids_v = _populate(vector)
    ids_s = _populate(scalar)
    assert ids_v == ids_s
    return vector, scalar, ids_v


class TestEquivalence:
    def test_cold_sweep_identical(self):
        vector, scalar, ids = _pair()
        assert vector.assess_many(ids) == scalar.assess_many(ids)
        assert vector.n_vector_prefolds == 1
        assert vector.n_vector_seeded == len(ids)

    def test_warm_resweep_identical_and_not_reprefolded(self):
        vector, scalar, ids = _pair()
        vector.assess_many(ids)
        scalar.assess_many(ids)
        for service in (vector, scalar):
            for sid in ids[::5]:
                service.observe_outcome(sid, 1)
        assert vector.assess_many(ids) == scalar.assess_many(ids)
        # the touched minority is below the min-batch bar: no second prefold
        assert vector.n_vector_prefolds == 1

    def test_post_invalidation_sweep_identical(self):
        vector, scalar, ids = _pair(vector_min_batch=8)
        vector.assess_many(ids)
        scalar.assess_many(ids)
        for sid in ids[:10]:
            vector.invalidate(sid)
            scalar.invalidate(sid)
        assert vector.assess_many(ids) == scalar.assess_many(ids)
        assert vector.n_vector_prefolds == 2


class TestGating:
    def test_small_batches_skip_the_kernel(self):
        service = AssessmentService(config=CONFIG, vectorized=True, vector_min_batch=500)
        ids = _populate(service)
        service.assess_many(ids)
        assert service.n_vector_prefolds == 0

    def test_vectorized_false_never_prefolds(self):
        service = AssessmentService(config=CONFIG, vectorized=False)
        ids = _populate(service)
        service.assess_many(ids)
        assert service.n_vector_prefolds == 0

    def test_armed_fault_plan_bypasses_the_kernel(self):
        """Chaos runs demand per-event injection sequencing — the scalar
        path must serve them even on a vectorized service."""
        vector = AssessmentService(config=CONFIG, vectorized=True)
        scalar = AssessmentService(config=CONFIG, vectorized=False)
        ids = _populate(vector)
        _populate(scalar)
        plan = FaultPlan(seed=0)  # armed, even with no sites enabled
        with res.activate(plan):
            got = vector.assess_many(ids)
            expected = scalar.assess_many(ids)
        assert got == expected
        assert vector.n_vector_prefolds == 0

    def test_unsupported_tester_skips_the_kernel(self):
        config = AssessorConfig(
            behavior_test="single",
            test_config=BehaviorTestConfig(calibration_sets=50),
        )
        service = AssessmentService(config=config, vectorized=True)
        ids = _populate(service)
        service.assess_many(ids)
        assert service.n_vector_prefolds == 0


class TestLedgerColdStart:
    def _stream(self, n_servers=40, seed=3):
        rng = np.random.default_rng(seed)
        stream = []
        for i in range(n_servers):
            sid = f"s{i:02d}"
            rate = 0.5 + 0.49 * rng.random()
            for t in range(int(rng.integers(40, 120))):
                stream.append(
                    Feedback(
                        time=float(t),
                        server=sid,
                        client=f"c{rng.integers(0, 9)}",
                        rating=Rating.POSITIVE if rng.random() < rate else Rating.NEGATIVE,
                    )
                )
        return stream

    @pytest.mark.parametrize("backend", ["memory", "columnar"])
    def test_attach_and_cold_assess_matches_scalar(self, backend):
        stream = self._stream()
        led_v = FeedbackLedger(backend=backend)
        led_s = FeedbackLedger(backend="memory")
        led_v.record_many(stream)
        led_s.record_many(stream)
        vector = AssessmentService(config=CONFIG, vectorized=True)
        scalar = AssessmentService(config=CONFIG, vectorized=False)
        vector.attach_ledger(led_v)
        scalar.attach_ledger(led_s)
        ids = sorted(led_s.servers())
        assert vector.assess_many(ids) == scalar.assess_many(ids)
        assert vector.n_vector_prefolds == 1
