"""Seeded equivalence sweep: incremental state == batch recomputation.

The serving layer's core contract is that
:class:`~repro.core.incremental.IncrementalBehaviorState` returns the
*same object-equal verdict* as calling ``tester.test(history)`` from
scratch, at every point of an arbitrarily interleaved fold/verdict
schedule.  This suite drives 200+ random histories — honest players,
hibernating and periodic attackers, colluding issuer groups — through
random cadences and compares verdict-for-verdict.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.hibernating import hibernating_attack_history
from repro.adversary.periodic import periodic_attack_history
from repro.core.incremental import IncrementalBehaviorState
from repro.core.collusion import CollusionResilientMultiTest
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating

N_HISTORIES = 210  # the ISSUE's acceptance bar is 200+


def _random_history(rng: np.random.Generator) -> np.ndarray:
    """One random history from a random family (honest or adversarial)."""
    family = rng.integers(0, 3)
    n = int(rng.integers(0, 600))
    seed = int(rng.integers(0, 2**31))
    if family == 0:
        p = 0.80 + 0.19 * float(rng.random())
        return generate_honest_outcomes(n, p, seed=seed)
    if family == 1:
        n_attacks = int(rng.integers(0, 60))
        return hibernating_attack_history(n, n_attacks, seed=seed)
    attack_window = int(rng.integers(5, 60))
    return periodic_attack_history(n, attack_window, seed=seed)


def _drive(state: IncrementalBehaviorState, outcomes, rng) -> int:
    """Fold ``outcomes`` in random chunks, checking equivalence at each stop.

    Returns how many checkpoints were compared.
    """
    checks = 0
    i = 0
    n = len(outcomes)
    while i <= n:
        expected = state.tester.test(state.history)
        assert state.verdict() == expected, (
            f"diverged at length {len(state.history)}"
        )
        # re-query must serve the memoized verdict and still match
        assert state.verdict() == expected
        checks += 1
        if i == n:
            break
        chunk = int(rng.integers(1, 64))
        for outcome in outcomes[i : i + chunk]:
            state.fold(int(outcome))
        i = min(i + chunk, n)
    return checks


class TestOptimizedMultiEquivalence:
    """The incremental fast path against its own tester, 200+ histories."""

    def test_random_histories_match_batch_verdicts(self, paper_config, shared_calibrator):
        tester = MultiBehaviorTest(paper_config, shared_calibrator)
        rng = np.random.default_rng(20080805)
        total_checks = 0
        for _ in range(N_HISTORIES):
            outcomes = _random_history(rng)
            state = IncrementalBehaviorState(tester)
            assert state.incremental
            total_checks += _drive(state, outcomes, rng)
        assert total_checks >= N_HISTORIES

    def test_collect_all_variant_matches(self, paper_config, shared_calibrator):
        tester = MultiBehaviorTest(
            paper_config, shared_calibrator, collect_all=True
        )
        rng = np.random.default_rng(7)
        for _ in range(20):
            state = IncrementalBehaviorState(tester)
            _drive(state, _random_history(rng), rng)

    def test_invalidate_forces_recompute_and_matches(
        self, paper_config, shared_calibrator
    ):
        tester = MultiBehaviorTest(paper_config, shared_calibrator)
        state = IncrementalBehaviorState(tester)
        for outcome in generate_honest_outcomes(300, 0.95, seed=1):
            state.fold(int(outcome))
        before = state.verdict()
        state.invalidate()
        assert state.verdict() == before == tester.test(state.history)

    def test_live_ledger_history_detected_by_length(
        self, paper_config, shared_calibrator
    ):
        """Appends made by the owner (not via fold) are still picked up."""
        tester = MultiBehaviorTest(paper_config, shared_calibrator)
        history = TransactionHistory("srv")
        state = IncrementalBehaviorState(tester, history)
        for i in range(240):
            history.append_outcome(1 if i % 10 else 0)
        assert state.verdict() == tester.test(history)


class TestFallbackEquivalence:
    """Non-optimized testers take the exact-equivalence fallback path."""

    @pytest.mark.parametrize("strategy", ["naive"])
    def test_naive_multi(self, paper_config, shared_calibrator, strategy):
        tester = MultiBehaviorTest(
            paper_config, shared_calibrator, strategy=strategy
        )
        rng = np.random.default_rng(11)
        for _ in range(10):
            state = IncrementalBehaviorState(tester)
            assert not state.incremental
            _drive(state, _random_history(rng), rng)

    def test_single(self, paper_config, shared_calibrator):
        tester = SingleBehaviorTest(paper_config, shared_calibrator)
        rng = np.random.default_rng(12)
        for _ in range(10):
            state = IncrementalBehaviorState(tester)
            assert not state.incremental
            _drive(state, _random_history(rng), rng)

    def test_collusion_multi_with_issuer_groups(
        self, paper_config, shared_calibrator
    ):
        """Colluding issuers: reordered verdicts still match batch exactly."""
        tester = CollusionResilientMultiTest(paper_config, shared_calibrator)
        rng = np.random.default_rng(13)
        for trial in range(8):
            outcomes = generate_honest_outcomes(
                int(rng.integers(100, 400)), 0.93, seed=trial
            )
            state = IncrementalBehaviorState(
                tester, TransactionHistory(f"srv-{trial}")
            )
            n_issuers = int(rng.integers(2, 6))
            for t, outcome in enumerate(outcomes):
                state.fold_feedback(
                    Feedback(
                        time=float(t),
                        server=f"srv-{trial}",
                        client=f"client-{t % n_issuers}",
                        rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                    )
                )
                if t % 97 == 0:
                    assert state.verdict() == tester.test(state.history)
            verdict = state.verdict()
            assert verdict == tester.test(state.history)
            assert verdict.reorder is not None
            assert verdict.reorder.n_groups == min(n_issuers, len(outcomes))
