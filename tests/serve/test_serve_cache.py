"""CalibrationCache: LRU semantics and JSON persistence."""

from __future__ import annotations

import json

import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.serve import CalibrationCache


def _key(i: int):
    return (10, 20 + i, 0.95, 0.95, 100, "l1")


class TestLRU:
    def test_maxsize_must_be_positive(self):
        with pytest.raises(ValueError, match="maxsize"):
            CalibrationCache(maxsize=0)

    def test_get_put_and_counters(self):
        cache = CalibrationCache(maxsize=4)
        assert cache.get(_key(0)) is None
        cache.put(_key(0), 0.5)
        assert cache.get(_key(0)) == 0.5
        assert cache.stats() == {
            "size": 1,
            "maxsize": 4,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }

    def test_eviction_drops_least_recently_used(self):
        cache = CalibrationCache(maxsize=3)
        for i in range(3):
            cache.put(_key(i), float(i))
        cache.get(_key(0))  # refresh 0: now 1 is the oldest
        cache.put(_key(3), 3.0)
        assert cache.get(_key(1)) is None
        assert cache.get(_key(0)) == 0.0
        assert cache.evictions == 1


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "thresholds.json")
        cache = CalibrationCache(path=path)
        for i in range(5):
            cache.put(_key(i), float(i) / 10)
        assert cache.save() == path
        reloaded = CalibrationCache(path=path)  # warm-starts from disk
        assert len(reloaded) == 5
        for i in range(5):
            assert reloaded.get(_key(i)) == pytest.approx(float(i) / 10)

    def test_loaded_entries_rank_below_existing_ones(self, tmp_path):
        path = str(tmp_path / "t.json")
        donor = CalibrationCache()
        donor.put(_key(0), 0.1)
        donor.save(path)
        cache = CalibrationCache(maxsize=1)
        cache.put(_key(1), 0.2)
        cache.load(path)  # overflow evicts the loaded (least-recent) entry
        assert cache.get(_key(1)) == 0.2
        assert cache.get(_key(0)) is None

    def test_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"schema": "something/else", "entries": []}))
        with pytest.raises(ValueError, match="snapshot"):
            CalibrationCache().load(str(path))

    def test_save_without_path_raises(self):
        with pytest.raises(ValueError, match="path"):
            CalibrationCache().save()


class TestCalibratorIntegration:
    def test_attach_store_shares_thresholds_across_calibrators(self):
        cache = CalibrationCache()
        first = ThresholdCalibrator(n_sets=50)
        first.attach_store(cache)
        eps = first.threshold(m=10, k=12, p_hat=0.95)
        assert len(cache) >= 1
        second = ThresholdCalibrator(n_sets=50)
        second.attach_store(cache)
        misses_before = cache.misses
        assert second.threshold(m=10, k=12, p_hat=0.95) == eps
        assert cache.hits >= 1
        # the second calibrator answered from the store, not Monte Carlo
        assert cache.misses == misses_before

    def test_detach_store(self):
        cache = CalibrationCache()
        calibrator = ThresholdCalibrator(n_sets=50)
        calibrator.attach_store(cache)
        calibrator.attach_store(None)
        calibrator.threshold(m=10, k=5, p_hat=0.9)
        assert len(cache) == 0


class TestAtomicityAndCorruption:
    def test_save_leaves_no_temp_files(self, tmp_path):
        cache = CalibrationCache()
        cache.put(_key(0), 0.25)
        target = tmp_path / "nested" / "cache.json"
        cache.save(str(target))
        assert target.exists()
        siblings = [p.name for p in target.parent.iterdir()]
        assert siblings == ["cache.json"]

    def test_save_replaces_previous_snapshot_atomically(self, tmp_path):
        path = str(tmp_path / "cache.json")
        first = CalibrationCache()
        first.put(_key(0), 0.25)
        first.save(path)
        second = CalibrationCache()
        second.put(_key(1), 0.5)
        second.put(_key(2), 0.75)
        second.save(path)
        reloaded = CalibrationCache()
        assert reloaded.load(path) == 2
        assert reloaded.get(_key(1)) == 0.5

    def test_truncated_snapshot_loads_zero_entries(self, tmp_path):
        path = str(tmp_path / "cache.json")
        cache = CalibrationCache()
        cache.put(_key(0), 0.25)
        cache.save(path)
        raw = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(raw[: len(raw) // 2])
        fresh = CalibrationCache()
        assert fresh.load(path) == 0
        assert len(fresh) == 0

    def test_garbage_snapshot_loads_zero_entries(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text("not json at all")
        fresh = CalibrationCache()
        assert fresh.load(str(path)) == 0

    def test_constructor_warm_start_survives_corruption(self, tmp_path):
        path = tmp_path / "cache.json"
        path.write_text('{"schema": "repro.serve.calibration_cache/v1", "entries": [[')
        cache = CalibrationCache(path=str(path))  # no raise
        assert len(cache) == 0

    def test_missing_file_still_raises(self, tmp_path):
        cache = CalibrationCache()
        with pytest.raises(FileNotFoundError):
            cache.load(str(tmp_path / "absent.json"))
