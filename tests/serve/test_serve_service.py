"""AssessmentService: batch facade semantics, caching, ledger wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.two_phase import Assessor, TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.feedback.history import TransactionHistory
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.serve import AssessmentService, CalibrationCache
from repro.trust.registry import make_trust_function


def _assessor(paper_config, shared_calibrator, behavior=True, trust="average"):
    return TwoPhaseAssessor(
        behavior_test=(
            MultiBehaviorTest(paper_config, shared_calibrator) if behavior else None
        ),
        trust_function=make_trust_function(trust),
        trust_threshold=0.9,
    )


def _histories(n, base_seed=0, length=260, p=0.95):
    return [
        TransactionHistory.from_outcomes(
            generate_honest_outcomes(length, p, seed=base_seed + i),
            server=f"srv-{i:03d}",
        )
        for i in range(n)
    ]


class TestConstruction:
    def test_requires_exactly_one_of_assessor_or_config(
        self, paper_config, shared_calibrator
    ):
        with pytest.raises(ValueError, match="exactly one"):
            AssessmentService()
        with pytest.raises(ValueError, match="exactly one"):
            AssessmentService(
                _assessor(paper_config, shared_calibrator),
                config=AssessorConfig(),
            )

    def test_rejects_unknown_executor(self, paper_config, shared_calibrator):
        with pytest.raises(ValueError, match="executor"):
            AssessmentService(
                _assessor(paper_config, shared_calibrator), executor="gpu"
            )
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        with pytest.raises(ValueError, match="executor"):
            service.assess_many(executor="gpu")

    def test_from_config_builds_through_registries(self):
        service = AssessmentService(
            config=AssessorConfig(trust_function="average", behavior_test="multi")
        )
        assert isinstance(service.assessor, TwoPhaseAssessor)
        assert service.config is not None


class TestRegistration:
    def test_add_server_accepts_history_or_bare_id(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        (history,) = _histories(1)
        assert service.add_server(history) == history.server
        assert service.add_server("fresh") == "fresh"
        assert set(service.servers()) == {history.server, "fresh"}
        assert len(service) == 2

    def test_re_adding_same_history_is_idempotent(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        (history,) = _histories(1)
        service.add_server(history)
        service.add_server(history)
        assert len(service) == 1

    def test_conflicting_history_for_same_id_rejected(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        a, b = _histories(2)
        service.add_server(a)
        clone = TransactionHistory.from_outcomes([1, 0, 1], server=a.server)
        with pytest.raises(ValueError, match="different history"):
            service.add_server(clone)
        service.add_server(b)

    def test_assess_unregistered_server_raises(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        with pytest.raises(KeyError):
            service.assess("nobody")


class TestStandaloneAssessment:
    def test_matches_percall_assessment(self, paper_config, shared_calibrator):
        assessor = _assessor(paper_config, shared_calibrator)
        service = AssessmentService(assessor)
        histories = _histories(12, base_seed=40)
        for history in histories:
            service.add_server(history)
        batched = service.assess_many()
        for history in histories:
            assert batched[history.server] == assessor.assess(history)

    def test_unchanged_server_reassessment_hits_cache(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        (history,) = _histories(1, base_seed=50)
        service.add_server(history)
        first = service.assess(history.server)
        again = service.assess(history.server)
        assert first == again
        assert service.stats()["assessment_cache_hits"] >= 1

    def test_observe_outcome_refreshes_the_verdict(
        self, paper_config, shared_calibrator
    ):
        assessor = _assessor(paper_config, shared_calibrator)
        service = AssessmentService(assessor)
        (history,) = _histories(1, base_seed=60)
        service.add_server(history)
        service.assess(history.server)
        for _ in range(30):
            service.observe_outcome(history.server, 0)
        assert service.assess(history.server) == assessor.assess(history)

    def test_observe_feedback_auto_registers(self, paper_config, shared_calibrator):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        service.observe(
            Feedback(
                time=0.0, server="new-srv", client="c0", rating=Rating.POSITIVE
            )
        )
        assert "new-srv" in service.servers()

    def test_invalidate_recomputes_identically(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        (history,) = _histories(1, base_seed=70)
        service.add_server(history)
        before = service.assess(history.server)
        service.invalidate(history.server)
        assert service.assess(history.server) == before

    def test_subset_and_order_of_assess_many(self, paper_config, shared_calibrator):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        histories = _histories(5, base_seed=80)
        for history in histories:
            service.add_server(history)
        ids = [histories[3].server, histories[1].server]
        subset = service.assess_many(ids)
        assert list(subset) == ids


class TestExecutors:
    def test_thread_executor_matches_serial(self, paper_config, shared_calibrator):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        for history in _histories(10, base_seed=90):
            service.add_server(history)
        serial = service.assess_many(executor="serial")
        threaded = service.assess_many(executor="thread")
        assert serial == threaded

    def test_process_executor_requires_config(self, paper_config, shared_calibrator):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        service.add_server("s")
        with pytest.raises(ValueError, match="config"):
            service.assess_many(["s"], executor="process")

    def test_process_executor_matches_serial(self):
        # behavior_test=None keeps the workers free of Monte-Carlo
        # calibration, so this exercises only the sharding machinery.
        config = AssessorConfig(trust_function="average", behavior_test=None)
        service = AssessmentService(config=config)
        for history in _histories(6, base_seed=95, length=40):
            service.add_server(history)
        serial = service.assess_many(executor="serial")
        sharded = service.assess_many(executor="process")
        assert serial == sharded


class TestLedgerMode:
    def _ledger_with(self, outcomes_by_server):
        ledger = FeedbackLedger()
        t = 0.0
        for server, outcomes in outcomes_by_server.items():
            for i, outcome in enumerate(outcomes):
                t += 1.0
                ledger.record(
                    Feedback(
                        time=t,
                        server=server,
                        client=f"client-{i % 7}",
                        rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                    )
                )
        return ledger

    def test_ledger_trust_matches_percall(self, paper_config, shared_calibrator):
        assessor = _assessor(paper_config, shared_calibrator, trust="peertrust")
        ledger = self._ledger_with(
            {
                "srv-a": generate_honest_outcomes(300, 0.95, seed=1),
                "srv-b": generate_honest_outcomes(260, 0.90, seed=2),
            }
        )
        service = AssessmentService(assessor, ledger=ledger)
        batched = service.assess_many()
        for server in ledger.servers():
            assert batched[server] == assessor.assess(
                ledger.history(server), ledger=ledger
            )

    def test_new_feedback_auto_registers_and_tracks(
        self, paper_config, shared_calibrator
    ):
        assessor = _assessor(paper_config, shared_calibrator)
        ledger = self._ledger_with(
            {"srv-a": generate_honest_outcomes(280, 0.95, seed=3)}
        )
        service = AssessmentService(assessor, ledger=ledger)
        ledger.record(
            Feedback(time=999.0, server="srv-new", client="c", rating=Rating.POSITIVE)
        )
        assert "srv-new" in service.servers()
        before = service.assess("srv-a")
        ledger.record(
            Feedback(time=1000.0, server="srv-a", client="c", rating=Rating.NEGATIVE)
        )
        assert service.assess("srv-a") == assessor.assess(
            ledger.history("srv-a"), ledger=ledger
        )
        assert before.server == "srv-a"

    def test_observe_outcome_refused_with_ledger(
        self, paper_config, shared_calibrator
    ):
        ledger = self._ledger_with(
            {"srv-a": generate_honest_outcomes(100, 0.95, seed=4)}
        )
        service = AssessmentService(
            _assessor(paper_config, shared_calibrator), ledger=ledger
        )
        with pytest.raises(ValueError, match="ledger"):
            service.observe_outcome("srv-a", 1)

    def test_close_unsubscribes(self, paper_config, shared_calibrator):
        ledger = self._ledger_with(
            {"srv-a": generate_honest_outcomes(100, 0.95, seed=5)}
        )
        service = AssessmentService(
            _assessor(paper_config, shared_calibrator), ledger=ledger
        )
        service.close()
        ledger.record(
            Feedback(time=1.5e3, server="late", client="c", rating=Rating.POSITIVE)
        )
        assert "late" not in service.servers()


class TestStatsAndCache:
    def test_stats_shape(self, paper_config, shared_calibrator):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        for history in _histories(3, base_seed=100):
            service.add_server(history)
        service.assess_many()
        service.assess_many()
        stats = service.stats()
        assert stats["servers"] == 3
        # the first sweep assesses fresh, the second is all memo hits
        assert stats["assessments"] == 3
        assert stats["assessment_cache_hits"] == 3
        assert stats["calibration_misses"] >= 0

    def test_calibration_cache_attach_and_save(
        self, paper_config, tmp_path
    ):
        cache = CalibrationCache(path=str(tmp_path / "thresholds.json"))
        assessor = Assessor.from_config(
            AssessorConfig(
                trust_function="average",
                behavior_test="multi",
                test_config=BehaviorTestConfig(),
            )
        )
        service = AssessmentService(assessor, calibration_cache=cache)
        for history in _histories(4, base_seed=110):
            service.add_server(history)
        service.assess_many()
        assert len(cache) > 0
        path = service.save_cache()
        reloaded = CalibrationCache(path=path)
        assert len(reloaded) == len(cache)

    def test_auto_executor_serial_on_small_batches(
        self, paper_config, shared_calibrator
    ):
        service = AssessmentService(_assessor(paper_config, shared_calibrator))
        for history in _histories(4, base_seed=120):
            service.add_server(history)
        # one core / tiny batch: auto must not spin up a pool
        assert service.assess_many(executor="auto") == service.assess_many(
            executor="serial"
        )
