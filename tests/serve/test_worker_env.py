"""Parent observability settings must reach process-pool workers.

Spawned workers inherit nothing from the parent interpreter, so the
pool initializer receives a serializable snapshot (``_worker_env``) and
reconstructs the observability plumbing worker-side
(``_init_process_worker``): ``REPRO_LOG_LEVEL``, the enabled flag, the
span-sink path, and the resilience event-log path.  Without this,
worker-side spans and events are silently dropped.
"""

import logging

import pytest

from repro import obs
from repro.obs import context as trace_ctx
from repro.obs import runtime as obs_runtime
from repro.obs.events import EventLog
from repro.resilience import runtime as res_runtime
from repro.serve.service import _init_process_worker, _worker_env
from repro.core.config import AssessorConfig


@pytest.fixture(autouse=True)
def _restore_globals():
    """These tests run the worker initializer *in this* process."""
    saved_obs = (obs_runtime.enabled, obs_runtime.registry, obs_runtime.tracer)
    saved_sink = obs_runtime.span_sink
    saved_events = res_runtime.events
    logger = logging.getLogger("repro")
    saved_level = logger.level
    saved_handlers = list(logger.handlers)
    yield
    obs_runtime.enabled, obs_runtime.registry, obs_runtime.tracer = saved_obs
    obs_runtime.span_sink = saved_sink
    res_runtime.events = saved_events
    logger.setLevel(saved_level)
    for handler in logger.handlers[:]:
        if handler not in saved_handlers:
            logger.removeHandler(handler)


class TestWorkerEnvSnapshot:
    def test_dark_parent_snapshots_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        env = _worker_env()
        assert env == {
            "log_level": None,
            "obs_enabled": False,
            "span_sink_path": None,
            "event_log_path": None,
        }

    def test_active_parent_snapshot_is_serializable_paths(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        spans_path = tmp_path / "spans.jsonl"
        events_path = tmp_path / "events.jsonl"
        log = EventLog(events_path)
        try:
            with obs.activate(), trace_ctx.tracing_session(spans_path):
                with res_runtime.activate(event_log=log):
                    env = _worker_env()
        finally:
            log.close()
        assert env["log_level"] == "DEBUG"
        assert env["obs_enabled"] is True
        assert env["span_sink_path"] == str(spans_path)
        assert env["event_log_path"] == str(events_path)
        # paths, not handles: everything in the snapshot pickles
        import pickle

        pickle.dumps(env)

    def test_in_memory_event_log_is_not_propagated(self):
        """A path-less EventLog cannot cross the process boundary."""
        log = EventLog()  # in-memory only
        with res_runtime.activate(event_log=log):
            env = _worker_env()
        assert env["event_log_path"] is None


class TestInitProcessWorker:
    CONFIG = AssessorConfig()

    def test_empty_env_leaves_worker_dark(self):
        obs_runtime.disable()
        obs_runtime.span_sink = None
        _init_process_worker(self.CONFIG, None)
        assert not obs_runtime.enabled
        assert obs_runtime.span_sink is None

    def test_env_reconstructs_observability(self, tmp_path):
        obs_runtime.disable()
        obs_runtime.span_sink = None
        res_runtime.events = None
        spans_path = tmp_path / "spans.jsonl"
        events_path = tmp_path / "events.jsonl"
        _init_process_worker(
            self.CONFIG,
            {
                "log_level": "DEBUG",
                "obs_enabled": True,
                "span_sink_path": str(spans_path),
                "event_log_path": str(events_path),
            },
        )
        try:
            assert obs_runtime.enabled
            assert str(obs_runtime.span_sink.path) == str(spans_path)
            assert str(res_runtime.events.path) == str(events_path)
            assert logging.getLogger("repro").level == logging.DEBUG
            # the reconstructed sinks actually write
            res_runtime.events.emit("worker_probe", ok=True)
            assert events_path.exists()
        finally:
            obs_runtime.span_sink.close()
            res_runtime.events.close()

    def test_round_trip_snapshot_to_worker(self, tmp_path, monkeypatch):
        """_worker_env output is exactly what the initializer accepts."""
        monkeypatch.setenv("REPRO_LOG_LEVEL", "INFO")
        spans_path = tmp_path / "spans.jsonl"
        with obs.activate(), trace_ctx.tracing_session(spans_path):
            env = _worker_env()
        obs_runtime.span_sink = None
        obs_runtime.disable()
        _init_process_worker(self.CONFIG, env)
        try:
            assert obs_runtime.enabled
            assert str(obs_runtime.span_sink.path) == str(spans_path)
        finally:
            obs_runtime.span_sink.close()
