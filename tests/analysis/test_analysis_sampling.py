"""Tests for repro.analysis.sampling — partial feedback visibility (Sec. 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.adversary.periodic import periodic_attack_history
from repro.analysis.sampling import detection_vs_coverage, subsample_outcomes
from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest


class TestSubsample:
    def test_full_coverage_identity(self):
        outcomes = generate_honest_outcomes(100, 0.9, seed=1)
        np.testing.assert_array_equal(
            subsample_outcomes(outcomes, 1.0, seed=2), outcomes
        )

    def test_expected_size(self):
        outcomes = np.ones(10_000, dtype=np.int8)
        kept = subsample_outcomes(outcomes, 0.3, seed=3)
        assert 2700 <= kept.size <= 3300

    def test_order_preserved(self):
        outcomes = np.arange(2) .repeat(50)  # 50 zeros then 50 ones
        kept = subsample_outcomes(outcomes, 0.5, seed=4)
        assert (np.diff(kept) >= 0).all()  # still sorted: order kept

    def test_deterministic_by_seed(self):
        outcomes = generate_honest_outcomes(200, 0.9, seed=5)
        np.testing.assert_array_equal(
            subsample_outcomes(outcomes, 0.5, seed=6),
            subsample_outcomes(outcomes, 0.5, seed=6),
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            subsample_outcomes(np.ones(10), 0.0)
        with pytest.raises(ValueError):
            subsample_outcomes(np.ones(10), 1.1)
        with pytest.raises(ValueError):
            subsample_outcomes(np.ones((2, 5)), 0.5)

    @given(
        coverage=st.floats(min_value=0.1, max_value=1.0),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_thinned_rate_unbiased(self, coverage, seed):
        # iid thinning preserves the Bernoulli rate in expectation.
        # The generation seed must be OUTSIDE the strategy's seed range:
        # reusing the same seed for generation and thinning makes the mask
        # perfectly correlated with the values (both are `rng.random(n) <
        # threshold` over the same stream), which hypothesis duly found.
        outcomes = generate_honest_outcomes(5000, 0.9, seed=987_654)
        kept = subsample_outcomes(outcomes, coverage, seed=seed)
        if kept.size >= 200:
            assert kept.mean() == pytest.approx(outcomes.mean(), abs=0.06)


class TestDetectionVsCoverage:
    @pytest.fixture(scope="class")
    def points(self, ):
        from repro.core.config import BehaviorTestConfig
        from repro.core.calibration import ThresholdCalibrator

        config = BehaviorTestConfig()
        test_ = SingleBehaviorTest(config, ThresholdCalibrator(seed=7))
        return detection_vs_coverage(
            test_,
            lambda rng: generate_honest_outcomes(1200, 0.95, seed=rng),
            lambda rng: periodic_attack_history(1200, 20, seed=rng),
            coverages=(1.0, 0.6, 0.3),
            trials=50,
            seed=8,
        )

    def test_honest_players_unaffected_by_partial_visibility(self, points):
        # the heart of the Sec. 2 claim: a thinned iid sequence is still
        # iid, so the false-alarm rate stays at the nominal level at
        # every coverage
        for point in points:
            assert point.false_positive_rate <= 0.15

    def test_full_coverage_detects_the_attack(self, points):
        assert points[0].coverage == 1.0
        assert points[0].detection_rate >= 0.9

    def test_detection_degrades_gracefully(self, points):
        rates = [p.detection_rate for p in points]
        # monotone-ish decay with shrinking visibility, never below zero
        assert rates[0] >= rates[-1]
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_validation(self):
        test_ = SingleBehaviorTest()
        with pytest.raises(ValueError):
            detection_vs_coverage(
                test_,
                lambda rng: np.ones(10),
                lambda rng: np.ones(10),
                trials=0,
            )
