"""Tests for repro.analysis.cheat_rate."""

import numpy as np
import pytest

from repro.analysis.cheat_rate import (
    CamouflageAttacker,
    max_sustainable_cheat_rate,
    sustainable_profile,
)
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest


class TestCamouflageAttacker:
    def test_history_rate(self):
        attacker = CamouflageAttacker(0.2)
        history = attacker.history(20_000, seed=1)
        bad_rate = 1.0 - history.mean()
        assert bad_rate == pytest.approx(0.2, abs=0.01)

    def test_expected_bads(self):
        assert CamouflageAttacker(0.1).expected_bads(500) == pytest.approx(50)

    def test_deterministic_by_seed(self):
        attacker = CamouflageAttacker(0.3)
        np.testing.assert_array_equal(
            attacker.history(100, seed=2), attacker.history(100, seed=2)
        )

    def test_zero_rate_is_perfect_server(self):
        assert CamouflageAttacker(0.0).history(100, seed=3).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            CamouflageAttacker(1.5)
        with pytest.raises(ValueError):
            CamouflageAttacker(0.1).history(-1)

    def test_camouflage_passes_behavior_tests(
        self, paper_config, shared_calibrator
    ):
        # the paper's closing argument: iid cheating at the honest rate IS
        # honest behavior statistically — both schemes must pass it most
        # of the time
        attacker = CamouflageAttacker(0.05)
        single = SingleBehaviorTest(paper_config, shared_calibrator)
        passes = sum(
            single.test(attacker.history(800, seed=s)).passed for s in range(20)
        )
        assert passes >= 17


class TestMaxSustainableCheatRate:
    def test_saturates_trust_cap_for_single_test(
        self, paper_config, shared_calibrator
    ):
        # a perfectly camouflaged attacker is indistinguishable from an
        # honest 0.9 player, so the binding constraint is phase 2's 0.9
        # threshold: the sustainable rate should reach the 0.1 cap
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        rate = max_sustainable_cheat_rate(
            test_, history_length=600, trials=15, precision=0.02, seed=1
        )
        assert rate == pytest.approx(0.1, abs=0.021)

    def test_rate_bounded_by_cap(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        rate = max_sustainable_cheat_rate(
            test_,
            history_length=400,
            trust_threshold=0.95,
            trials=10,
            precision=0.02,
            seed=2,
        )
        assert rate <= 0.05 + 1e-9

    def test_profile_shape(self, paper_config, shared_calibrator):
        test_ = MultiBehaviorTest(paper_config, shared_calibrator)
        profile = sustainable_profile(
            test_,
            history_lengths=(200, 400),
            trials=8,
            precision=0.05,
            seed=3,
        )
        assert [p.history_length for p in profile] == [200, 400]
        for point in profile:
            assert 0.0 <= point.max_cheat_rate <= 0.1 + 1e-9
            assert point.bads_per_hundred == pytest.approx(
                100 * point.max_cheat_rate
            )

    def test_validation(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        with pytest.raises(ValueError):
            max_sustainable_cheat_rate(test_, history_length=0)
        with pytest.raises(ValueError):
            max_sustainable_cheat_rate(test_, target_pass_rate=0.0)
        with pytest.raises(ValueError):
            max_sustainable_cheat_rate(test_, precision=0.0)
