"""Tests for repro.analysis.roc."""

import numpy as np
import pytest

from repro.adversary.periodic import periodic_attack_history
from repro.analysis.roc import OperatingPoint, auc, measure_operating_point, roc_curve
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest


def _honest_gen(rng):
    return generate_honest_outcomes(600, 0.95, seed=rng)


def _attack_gen(rng):
    return periodic_attack_history(600, 20, seed=rng)


class TestOperatingPoint:
    def test_youden_j(self):
        point = OperatingPoint(0.95, false_positive_rate=0.1, detection_rate=0.8)
        assert point.youden_j == pytest.approx(0.7)

    def test_measure_rates_in_unit_interval(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        point = measure_operating_point(
            test_, _honest_gen, _attack_gen, trials=30, seed=1
        )
        assert 0.0 <= point.false_positive_rate <= 1.0
        assert 0.0 <= point.detection_rate <= 1.0

    def test_detects_obvious_attack_workload(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        point = measure_operating_point(
            test_, _honest_gen, _attack_gen, trials=40, seed=2
        )
        assert point.detection_rate > point.false_positive_rate

    def test_honest_fpr_tracks_alpha(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        point = measure_operating_point(
            test_, _honest_gen, _attack_gen, trials=100, seed=3
        )
        assert point.false_positive_rate <= 0.15  # ~5% expected at 95% conf

    def test_trials_validation(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        with pytest.raises(ValueError):
            measure_operating_point(test_, _honest_gen, _attack_gen, trials=0)


class TestRocCurve:
    def test_points_ordered_by_confidence(self):
        points = roc_curve(
            _honest_gen, _attack_gen, confidences=(0.9, 0.5, 0.99), trials=15, seed=4
        )
        assert [p.confidence for p in points] == [0.5, 0.9, 0.99]

    def test_lower_confidence_more_alarms(self):
        points = roc_curve(
            _honest_gen, _attack_gen, confidences=(0.5, 0.99), trials=60, seed=5
        )
        lenient, strict = points[0], points[1]
        assert lenient.false_positive_rate >= strict.false_positive_rate
        assert lenient.detection_rate >= strict.detection_rate

    def test_custom_test_factory(self, shared_calibrator):
        from repro.core.multi_testing import MultiBehaviorTest

        points = roc_curve(
            _honest_gen,
            _attack_gen,
            test_factory=lambda cfg: MultiBehaviorTest(cfg),
            confidences=(0.95,),
            trials=10,
            seed=6,
        )
        assert len(points) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            roc_curve(_honest_gen, _attack_gen, confidences=())
        with pytest.raises(ValueError):
            roc_curve(_honest_gen, _attack_gen, confidences=(1.0,))


class TestAuc:
    def test_perfect_classifier(self):
        points = [OperatingPoint(0.95, 0.0, 1.0)]
        assert auc(points) == pytest.approx(1.0)

    def test_random_classifier(self):
        points = [
            OperatingPoint(0.9, fpr, fpr) for fpr in (0.2, 0.5, 0.8)
        ]
        assert auc(points) == pytest.approx(0.5)

    def test_real_curve_beats_chance(self):
        points = roc_curve(
            _honest_gen,
            _attack_gen,
            confidences=(0.5, 0.8, 0.95, 0.99),
            trials=40,
            seed=7,
        )
        assert auc(points) > 0.6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            auc([])
