"""Units for the columnar feedback plane: store, batch, binlog, lazy history.

The backend conformance suite (test_ledger_backends.py) checks the
contract through the :class:`FeedbackLedger` facade; these tests pin the
columnar internals — string interning, batch validation, the SoA store's
indexes, the binary ledger's crash recovery, and the lazily-materialized
feedback metadata of columnar histories.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.feedback import binlog
from repro.feedback.history import TransactionHistory
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.feedback.store import (
    ColumnarStore,
    FeedbackBatch,
    StringTable,
    _ColumnarHistory,
)


def _fb(t, server="s1", client="c1", rating=Rating.POSITIVE, category=None):
    return Feedback(
        time=float(t), server=server, client=client, rating=rating, category=category
    )


class TestStringTable:
    def test_intern_is_idempotent(self):
        table = StringTable()
        assert table.intern("a") == 0
        assert table.intern("b") == 1
        assert table.intern("a") == 0
        assert len(table) == 2
        assert table.value(1) == "b"
        assert table.lookup("b") == 1
        assert table.lookup("missing") is None

    def test_intern_many_amortizes_and_reports_fresh(self):
        table = StringTable()
        table.intern("x")
        values = np.array(["y", "x", "y", "z"], dtype=object)
        codes, fresh = table.intern_many(values)
        assert codes.tolist() == [table.lookup("y"), 0, table.lookup("y"), table.lookup("z")]
        assert sorted(fresh) == ["y", "z"]

    def test_intern_many_unicode_array(self):
        table = StringTable()
        codes, fresh = table.intern_many(np.array(["a", "b", "a"]))
        assert codes.tolist() == [0, 1, 0]
        assert fresh == ["a", "b"]


class TestFeedbackBatch:
    def test_validation(self):
        with pytest.raises(ValueError, match="length"):
            FeedbackBatch(
                times=[1.0, 2.0],
                servers=["s1"],
                clients=["c1", "c2"],
                ratings=[1, 0],
            )
        with pytest.raises(ValueError, match="binary"):
            FeedbackBatch(
                times=[1.0], servers=["s1"], clients=["c1"], ratings=[2]
            )

    def test_round_trip_through_feedbacks(self):
        stream = [_fb(1), _fb(2, rating=Rating.NEGATIVE, category="na"), _fb(3, "s2")]
        batch = FeedbackBatch.from_feedbacks(stream)
        assert len(batch) == 3
        assert list(batch.iter_feedbacks()) == stream
        assert batch.feedback_at(1).category == "na"


class TestColumnarStore:
    def test_append_row_and_indexes(self):
        store = ColumnarStore()
        s = store.server_table.intern("s1")
        c1 = store.client_table.intern("c1")
        c2 = store.client_table.intern("c2")
        store.append_row(1.0, s, c1, 1, binlog.CATEGORY_NONE, 1)
        store.append_row(2.0, s, c2, 0, binlog.CATEGORY_NONE, 1)
        store.append_row(3.0, s, c1, 1, binlog.CATEGORY_NONE, 1)
        assert store.rows_for_server(s).tolist() == [0, 1, 2]
        assert store.last_time(s) == 3.0
        assert store.last_row_for_pair(s, c1) == 2
        assert store.last_row_for_pair(s, c2) == 1
        fb = store.feedback_at(1)
        assert fb.client == "c2" and fb.rating is Rating.NEGATIVE

    def test_growth_beyond_initial_capacity(self):
        store = ColumnarStore()
        s = store.server_table.intern("s")
        c = store.client_table.intern("c")
        for i in range(3000):
            store.append_row(float(i), s, c, i % 2, binlog.CATEGORY_NONE, 1)
        assert len(store) == 3000
        assert store.ratings[:4].tolist() == [0, 1, 0, 1]
        assert store.rows_for_server(s).size == 3000


class TestLazyColumnarHistory:
    def _ledger(self, stream):
        led = FeedbackLedger(backend="columnar")
        led.record_many(stream)
        return led

    def test_is_a_transaction_history(self):
        led = self._ledger([_fb(1), _fb(2)])
        history = led.history("s1")
        assert isinstance(history, _ColumnarHistory)
        assert isinstance(history, TransactionHistory)

    def test_outcomes_available_without_materialization(self):
        led = self._ledger([_fb(1), _fb(2, rating=Rating.NEGATIVE)])
        history = led.history("s1")
        assert np.array_equal(history.outcomes(), [1, 0])
        assert history.p_hat == 0.5
        assert history.last_time() == 2.0
        # nothing above touched the feedback metadata
        assert history._lazy_list is None

    def test_metadata_materializes_on_demand(self):
        led = self._ledger([_fb(1, client="a"), _fb(2, client="b")])
        history = led.history("s1")
        assert [f.client for f in history.feedbacks()] == ["a", "b"]
        assert history._lazy_list is not None

    def test_append_before_materialization_is_consistent(self):
        led = self._ledger([_fb(1), _fb(2)])
        history = led.history("s1")
        led.record(_fb(3, client="late"))
        assert history._lazy_list is None  # still lazy after a live fold
        assert len(history) == 3
        feedbacks = history.feedbacks()
        assert len(feedbacks) == 3
        assert feedbacks[-1].client == "late"

    def test_ordering_enforced_while_lazy(self):
        led = self._ledger([_fb(5)])
        history = led.history("s1")
        with pytest.raises(ValueError, match="non-decreasing"):
            history.append_feedback(_fb(1))

    def test_speculate_feedback_rolls_back(self):
        led = self._ledger([_fb(1), _fb(2)])
        history = led.history("s1")
        spec = _fb(9, client="spec")
        with history.speculate_feedback(spec) as h:
            assert len(h) == 3
            assert h.feedbacks()[-1].client == "spec"
        assert len(history) == 2
        assert history.feedbacks()[-1].client == "c1"

    def test_group_by_client_matches_memory_backend(self):
        stream = [_fb(t, client=f"c{t % 3}") for t in range(1, 10)]
        lazy = self._ledger(stream).history("s1")
        eager = TransactionHistory.from_feedbacks(stream)
        assert {
            client: np.asarray(idx).tolist()
            for client, idx in lazy.group_by_client().items()
        } == {
            client: np.asarray(idx).tolist()
            for client, idx in eager.group_by_client().items()
        }


class TestBinlogCrashRecovery:
    def _write(self, path, stream):
        return binlog.write_binary_ledger(path, stream)

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "led.bin")
        stream = [_fb(1), _fb(2, "s2", "c2", Rating.NEGATIVE, category="na")]
        assert self._write(path, stream) == 2
        data = binlog.load_binary_ledger(path)
        assert not data.damaged
        assert data.records.size == 2
        assert data.servers == ["s1", "s2"]
        assert data.categories == ["na"]

    def test_truncated_record_tail_is_dropped(self, tmp_path):
        path = str(tmp_path / "led.bin")
        self._write(path, [_fb(1), _fb(2), _fb(3)])
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 7)  # tear the last record mid-write
        data = binlog.load_binary_ledger(path, recover=True)
        assert data.damaged
        assert data.records.size == 2
        with pytest.raises(ValueError):
            binlog.load_binary_ledger(path, recover=False)

    def test_mmap_backend_recovers_and_appends(self, tmp_path):
        path = str(tmp_path / "led.bin")
        led = FeedbackLedger(backend="mmap", path=path)
        led.record_many([_fb(1), _fb(2), _fb(3)])
        led.close()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        with FeedbackLedger(backend="mmap", path=path) as led2:
            assert len(led2) == 2  # torn tail dropped
            led2.record(_fb(9))
            assert len(led2) == 3
        with FeedbackLedger(backend="mmap", path=path) as led3:
            assert not binlog.load_binary_ledger(path).damaged
            assert [f.time for f in led3.feedbacks_for_server("s1")] == [1.0, 2.0, 9.0]

    def test_header_magic_checked(self, tmp_path):
        path = str(tmp_path / "led.bin")
        with open(path, "wb") as handle:
            handle.write(b"NOTALEDGERFILE" + b"\0" * 32)
        with pytest.raises(ValueError, match="magic"):
            binlog.load_binary_ledger(path)
