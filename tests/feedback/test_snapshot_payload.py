"""Snapshot-shipment plumbing: binlog payloads, ledger resets, service swaps.

The cluster's join/recover path ships a node's ledger as a
``pack_feedbacks`` payload, installs it with ``unpack_feedbacks``, and
repairs divergent replicas through ``FeedbackLedger.reset_server`` +
``AssessmentService.replace_server``.  These tests pin each hop of that
pipeline in isolation.
"""

from __future__ import annotations

import pytest

from repro.core import AssessorConfig
from repro.core.two_phase import Assessor
from repro.feedback.binlog import pack_feedbacks, unpack_feedbacks
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.serve.service import AssessmentService


def _events(server="srv-a", n=12, base=0.0):
    return [
        Feedback(
            time=base + i * 0.5,
            server=server,
            client=f"cli-{i % 4}",
            rating=Rating.POSITIVE if i % 3 else Rating.NEGATIVE,
            category=None if i % 2 else "NA",
            authentic=bool(i % 5),
        )
        for i in range(n)
    ]


class TestPackUnpackRoundTrip:
    def test_round_trip_preserves_every_field_and_the_order(self):
        events = _events() + _events(server="srv-b", base=100.0)
        payload = pack_feedbacks(events)
        assert payload["format"] == "binlog"
        assert payload["n"] == len(events)
        assert unpack_feedbacks(payload) == events

    def test_empty_stream_round_trips(self):
        assert unpack_feedbacks(pack_feedbacks([])) == []

    def test_payload_is_plain_data(self):
        """The payload must survive a dict-copying RPC boundary."""
        payload = pack_feedbacks(_events(n=3))
        assert isinstance(payload["records"], bytes)
        for key in ("servers", "clients", "categories"):
            assert all(isinstance(v, str) for v in payload[key])
        assert unpack_feedbacks(dict(payload)) == _events(n=3)

    def test_wrong_format_and_version_are_rejected(self):
        payload = pack_feedbacks(_events(n=2))
        with pytest.raises(ValueError, match="not a binlog payload"):
            unpack_feedbacks({**payload, "format": "csv"})
        with pytest.raises(ValueError, match="version"):
            unpack_feedbacks({**payload, "version": 999})
        with pytest.raises(ValueError, match="mismatch"):
            unpack_feedbacks({**payload, "n": payload["n"] + 1})


class TestLedgerResetServer:
    def test_reset_replaces_only_the_target_server(self):
        ledger = FeedbackLedger(backend="memory")
        for fb in _events() + _events(server="srv-b", base=100.0):
            ledger.record(fb)
        merged = _events(n=15)  # the reconciled stream is longer
        assert ledger.reset_server("srv-a", merged) == 15
        assert ledger.feedbacks_for_server("srv-a") == merged
        assert ledger.feedbacks_for_server("srv-b") == _events(
            server="srv-b", base=100.0
        )

    def test_reset_with_empty_stream_removes_the_server(self):
        ledger = FeedbackLedger(backend="memory")
        for fb in _events():
            ledger.record(fb)
        assert ledger.reset_server("srv-a", []) == 0
        assert "srv-a" not in ledger.servers()

    def test_reset_rejects_foreign_feedback(self):
        ledger = FeedbackLedger(backend="memory")
        with pytest.raises(ValueError, match="srv-a"):
            ledger.reset_server("srv-a", _events(server="srv-b"))

    def test_reset_requires_a_rebuildable_backend(self):
        ledger = FeedbackLedger(backend="columnar")
        with pytest.raises(NotImplementedError, match="columnar"):
            ledger.reset_server("srv-a", [])


class TestServiceReplaceServer:
    def _service(self):
        ledger = FeedbackLedger(backend="memory")
        assessor = Assessor.from_config(AssessorConfig(trust_function="average"))
        return AssessmentService(
            assessor=assessor, ledger=ledger, executor="serial"
        ), ledger

    def test_replace_drops_stale_state_and_reassesses(self):
        service, ledger = self._service()
        for fb in _events():
            ledger.record(fb)
        before = service.assess("srv-a")
        merged = _events(n=20)
        ledger.reset_server("srv-a", merged)
        service.replace_server(ledger.history("srv-a"))
        after = service.assess("srv-a")
        # the fresh assessment reflects the full merged stream: a
        # reference service fed only the merged events agrees exactly
        reference, ref_ledger = self._service()
        for fb in merged:
            ref_ledger.record(fb)
        assert after == reference.assess("srv-a")
        assert before.trust_value != after.trust_value or before == after

    def test_replace_registers_a_previously_unknown_server(self):
        service, ledger = self._service()
        for fb in _events(server="srv-new"):
            ledger.record(fb)
        service.replace_server(ledger.history("srv-new"))
        assert service.assess("srv-new").server == "srv-new"
