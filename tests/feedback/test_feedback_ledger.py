"""Tests for repro.feedback.ledger."""

import pytest

from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating


def _fb(t, server="s1", client="c1", rating=Rating.POSITIVE):
    return Feedback(time=float(t), server=server, client=client, rating=rating)


@pytest.fixture()
def ledger():
    led = FeedbackLedger()
    led.record_many(
        [
            _fb(1, "s1", "c1"),
            _fb(2, "s1", "c2", Rating.NEGATIVE),
            _fb(3, "s2", "c1"),
            _fb(4, "s1", "c1"),
        ]
    )
    return led


class TestRecord:
    def test_len(self, ledger):
        assert len(ledger) == 4

    def test_servers_and_clients(self, ledger):
        assert ledger.servers() == {"s1", "s2"}
        assert ledger.clients() == {"c1", "c2"}

    def test_per_server_time_order_enforced(self, ledger):
        with pytest.raises(ValueError):
            ledger.record(_fb(0, "s1"))

    def test_independent_servers_allow_interleaved_times(self, ledger):
        ledger.record(_fb(3.5, "s2"))  # earlier than s1's last, fine for s2
        assert len(ledger.feedbacks_for_server("s2")) == 2


class TestQueries:
    def test_feedbacks_for_server(self, ledger):
        times = [f.time for f in ledger.feedbacks_for_server("s1")]
        assert times == [1.0, 2.0, 4.0]

    def test_feedbacks_by_client(self, ledger):
        servers = [f.server for f in ledger.feedbacks_by_client("c1")]
        assert servers == ["s1", "s2", "s1"]

    def test_unknown_server_returns_empty(self, ledger):
        assert ledger.feedbacks_for_server("nope") == []

    def test_history_is_live(self, ledger):
        history = ledger.history("s1")
        assert len(history) == 3
        ledger.record(_fb(9, "s1"))
        assert len(history) == 4  # same object, updated in place

    def test_history_unknown_raises(self, ledger):
        with pytest.raises(KeyError):
            ledger.history("nope")

    def test_last_interaction(self, ledger):
        fb = ledger.last_interaction("s1", "c1")
        assert fb.time == 4.0
        assert ledger.last_interaction("s1", "c3") is None

    def test_interaction_counts(self, ledger):
        assert ledger.interaction_counts("s1") == {"c1": 2, "c2": 1}

    def test_feedback_graph(self, ledger):
        graph = ledger.feedback_graph()
        assert graph[("c1", "s1")] == (2, 0)
        assert graph[("c2", "s1")] == (0, 1)
        assert graph[("c1", "s2")] == (1, 0)
