"""Tests for repro.feedback.windows."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.feedback.windows import n_windows, usable_length, window_counts


class TestNWindows:
    def test_exact_multiple(self):
        assert n_windows(100, 10) == 10

    def test_remainder_dropped(self):
        assert n_windows(109, 10) == 10

    def test_too_short(self):
        assert n_windows(9, 10) == 0

    def test_usable_length(self):
        assert usable_length(109, 10) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            n_windows(10, 0)
        with pytest.raises(ValueError):
            n_windows(-1, 10)


class TestWindowCounts:
    def test_exact_windows(self):
        outcomes = np.array([1, 1, 0, 1] * 3)  # 3 windows of 4, each 3 good
        np.testing.assert_array_equal(window_counts(outcomes, 4), [3, 3, 3])

    def test_recent_alignment_drops_oldest(self):
        # 7 outcomes, m=3: recent alignment keeps the last 6
        outcomes = np.array([0, 1, 1, 1, 0, 0, 0])
        np.testing.assert_array_equal(
            window_counts(outcomes, 3, align="recent"), [3, 0]
        )

    def test_oldest_alignment_drops_newest(self):
        outcomes = np.array([0, 1, 1, 1, 0, 0, 0])
        np.testing.assert_array_equal(
            window_counts(outcomes, 3, align="oldest"), [2, 1]
        )

    def test_empty_when_too_short(self):
        assert window_counts(np.array([1, 0]), 3).size == 0

    def test_time_order_preserved(self):
        outcomes = np.concatenate([np.ones(10), np.zeros(10)]).astype(int)
        np.testing.assert_array_equal(window_counts(outcomes, 10), [10, 0])

    def test_validation(self):
        with pytest.raises(ValueError):
            window_counts(np.array([1, 0]), 0)
        with pytest.raises(ValueError):
            window_counts(np.array([1, 0]), 1, align="middle")
        with pytest.raises(ValueError):
            window_counts(np.eye(2), 1)

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), max_size=200),
        m=st.integers(min_value=1, max_value=20),
    )
    def test_property_counts_bounded_and_sum_preserved(self, bits, m):
        outcomes = np.asarray(bits, dtype=np.int8)
        counts = window_counts(outcomes, m, align="recent")
        assert counts.size == len(bits) // m
        assert ((counts >= 0) & (counts <= m)).all()
        # the counted region is exactly the most recent k*m outcomes
        k = counts.size
        assert counts.sum() == outcomes[len(bits) - k * m :].sum()

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=120),
        m=st.integers(min_value=1, max_value=15),
    )
    def test_property_alignments_agree_on_exact_multiples(self, bits, m):
        usable = (len(bits) // m) * m
        trimmed = np.asarray(bits[:usable], dtype=np.int8)
        if usable == 0:
            return
        np.testing.assert_array_equal(
            window_counts(trimmed, m, align="recent"),
            window_counts(trimmed, m, align="oldest"),
        )
