"""Tests for repro.feedback.history."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating


def _fb(t, client="c", rating=Rating.POSITIVE, server="s"):
    return Feedback(time=float(t), server=server, client=client, rating=rating)


class TestConstruction:
    def test_from_outcomes(self):
        h = TransactionHistory.from_outcomes([1, 0, 1, 1], server="srv")
        assert len(h) == 4
        assert h.n_good == 3
        assert h.n_bad == 1
        assert h.server == "srv"
        np.testing.assert_array_equal(h.outcomes(), [1, 0, 1, 1])

    def test_from_outcomes_rejects_non_binary(self):
        with pytest.raises(ValueError):
            TransactionHistory.from_outcomes([1, 2])

    def test_from_outcomes_rejects_2d(self):
        with pytest.raises(ValueError):
            TransactionHistory.from_outcomes(np.ones((2, 2)))

    def test_from_feedbacks_sorts_by_time(self):
        h = TransactionHistory.from_feedbacks(
            [_fb(3, rating=Rating.NEGATIVE), _fb(1), _fb(2)]
        )
        np.testing.assert_array_equal(h.outcomes(), [1, 1, 0])

    def test_from_feedbacks_rejects_mixed_servers(self):
        with pytest.raises(ValueError):
            TransactionHistory.from_feedbacks([_fb(1, server="a"), _fb(2, server="b")])

    def test_from_feedbacks_rejects_empty(self):
        with pytest.raises(ValueError):
            TransactionHistory.from_feedbacks([])

    def test_empty_server_id_rejected(self):
        with pytest.raises(ValueError):
            TransactionHistory("")


class TestAppend:
    def test_append_outcome(self):
        h = TransactionHistory()
        h.append_outcome(1)
        h.append_outcome(0)
        assert len(h) == 2 and h.n_good == 1

    def test_append_outcome_validation(self):
        with pytest.raises(ValueError):
            TransactionHistory().append_outcome(2)

    def test_append_many_grows_buffer(self):
        h = TransactionHistory()
        for i in range(1000):
            h.append_outcome(i % 2)
        assert len(h) == 1000
        assert h.n_good == 500

    def test_append_feedback_requires_matching_server(self):
        h = TransactionHistory("s")
        with pytest.raises(ValueError):
            h.append_feedback(_fb(1, server="other"))

    def test_append_feedback_requires_time_order(self):
        h = TransactionHistory("s")
        h.append_feedback(_fb(5))
        with pytest.raises(ValueError):
            h.append_feedback(_fb(4))

    def test_cannot_mix_bare_and_feedback(self):
        h = TransactionHistory("s")
        h.append_outcome(1)
        with pytest.raises(ValueError):
            h.append_feedback(_fb(1))

    def test_p_hat(self):
        h = TransactionHistory.from_outcomes([1, 1, 1, 0])
        assert h.p_hat == pytest.approx(0.75)

    def test_p_hat_empty_raises(self):
        with pytest.raises(ValueError):
            TransactionHistory().p_hat


class TestMetadata:
    def test_has_feedback_metadata(self):
        h = TransactionHistory.from_feedbacks([_fb(1), _fb(2)])
        assert h.has_feedback_metadata
        assert len(h.feedbacks()) == 2

    def test_bare_history_has_no_metadata(self):
        h = TransactionHistory.from_outcomes([1, 0])
        assert not h.has_feedback_metadata
        with pytest.raises(ValueError):
            h.feedbacks()

    def test_group_by_client(self):
        h = TransactionHistory.from_feedbacks(
            [_fb(1, "a"), _fb(2, "b"), _fb(3, "a")]
        )
        groups = h.group_by_client()
        assert set(groups) == {"a", "b"}
        assert [f.time for f in groups["a"]] == [1.0, 3.0]

    def test_supporter_base(self):
        h = TransactionHistory.from_feedbacks(
            [_fb(1, "a"), _fb(2, "b", rating=Rating.NEGATIVE), _fb(3, "c")]
        )
        assert h.supporter_base() == {"a", "c"}

    def test_last_time(self):
        h = TransactionHistory.from_feedbacks([_fb(1), _fb(9)])
        assert h.last_time() == 9.0
        assert TransactionHistory.from_outcomes([1]).last_time() == 0.0


class TestViews:
    def test_suffix_outcomes(self):
        h = TransactionHistory.from_outcomes([1, 1, 0, 0, 1])
        np.testing.assert_array_equal(h.suffix_outcomes(2), [0, 1])
        np.testing.assert_array_equal(h.suffix_outcomes(99), [1, 1, 0, 0, 1])
        assert h.suffix_outcomes(0).size == 0

    def test_suffix_feedbacks(self):
        h = TransactionHistory.from_feedbacks([_fb(1, "a"), _fb(2, "b"), _fb(3, "c")])
        assert [f.client for f in h.suffix_feedbacks(2)] == ["b", "c"]

    def test_outcomes_read_only(self):
        h = TransactionHistory.from_outcomes([1, 0])
        with pytest.raises(ValueError):
            h.outcomes()[0] = 0

    def test_window_counts_delegates(self):
        h = TransactionHistory.from_outcomes([1] * 10 + [0] * 10)
        np.testing.assert_array_equal(h.window_counts(10), [10, 0])

    def test_copy_independent(self):
        h = TransactionHistory.from_outcomes([1, 0])
        clone = h.copy()
        clone.append_outcome(1)
        assert len(h) == 2 and len(clone) == 3


class TestSpeculate:
    def test_speculate_appends_then_rolls_back(self):
        h = TransactionHistory.from_outcomes([1, 1])
        with h.speculate(0) as hypothetical:
            assert len(hypothetical) == 3
            assert hypothetical.n_bad == 1
            np.testing.assert_array_equal(hypothetical.outcomes(), [1, 1, 0])
        assert len(h) == 2
        assert h.n_bad == 0

    def test_speculate_rolls_back_on_exception(self):
        h = TransactionHistory.from_outcomes([1, 1])
        with pytest.raises(RuntimeError):
            with h.speculate(0):
                raise RuntimeError("boom")
        assert len(h) == 2 and h.n_good == 2

    def test_speculate_validation(self):
        h = TransactionHistory.from_outcomes([1])
        with pytest.raises(ValueError):
            with h.speculate(7):
                pass

    def test_speculate_feedback_roundtrip(self):
        h = TransactionHistory.from_feedbacks([_fb(1, "a")])
        with h.speculate_feedback(_fb(2, "b", rating=Rating.NEGATIVE)) as hyp:
            assert len(hyp) == 2
            assert hyp.has_feedback_metadata
            assert hyp.feedbacks()[-1].client == "b"
        assert len(h) == 1
        assert h.n_good == 1
        assert [f.client for f in h.feedbacks()] == ["a"]

    def test_nested_speculation(self):
        h = TransactionHistory.from_outcomes([1] * 5)
        with h.speculate(0):
            with h.speculate(0) as inner:
                assert inner.n_bad == 2
            assert h.n_bad == 1
        assert h.n_bad == 0

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=50))
    def test_property_speculation_is_invisible(self, bits):
        h = TransactionHistory.from_outcomes(bits)
        before = h.outcomes().copy()
        with h.speculate(0):
            pass
        with h.speculate(1):
            pass
        np.testing.assert_array_equal(h.outcomes(), before)
        assert h.n_good == int(np.sum(bits))
