"""Tests for repro.feedback.io (CSV / JSONL / binary serialization)."""

import warnings

import pytest

from repro.feedback.io import (
    available_formats,
    detect_format,
    parse_rating,
    read,
    read_feedback_csv,
    read_feedback_jsonl,
    register_reader,
    write_feedback_binary,
    write_feedback_csv,
    write_feedback_jsonl,
)
from repro.feedback.records import Feedback, Rating


def _sample_feedbacks():
    return [
        Feedback(time=1.0, server="s1", client="c1", rating=Rating.POSITIVE),
        Feedback(
            time=2.5,
            server="s1",
            client="c2",
            rating=Rating.NEGATIVE,
            category="NA",
            authentic=False,
        ),
        Feedback(time=3.0, server="s2", client="c1", rating=Rating.POSITIVE),
    ]


class TestParseRating:
    @pytest.mark.parametrize(
        "token", ["1", "positive", "POS", "good", "+", "true", 1]
    )
    def test_positive_spellings(self, token):
        assert parse_rating(token) is Rating.POSITIVE

    @pytest.mark.parametrize("token", ["0", "negative", "NEG", "bad", "-", 0])
    def test_negative_spellings(self, token):
        assert parse_rating(token) is Rating.NEGATIVE

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unrecognized rating"):
            parse_rating("meh")


class TestCsvRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "fb.csv"
        originals = _sample_feedbacks()
        assert write_feedback_csv(path, originals) == 3
        loaded = read(path, format="csv")
        assert loaded == originals

    def test_minimal_header_accepted(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,s,c,positive\n")
        loaded = read(path, format="csv")
        assert len(loaded) == 1
        assert loaded[0].authentic  # defaults applied
        assert loaded[0].category is None

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,rating\n1,s,1\n")
        with pytest.raises(ValueError, match="client"):
            read(path, format="csv")

    def test_bad_time_reports_line(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\nnope,s,c,1\n")
        with pytest.raises(ValueError, match="line 2"):
            read(path, format="csv")

    def test_bad_rating_reports_line(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,s,c,1\n2,s,c,maybe\n")
        with pytest.raises(ValueError, match="line 3"):
            read(path, format="csv")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read(path, format="csv")

    def test_missing_value_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,,c,1\n")
        with pytest.raises(ValueError, match="server"):
            read(path, format="csv")


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        originals = _sample_feedbacks()
        assert write_feedback_jsonl(path, originals) == 3
        assert read(path, format="jsonl") == originals

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text(
            '{"time": 1, "server": "s", "client": "c", "rating": 1}\n'
            "\n"
            '{"time": 2, "server": "s", "client": "c", "rating": 0}\n'
        )
        assert len(read(path, format="jsonl")) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text('{"time": 1, "server": "s", "client": "c", "rating": 1}\n{oops\n')
        with pytest.raises(ValueError, match="line 2"):
            read(path, format="jsonl")

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="expected an object"):
            read(path, format="jsonl")


class TestBinaryRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "fb.ledger"
        originals = _sample_feedbacks()
        assert write_feedback_binary(path, originals) == 3
        loaded = read(path, format="binary")
        assert loaded == originals
        assert loaded.format == "binary"

    def test_strict_raises_on_damaged_tail(self, tmp_path):
        path = tmp_path / "fb.ledger"
        write_feedback_binary(path, _sample_feedbacks())
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)  # mid-record
        with pytest.raises(ValueError, match="damaged"):
            read(path, format="binary")

    def test_collect_trims_and_reports_the_tail(self, tmp_path):
        path = tmp_path / "fb.ledger"
        write_feedback_binary(path, _sample_feedbacks())
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)
        result = read(path, format="binary", errors="collect")
        assert result == _sample_feedbacks()[:2]
        assert len(result.errors) == 1
        assert "crash tail" in result.errors[0].message

    def test_skip_trims_silently(self, tmp_path):
        path = tmp_path / "fb.ledger"
        write_feedback_binary(path, _sample_feedbacks())
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size - 5)
        result = read(path, format="binary", errors="skip")
        assert result == _sample_feedbacks()[:2]
        assert result.errors == []


class TestUnifiedRead:
    def test_auto_by_extension(self, tmp_path):
        csv_path = tmp_path / "fb.csv"
        jsonl_path = tmp_path / "fb.jsonl"
        bin_path = tmp_path / "fb.ledger"
        originals = _sample_feedbacks()
        write_feedback_csv(csv_path, originals)
        write_feedback_jsonl(jsonl_path, originals)
        write_feedback_binary(bin_path, originals)
        for path, fmt in ((csv_path, "csv"), (jsonl_path, "jsonl"), (bin_path, "binary")):
            result = read(path)
            assert result == originals
            assert result.format == fmt

    def test_auto_by_content_sniffing(self, tmp_path):
        originals = _sample_feedbacks()
        for fmt, writer in (
            ("csv", write_feedback_csv),
            ("jsonl", write_feedback_jsonl),
            ("binary", write_feedback_binary),
        ):
            path = tmp_path / f"no-extension-{fmt}"
            writer(path, originals)
            assert detect_format(path) == fmt
            assert read(path) == originals

    def test_unknown_format_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        write_feedback_csv(path, _sample_feedbacks())
        with pytest.raises(ValueError, match="unknown feedback format"):
            read(path, format="parquet")

    def test_registry_is_extensible(self, tmp_path):
        from repro.feedback.io import ReadResult, _EXTENSIONS, _READERS

        def read_nothing(path, *, errors="strict"):
            return ReadResult([])

        register_reader("nothing", read_nothing, extensions=(".nil",))
        try:
            assert "nothing" in available_formats()
            path = tmp_path / "x.csv"
            write_feedback_csv(path, [])
            # explicit format dispatches through the registered reader
            path.write_text("time,server,client,rating\n")
            assert read(path, format="nothing") == []
        finally:
            _READERS.pop("nothing", None)
            _EXTENSIONS.pop(".nil", None)

    def test_available_formats_has_builtins(self):
        assert {"csv", "jsonl", "binary"} <= set(available_formats())


class TestDeprecatedReaders:
    def test_read_feedback_csv_warns_once_and_delegates(self, tmp_path):
        path = tmp_path / "fb.csv"
        originals = _sample_feedbacks()
        write_feedback_csv(path, originals)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = read_feedback_csv(path)
        assert loaded == originals
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "read_feedback_csv" in str(deprecations[0].message)

    def test_read_feedback_jsonl_warns_once_and_delegates(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        originals = _sample_feedbacks()
        write_feedback_jsonl(path, originals)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            loaded = read_feedback_jsonl(path)
        assert loaded == originals
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "read_feedback_jsonl" in str(deprecations[0].message)

    def test_deprecated_error_modes_still_flow_through(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "time,server,client,rating\n1.0,s1,c1,1\noops,s1,c2,1\n"
        )
        with pytest.deprecated_call():
            result = read_feedback_csv(path, errors="collect")
        assert [fb.time for fb in result] == [1.0]
        assert [err.line for err in result.errors] == [3]


class TestErrorModes:
    def _csv_with_bad_rows(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "time,server,client,rating\n"
            "1.0,s1,c1,1\n"
            "oops,s1,c2,1\n"
            "3.0,s1,c3,maybe\n"
            "4.0,s1,c4,0\n"
        )
        return path

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        with pytest.raises(ValueError, match="errors"):
            read(path, format="csv", errors="ignore")

    def test_strict_is_the_default(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        with pytest.raises(ValueError, match="line 3"):
            read(path, format="csv")

    def test_collect_returns_good_rows_and_structured_errors(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        result = read(path, format="csv", errors="collect")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert [err.line for err in result.errors] == [3, 4]
        assert "not a number" in result.errors[0].message
        assert "rating" in result.errors[1].message
        assert result.errors[0].raw["time"] == "oops"

    def test_skip_drops_bad_rows_without_collecting(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        result = read(path, format="csv", errors="skip")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert result.errors == []

    def test_header_problems_always_raise(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("time,server,rating\n1.0,s1,1\n")
        with pytest.raises(ValueError, match="header"):
            read(path, format="csv", errors="collect")

    def test_jsonl_collect_counts_undecodable_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"time": 1.0, "server": "s1", "client": "c1", "rating": 1}\n'
            "{not json}\n"
            '["not", "an", "object"]\n'
            '{"time": 4.0, "server": "s1", "client": "c2", "rating": 0}\n'
        )
        result = read(path, format="jsonl", errors="collect")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert [err.line for err in result.errors] == [2, 3]
        assert "invalid JSON" in result.errors[0].message
        assert "expected an object" in result.errors[1].message

    def test_jsonl_strict_still_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="line 1"):
            read(path, format="jsonl")

    def test_result_is_a_plain_list_to_existing_callers(self, tmp_path):
        path = tmp_path / "ok.csv"
        write_feedback_csv(path, _sample_feedbacks())
        result = read(path, format="csv")
        assert isinstance(result, list)
        assert list(result) == _sample_feedbacks()
        assert result.errors == []
