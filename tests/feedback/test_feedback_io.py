"""Tests for repro.feedback.io (CSV / JSONL serialization)."""

import pytest

from repro.feedback.io import (
    parse_rating,
    read_feedback_csv,
    read_feedback_jsonl,
    write_feedback_csv,
    write_feedback_jsonl,
)
from repro.feedback.records import Feedback, Rating


def _sample_feedbacks():
    return [
        Feedback(time=1.0, server="s1", client="c1", rating=Rating.POSITIVE),
        Feedback(
            time=2.5,
            server="s1",
            client="c2",
            rating=Rating.NEGATIVE,
            category="NA",
            authentic=False,
        ),
        Feedback(time=3.0, server="s2", client="c1", rating=Rating.POSITIVE),
    ]


class TestParseRating:
    @pytest.mark.parametrize(
        "token", ["1", "positive", "POS", "good", "+", "true", 1]
    )
    def test_positive_spellings(self, token):
        assert parse_rating(token) is Rating.POSITIVE

    @pytest.mark.parametrize("token", ["0", "negative", "NEG", "bad", "-", 0])
    def test_negative_spellings(self, token):
        assert parse_rating(token) is Rating.NEGATIVE

    def test_unknown_raises(self):
        with pytest.raises(ValueError, match="unrecognized rating"):
            parse_rating("meh")


class TestCsvRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "fb.csv"
        originals = _sample_feedbacks()
        assert write_feedback_csv(path, originals) == 3
        loaded = read_feedback_csv(path)
        assert loaded == originals

    def test_minimal_header_accepted(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,s,c,positive\n")
        loaded = read_feedback_csv(path)
        assert len(loaded) == 1
        assert loaded[0].authentic  # defaults applied
        assert loaded[0].category is None

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,rating\n1,s,1\n")
        with pytest.raises(ValueError, match="client"):
            read_feedback_csv(path)

    def test_bad_time_reports_line(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\nnope,s,c,1\n")
        with pytest.raises(ValueError, match="line 2"):
            read_feedback_csv(path)

    def test_bad_rating_reports_line(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,s,c,1\n2,s,c,maybe\n")
        with pytest.raises(ValueError, match="line 3"):
            read_feedback_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_feedback_csv(path)

    def test_missing_value_rejected(self, tmp_path):
        path = tmp_path / "fb.csv"
        path.write_text("time,server,client,rating\n1,,c,1\n")
        with pytest.raises(ValueError, match="server"):
            read_feedback_csv(path)


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        originals = _sample_feedbacks()
        assert write_feedback_jsonl(path, originals) == 3
        assert read_feedback_jsonl(path) == originals

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text(
            '{"time": 1, "server": "s", "client": "c", "rating": 1}\n'
            "\n"
            '{"time": 2, "server": "s", "client": "c", "rating": 0}\n'
        )
        assert len(read_feedback_jsonl(path)) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text('{"time": 1, "server": "s", "client": "c", "rating": 1}\n{oops\n')
        with pytest.raises(ValueError, match="line 2"):
            read_feedback_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "fb.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(ValueError, match="expected an object"):
            read_feedback_jsonl(path)


class TestErrorModes:
    def _csv_with_bad_rows(self, tmp_path):
        path = tmp_path / "mixed.csv"
        path.write_text(
            "time,server,client,rating\n"
            "1.0,s1,c1,1\n"
            "oops,s1,c2,1\n"
            "3.0,s1,c3,maybe\n"
            "4.0,s1,c4,0\n"
        )
        return path

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        with pytest.raises(ValueError, match="errors"):
            read_feedback_csv(path, errors="ignore")

    def test_strict_is_the_default(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        with pytest.raises(ValueError, match="line 3"):
            read_feedback_csv(path)

    def test_collect_returns_good_rows_and_structured_errors(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        result = read_feedback_csv(path, errors="collect")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert [err.line for err in result.errors] == [3, 4]
        assert "not a number" in result.errors[0].message
        assert "rating" in result.errors[1].message
        assert result.errors[0].raw["time"] == "oops"

    def test_skip_drops_bad_rows_without_collecting(self, tmp_path):
        path = self._csv_with_bad_rows(tmp_path)
        result = read_feedback_csv(path, errors="skip")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert result.errors == []

    def test_header_problems_always_raise(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text("time,server,rating\n1.0,s1,1\n")
        with pytest.raises(ValueError, match="header"):
            read_feedback_csv(path, errors="collect")

    def test_jsonl_collect_counts_undecodable_lines(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            '{"time": 1.0, "server": "s1", "client": "c1", "rating": 1}\n'
            "{not json}\n"
            '["not", "an", "object"]\n'
            '{"time": 4.0, "server": "s1", "client": "c2", "rating": 0}\n'
        )
        result = read_feedback_jsonl(path, errors="collect")
        assert [fb.time for fb in result] == [1.0, 4.0]
        assert [err.line for err in result.errors] == [2, 3]
        assert "invalid JSON" in result.errors[0].message
        assert "expected an object" in result.errors[1].message

    def test_jsonl_strict_still_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="line 1"):
            read_feedback_jsonl(path)

    def test_result_is_a_plain_list_to_existing_callers(self, tmp_path):
        path = tmp_path / "ok.csv"
        write_feedback_csv(path, _sample_feedbacks())
        result = read_feedback_csv(path)
        assert isinstance(result, list)
        assert list(result) == _sample_feedbacks()
        assert result.errors == []
