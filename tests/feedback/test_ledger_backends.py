"""Backend conformance: every ledger backend honors the same contract.

The ledger API redesign demands that ``backend="memory"``, ``"columnar"``
and ``"mmap"`` are interchangeable: identical query results, identical
live-history semantics, identical fold-fault behavior at the
``feedback.ledger.fold`` site.  One shared test class runs against all
three so a new backend cannot drift from the contract silently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.feedback.ledger import (
    FeedbackLedger,
    available_ledger_backends,
    make_ledger_backend,
    register_ledger_backend,
)
from repro.feedback.store import FeedbackBatch
from repro.feedback.records import Feedback, Rating
from repro.resilience import FaultPlan, Quarantine
from repro.resilience import runtime as res

BACKENDS = ("memory", "columnar", "mmap")


def _fb(t, server="s1", client="c1", rating=Rating.POSITIVE, category=None):
    return Feedback(
        time=float(t), server=server, client=client, rating=rating, category=category
    )


@pytest.fixture(params=BACKENDS)
def make_ledger(request, tmp_path):
    """Factory producing a fresh ledger of the parametrized backend."""
    counter = {"n": 0}

    def factory(**kwargs):
        if request.param == "mmap":
            counter["n"] += 1
            kwargs.setdefault("path", str(tmp_path / f"led{counter['n']}.bin"))
        return FeedbackLedger(backend=request.param, **kwargs)

    factory.backend = request.param
    return factory


STREAM = [
    _fb(1, "s1", "c1"),
    _fb(2, "s1", "c2", Rating.NEGATIVE),
    _fb(3, "s2", "c1"),
    _fb(4, "s1", "c1"),
    _fb(5, "s2", "c3", Rating.NEGATIVE, category="na"),
    _fb(6, "s3", "c1"),
]


@pytest.fixture()
def ledger(make_ledger):
    led = make_ledger()
    led.record_many(STREAM)
    return led


class TestConformance:
    def test_backend_name(self, ledger, make_ledger):
        assert ledger.backend_name == make_ledger.backend

    def test_len_servers_clients(self, ledger):
        assert len(ledger) == len(STREAM)
        assert ledger.servers() == {"s1", "s2", "s3"}
        assert ledger.clients() == {"c1", "c2", "c3"}

    def test_feedbacks_for_server(self, ledger):
        assert [f.time for f in ledger.feedbacks_for_server("s1")] == [1.0, 2.0, 4.0]
        assert ledger.feedbacks_for_server("nope") == []

    def test_feedbacks_by_client(self, ledger):
        assert [f.server for f in ledger.feedbacks_by_client("c1")] == [
            "s1",
            "s2",
            "s1",
            "s3",
        ]

    def test_feedback_metadata_round_trip(self, ledger):
        (fb,) = [f for f in ledger.feedbacks_for_server("s2") if f.time == 5.0]
        assert fb.client == "c3"
        assert fb.rating is Rating.NEGATIVE
        assert fb.category == "na"
        assert fb.authentic is True

    def test_history_outcomes_and_metadata(self, ledger):
        history = ledger.history("s1")
        assert np.array_equal(history.outcomes(), [1, 0, 1])
        assert history.has_feedback_metadata
        assert [f.client for f in history.feedbacks()] == ["c1", "c2", "c1"]
        assert history.last_time() == 4.0

    def test_history_is_live(self, ledger):
        history = ledger.history("s1")
        ledger.record(_fb(9, "s1", "c9"))
        assert len(history) == 4
        assert history.last_time() == 9.0
        assert history.feedbacks()[-1].client == "c9"

    def test_history_unknown_server_raises(self, ledger):
        with pytest.raises(KeyError):
            ledger.history("nope")

    def test_per_server_time_order_enforced(self, ledger):
        with pytest.raises(ValueError):
            ledger.record(_fb(0, "s1"))
        # other servers may interleave freely (s2 last saw t=5)
        assert ledger.record(_fb(5.5, "s2"))

    def test_last_interaction(self, ledger):
        last = ledger.last_interaction("s1", "c1")
        assert last is not None and last.time == 4.0
        assert ledger.last_interaction("s1", "c3") is None
        assert ledger.last_interaction("nope", "c1") is None

    def test_last_interaction_tracks_new_folds(self, ledger):
        ledger.record(_fb(9, "s1", "c1"))
        assert ledger.last_interaction("s1", "c1").time == 9.0

    def test_interaction_counts(self, ledger):
        assert ledger.interaction_counts("s1") == {"c1": 2, "c2": 1}
        assert ledger.interaction_counts("nope") == {}

    def test_feedback_graph(self, ledger):
        graph = ledger.feedback_graph()
        assert graph[("c1", "s1")] == (2, 0)
        assert graph[("c2", "s1")] == (0, 1)
        assert graph[("c3", "s2")] == (0, 1)

    def test_subscribe_sees_every_fold(self, make_ledger):
        led = make_ledger()
        seen = []
        led.subscribe(lambda fb: seen.append(fb.time))
        led.record_many(STREAM)
        assert seen == [f.time for f in STREAM]

    def test_record_batch_matches_per_event(self, make_ledger):
        batch = FeedbackBatch.from_feedbacks(STREAM)
        bulk = make_ledger()
        bulk.record_batch(batch)
        per_event = make_ledger()
        per_event.record_many(STREAM)
        assert bulk.feedback_graph() == per_event.feedback_graph()
        for server in per_event.servers():
            assert np.array_equal(
                bulk.history(server).outcomes(),
                per_event.history(server).outcomes(),
            )
            assert bulk.feedbacks_for_server(server) == per_event.feedbacks_for_server(
                server
            )

    def test_quarantine_captures_out_of_order(self, make_ledger):
        quarantine = Quarantine(name="ledger")
        led = make_ledger(quarantine=quarantine)
        assert led.record(_fb(10))
        assert not led.record(_fb(5))
        assert led.record(_fb(11))
        assert len(led) == 2
        (item,) = quarantine.items()
        assert item.site == "feedback.ledger.fold"
        assert item.item.time == 5.0

    @pytest.mark.parametrize("chaos_seed", [0, 1337, 90210])
    def test_injected_fold_fault_fires_identically(self, make_ledger, chaos_seed):
        """The ``feedback.ledger.fold`` site fires on every backend with
        the same plan-driven decisions — same events folded, same
        quarantine depth."""
        quarantine = Quarantine(name="ledger")
        led = make_ledger(quarantine=quarantine)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("feedback.ledger.fold", "exception", probability=0.5)
        with res.activate(plan):
            folded = led.record_many(STREAM)
        assert folded + quarantine.depth == len(STREAM)
        assert len(led) == folded
        # the surviving folds are still fully queryable
        for server in led.servers():
            assert len(led.history(server)) > 0


class TestRegistry:
    def test_available_backends(self):
        names = available_ledger_backends()
        for name in BACKENDS:
            assert name in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown ledger backend"):
            FeedbackLedger(backend="nope")

    def test_custom_backend_registers(self):
        class _Stub:
            def __init__(self, quarantine=None):
                self.quarantine = quarantine

        register_ledger_backend("stub-test", _Stub)
        try:
            backend = make_ledger_backend("stub-test")
            assert isinstance(backend, _Stub)
        finally:
            # keep the registry clean for other tests
            from repro.feedback import ledger as ledger_mod

            ledger_mod._LEDGER_BACKENDS.pop("stub-test", None)


class TestLastInteractionIndex:
    """Regression: ``last_interaction`` must be an index lookup, not a scan.

    The old implementation walked every feedback of the server per call
    (O(n)); the maintained ``(server, client) -> last feedback`` index
    answers without touching the per-server feedback list.
    """

    def test_no_scan_through_feedbacks(self, make_ledger, monkeypatch):
        led = make_ledger()
        led.record_many(STREAM)

        def _boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("last_interaction fell back to a scan")

        monkeypatch.setattr(led.backend, "feedbacks_for_server", _boom)
        monkeypatch.setattr(led.backend, "feedbacks_by_client", _boom)
        last = led.last_interaction("s1", "c1")
        assert last is not None and last.time == 4.0

    def test_index_correct_under_interleaving(self, make_ledger):
        led = make_ledger()
        rng = np.random.default_rng(5)
        latest = {}
        t = 0.0
        for _ in range(300):
            t += 1.0
            server = f"s{rng.integers(0, 7)}"
            client = f"c{rng.integers(0, 5)}"
            fb = _fb(t, server, client)
            led.record(fb)
            latest[(server, client)] = fb.time
        for (server, client), expected in latest.items():
            assert led.last_interaction(server, client).time == expected
