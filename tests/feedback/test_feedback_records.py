"""Tests for repro.feedback.records."""

import pytest

from repro.feedback.records import BAD, GOOD, Feedback, Rating


class TestRating:
    def test_integer_values(self):
        assert int(Rating.POSITIVE) == 1
        assert int(Rating.NEGATIVE) == 0

    def test_is_good(self):
        assert Rating.POSITIVE.is_good
        assert not Rating.NEGATIVE.is_good

    def test_aliases(self):
        assert GOOD is Rating.POSITIVE
        assert BAD is Rating.NEGATIVE

    def test_from_outcome(self):
        assert Rating.from_outcome(1) is Rating.POSITIVE
        assert Rating.from_outcome(0) is Rating.NEGATIVE

    def test_from_outcome_invalid(self):
        with pytest.raises(ValueError):
            Rating.from_outcome(2)


class TestFeedback:
    def _fb(self, **overrides):
        base = dict(time=1.0, server="s", client="c", rating=Rating.POSITIVE)
        base.update(overrides)
        return Feedback(**base)

    def test_outcome(self):
        assert self._fb().outcome == 1
        assert self._fb(rating=Rating.NEGATIVE).outcome == 0

    def test_ordering_by_time(self):
        early = self._fb(time=1.0)
        late = self._fb(time=2.0)
        assert early < late
        assert sorted([late, early]) == [early, late]

    def test_default_flags(self):
        fb = self._fb()
        assert fb.authentic
        assert fb.category is None

    def test_category_and_authenticity(self):
        fb = self._fb(category="NA", authentic=False)
        assert fb.category == "NA"
        assert not fb.authentic

    def test_frozen(self):
        with pytest.raises(AttributeError):
            self._fb().rating = Rating.NEGATIVE

    def test_replace_rating(self):
        fb = self._fb(category="EU", authentic=False)
        flipped = fb.replace_rating(Rating.NEGATIVE)
        assert flipped.rating is Rating.NEGATIVE
        assert flipped.category == "EU"
        assert not flipped.authentic
        assert fb.rating is Rating.POSITIVE  # original untouched

    def test_validation(self):
        with pytest.raises(TypeError):
            self._fb(rating=1)
        with pytest.raises(ValueError):
            self._fb(server="")
        with pytest.raises(ValueError):
            self._fb(client="")
