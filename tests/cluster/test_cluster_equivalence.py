"""Cluster vs single node: bit-identical verdicts while healthy.

The acceptance bar for the sharded deployment: for the full corpus of
honest / hibernating / periodic / collusive servers, a healthy cluster
and a single-node service sharing its calibrator return identical
:class:`~repro.core.verdict.Assessment` objects — across shard counts,
incremental ingest, and membership changes.
"""

from __future__ import annotations

import pytest

from repro.feedback.records import Feedback

from .conftest import corpus, make_cluster, make_reference


class TestHealthyEquivalence:
    @pytest.mark.parametrize("n_nodes", [2, 4, 5])
    def test_verdicts_identical_across_shard_counts(self, n_nodes):
        events = corpus()
        cluster = make_cluster(n_nodes=n_nodes)
        cluster.record_batch(events)
        reference = make_reference(events, cluster._calibrator)
        expected = reference.assess_many(cluster.servers)
        got = cluster.assess_many()
        assert got == expected
        assert not any(a.degraded for a in got.values())

    def test_single_node_cluster_degenerates_cleanly(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster(n_nodes=1, replicas=1, read_quorum=1)
        cluster.record_batch(events)
        reference = make_reference(events, cluster._calibrator)
        assert cluster.assess_many() == reference.assess_many(cluster.servers)

    def test_incremental_batches_match_one_shot(self):
        events = corpus()
        cut = len(events) // 3
        incremental = make_cluster()
        incremental.record_batch(events[:cut])
        incremental.assess_many()  # interleaved reads must not disturb state
        incremental.record_batch(events[cut:])
        reference = make_reference(events, incremental._calibrator)
        assert incremental.assess_many() == reference.assess_many(
            incremental.servers
        )

    def test_duplicate_delivery_is_idempotent(self):
        events = corpus(n_per_kind=2)
        cluster = make_cluster()
        cluster.record_batch(events)
        before = cluster.assess_many()
        cluster.record_batch(events)  # exact redelivery of the whole batch
        assert cluster.assess_many() == before

    def test_assess_subset_and_unknown_server(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        subset = cluster.servers[:3]
        got = cluster.assess_many(subset)
        assert list(got) == subset
        with pytest.raises(KeyError):
            cluster.assess_many(["no-such-server"])


class TestMembershipEquivalence:
    def test_join_ships_snapshots_and_preserves_verdicts(self):
        events = corpus()
        cluster = make_cluster(n_nodes=3)
        cluster.record_batch(events)
        baseline = cluster.assess_many()
        cluster.add_node("shard-93")
        assert cluster.assess_many() == baseline
        report = cluster.stats_report()
        assert report["nodes"] == 4
        assert report["replication"]["violated"] == 0

    def test_graceful_leave_rehomes_shards(self):
        events = corpus()
        cluster = make_cluster(n_nodes=4)
        cluster.record_batch(events)
        baseline = cluster.assess_many()
        cluster.remove_node(cluster.members[0], graceful=True)
        assert cluster.assess_many() == baseline
        assert cluster.stats_report()["replication"]["violated"] == 0

    def test_join_after_more_writes_replays_the_tail(self):
        events = corpus()
        cut = len(events) - 40
        cluster = make_cluster(n_nodes=3)
        cluster.record_batch(events[:cut])
        cluster.add_node("shard-94")
        cluster.record_batch(events[cut:])
        reference = make_reference(events, cluster._calibrator)
        assert cluster.assess_many() == reference.assess_many(cluster.servers)
