"""Quorum reads: replica failures, degradation, and read-repair."""

from __future__ import annotations

from dataclasses import replace

from repro.cluster import ClusterAssessmentService
from repro.core.verdict import AssessmentStatus
from repro.feedback.records import Feedback, Rating
from repro.obs.events import EventLog
from repro.resilience import runtime as res

from .conftest import corpus, make_cluster, make_reference


def _pref(cluster: ClusterAssessmentService, server: str):
    return cluster._ring.preference_list(server)


class TestQuorumDegradation:
    def test_one_dead_replica_keeps_full_quality(self):
        """K=3, R=2: losing one replica costs nothing visible."""
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        reference = make_reference(events, cluster._calibrator)
        expected = reference.assess_many(cluster.servers)
        server = cluster.servers[0]
        cluster.kill(_pref(cluster, server)[0])  # the owner, no less
        got = cluster.assess_many()
        assert got == expected
        assert not any(a.degraded for a in got.values())

    def test_below_quorum_degrades_but_answers(self):
        """One surviving replica: right verdict, flagged degraded."""
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        reference = make_reference(events, cluster._calibrator)
        expected = reference.assess_many(cluster.servers)
        server = cluster.servers[0]
        pref = _pref(cluster, server)
        cluster.kill(pref[0])
        cluster.kill(pref[1])
        got = cluster.assess_many([server])
        assert got[server].degraded
        assert got[server] == replace(expected[server], degraded=True)

    def test_zero_replicas_yields_fail_safe_verdict(self):
        """Every replica dead: UNTRUSTED/degraded, never an exception."""
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        server = cluster.servers[0]
        log = EventLog()
        with res.activate(None, log):
            for member in _pref(cluster, server):
                cluster.kill(member)
            got = cluster.assess_many([server])
        verdict = got[server]
        assert verdict.degraded
        assert verdict.status is AssessmentStatus.UNTRUSTED
        assert verdict.trust_value is None
        assert "cluster_quorum_lost" in [e["event"] for e in log.events]

    def test_every_server_answers_under_minority_kill(self):
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        for member in cluster.members[:2]:  # minority of 5
            cluster.kill(member)
        got = cluster.assess_many()
        assert sorted(got) == sorted(cluster.servers)


class TestReadRepair:
    def _diverge(self, cluster, server, events):
        """Apply one extra event to the second replica only."""
        last = max(fb.time for fb in events if fb.server == server)
        extra = Feedback(
            time=last + 1.0,
            server=server,
            client="cli-divergent",
            rating=Rating.NEGATIVE,
        )
        second = cluster._members[_pref(cluster, server)[1]]
        second.apply_events([extra])
        return extra

    def test_divergent_replicas_are_repaired_on_read(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        server = cluster.servers[0]
        extra = self._diverge(cluster, server, events)
        log = EventLog()
        with res.activate(None, log):
            got = cluster.assess_many([server])
        assert "cluster_read_repair" in [e["event"] for e in log.events]
        # all replicas converge on the merged stream
        digests = {
            cluster._members[m].digest_of(server)
            for m in _pref(cluster, server)
        }
        assert len(digests) == 1
        # and the returned verdict reflects the merged history
        reference = make_reference(
            events + [extra], cluster._calibrator, servers=[server]
        )
        assert got[server] == reference.assess_many([server])[server]
        assert not got[server].degraded

    def test_anti_entropy_repairs_without_reads(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        server = cluster.servers[0]
        extra = self._diverge(cluster, server, events)
        summary = cluster.anti_entropy()
        assert summary["diverged"] == 1
        assert summary["repaired"] == 1
        digests = {
            cluster._members[m].digest_of(server)
            for m in _pref(cluster, server)
        }
        assert len(digests) == 1
        reference = make_reference(
            events + [extra], cluster._calibrator, servers=[server]
        )
        assert (
            cluster.assess_many([server])[server]
            == reference.assess_many([server])[server]
        )

    def test_clean_cluster_anti_entropy_is_all_synced(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        summary = cluster.anti_entropy()
        assert summary["diverged"] == 0
        assert summary["repaired"] == 0
        assert summary["synced"] == summary["groups"]
