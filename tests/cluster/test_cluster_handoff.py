"""Hinted handoff: writes survive dead replicas and replay on recovery."""

from __future__ import annotations

from repro.feedback.records import Feedback
from repro.obs.events import EventLog
from repro.resilience import runtime as res

from .conftest import corpus, make_cluster, make_reference


def _later(events, more):
    """Shift ``more`` strictly after ``events`` on the time axis."""
    base = max(fb.time for fb in events) + 1.0
    return [
        Feedback(
            time=base + i * 0.001,
            server=fb.server,
            client=fb.client,
            rating=fb.rating,
        )
        for i, fb in enumerate(more)
    ]


class TestHintedHandoff:
    def test_writes_to_a_dead_replica_are_hinted(self):
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        victim = cluster.members[0]
        log = EventLog()
        with res.activate(None, log):
            cluster.kill(victim)
            more = _later(events, corpus(n_events=4, seed=99))
            summary = cluster.record_batch(more)
        assert summary["hinted"] > 0
        assert cluster.open_hints() == summary["hinted"]
        assert "cluster_hint_stored" in [e["event"] for e in log.events]
        # the victim holds none of the hinted events yet
        assert all(
            name != victim for name in cluster._members[victim].hints
        )

    def test_recovery_replays_hints_and_restores_equivalence(self):
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        victim = cluster.members[0]
        cluster.kill(victim)
        more = _later(events, corpus(n_events=4, seed=99))
        cluster.record_batch(more)
        held = cluster.open_hints()
        assert held > 0
        log = EventLog()
        with res.activate(None, log):
            replayed = cluster.recover(victim)
        assert replayed == held
        assert cluster.open_hints() == 0
        names = [e["event"] for e in log.events]
        assert "cluster_hint_replayed" in names
        assert "cluster_node_recovered" in names
        # after replay every replica agrees with the single-node truth
        reference = make_reference(events + more, cluster._calibrator)
        got = cluster.assess_many()
        assert got == reference.assess_many(cluster.servers)
        assert not any(a.degraded for a in got.values())

    def test_hint_is_lost_loudly_when_no_holder_exists(self):
        """K = N: the preference list covers everyone, nobody can hold."""
        events = corpus(n_per_kind=1)
        cluster = make_cluster(n_nodes=3, replicas=3, read_quorum=1)
        cluster.record_batch(events)
        cluster.kill(cluster.members[0])
        log = EventLog()
        with res.activate(None, log):
            more = _later(events, corpus(n_per_kind=1, n_events=2, seed=31))
            summary = cluster.record_batch(more)
        assert summary["hinted"] == 0
        assert cluster.open_hints() == 0
        assert "cluster_hint_lost" in [e["event"] for e in log.events]
        # surviving replicas still answer for every server
        got = cluster.assess_many()
        assert sorted(got) == sorted(cluster.servers)

    def test_recover_without_hints_is_a_no_op_replay(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        victim = cluster.members[0]
        cluster.kill(victim)
        assert cluster.recover(victim) == 0
