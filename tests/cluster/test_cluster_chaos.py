"""Chaos suite: node kills mid-flight, deterministic under the seed.

The contract: killing a minority of nodes at the ``p2p.network.kill``
fault site — mid-``assess_many`` or mid-``record_batch`` — still
returns a verdict for every server (degraded where the read quorum was
lost, fail-safe where every replica died), and never an unhandled
exception.  Replaying the same ``REPRO_CHAOS_SEED`` reproduces the
same kills and the same verdicts bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace

from repro.obs.events import EventLog
from repro.resilience import FaultPlan
from repro.resilience import runtime as res

from .conftest import corpus, make_cluster, make_reference


def _kill_plan(seed: int, max_kills: int = 2) -> FaultPlan:
    plan = FaultPlan(seed=seed)
    plan.arm("p2p.network.kill", "crash", probability=0.02, max_fires=max_kills)
    return plan


class TestKillMidAssess:
    def test_every_server_gets_a_verdict(self, chaos_seed):
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        reference = make_reference(events, cluster._calibrator)
        expected = reference.assess_many(cluster.servers)
        log = EventLog()
        with res.activate(_kill_plan(chaos_seed), log):
            got = cluster.assess_many()
        assert sorted(got) == sorted(cluster.servers)
        for server, verdict in got.items():
            if not verdict.degraded:
                # full quorum: bit-identical to the single-node truth
                assert verdict == expected[server]
            else:
                # degraded: either the surviving replica's (correct)
                # verdict flagged, or the fail-safe when none survived
                assert (
                    verdict == replace(expected[server], degraded=True)
                    or verdict.trust_value is None
                )

    def test_kills_are_visible_in_the_event_stream(self, chaos_seed):
        events = corpus()
        cluster = make_cluster()
        cluster.record_batch(events)
        log = EventLog()
        plan = _kill_plan(chaos_seed)
        with res.activate(plan, log):
            cluster.assess_many()
        fires = plan.counts()["p2p.network.kill"]["fires"]
        killed = [e for e in log.events if e["event"] == "node_killed"]
        assert len(killed) == fires
        assert all(e["site"] == "p2p.network.kill" for e in killed)

    def test_replay_is_deterministic(self, chaos_seed):
        runs = []
        for _ in range(2):
            events = corpus()
            cluster = make_cluster()
            cluster.record_batch(events)
            plan = _kill_plan(chaos_seed)
            with res.activate(plan):
                verdicts = cluster.assess_many()
            runs.append((verdicts, plan.counts()))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]


class TestKillMidRecord:
    def test_writes_survive_as_hints_or_replicas(self, chaos_seed):
        events = corpus()
        cluster = make_cluster()
        with res.activate(_kill_plan(chaos_seed)):
            summary = cluster.record_batch(events)
        assert summary["events"] == len(events)
        # whatever was killed, reads still answer for every server
        got = cluster.assess_many()
        assert sorted(got) == sorted(cluster.servers)

    def test_recovery_after_chaos_restores_equivalence(self, chaos_seed):
        events = corpus()
        cluster = make_cluster()
        plan = _kill_plan(chaos_seed)
        with res.activate(plan):
            cluster.record_batch(events)
        # recover everything the chaos run killed, replay hints, repair
        for member in list(cluster.members):
            if not cluster.network.is_alive(member):
                cluster.recover(member)
        cluster.anti_entropy()
        reference = make_reference(events, cluster._calibrator)
        got = cluster.assess_many()
        assert got == reference.assess_many(cluster.servers)
        assert not any(a.degraded for a in got.values())
        assert cluster.stats_report()["replication"]["violated"] == 0
