"""Shared fixtures for the cluster suite.

Like the resilience chaos suite, everything derives from one
environment variable, ``REPRO_CHAOS_SEED`` (default 0): CI runs the
directory under a seed matrix with node-kill fault sites armed, and any
failure replays locally by exporting the same seed.

The central invariant under test: a *healthy* cluster returns verdicts
bit-identical to a single-node :class:`~repro.serve.AssessmentService`
sharing the cluster's threshold calibrator (the ε-threshold Monte-Carlo
draws from one stream, so sharing the calibrator's cache removes the
calibration-order dependence between deployments).
"""

from __future__ import annotations

import os
from typing import List, Optional

import numpy as np
import pytest

from repro.adversary.hibernating import hibernating_attack_history
from repro.adversary.periodic import periodic_attack_history
from repro.cluster import ClusterAssessmentService
from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.two_phase import Assessor
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.resilience.health import GLOBAL_HEALTH
from repro.serve import AssessmentService


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """The seed every fault plan in this run derives from."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _isolate_health_registry():
    """Each test sees only the resilience components it creates."""
    GLOBAL_HEALTH.clear()
    yield
    GLOBAL_HEALTH.clear()


#: Small-but-real serving config: single behavior test, cheap Monte-Carlo
#: calibration, low trust bar so statuses vary across servers.
CLUSTER_CONFIG = AssessorConfig(
    trust_function="average",
    behavior_test="single",
    trust_threshold=0.7,
    test_config=BehaviorTestConfig(
        window_size=8, min_windows=2, calibration_sets=50
    ),
)


def corpus(
    n_per_kind: int = 3, n_events: int = 40, seed: int = 7
) -> List[Feedback]:
    """A mixed fleet: honest, hibernating, periodic, and collusive servers.

    Streams are time-ordered per server; the collusive pattern is a
    colluder-pumped positive prep followed by a cheat burst against
    ordinary clients — enough to vary both assessment phases.
    """
    rng = np.random.default_rng(seed)
    events: List[Feedback] = []
    t = 0.0

    def emit(server: str, outcomes, clients: List[str]) -> None:
        nonlocal t
        for ok in outcomes:
            t += 0.001
            events.append(
                Feedback(
                    time=t,
                    server=server,
                    client=clients[int(rng.integers(0, len(clients)))],
                    rating=Rating.POSITIVE if ok else Rating.NEGATIVE,
                )
            )

    ordinary = [f"cli-{i:03d}" for i in range(25)]
    colluders = [f"colluder-{i}" for i in range(3)]
    for i in range(n_per_kind):
        emit(
            f"honest-{i:02d}",
            generate_honest_outcomes(n_events, 0.9, seed=seed + i),
            ordinary,
        )
        emit(
            f"hibernating-{i:02d}",
            hibernating_attack_history(n_events, 10, seed=seed + i),
            ordinary,
        )
        emit(
            f"periodic-{i:02d}",
            periodic_attack_history(n_events, 5, seed=seed + i),
            ordinary,
        )
        prep = [1] * (n_events - 10)
        emit(f"collusive-{i:02d}", prep, colluders)
        emit(f"collusive-{i:02d}", [0] * 10, ordinary)
    return events


def make_cluster(
    calibrator=None, **kwargs
) -> ClusterAssessmentService:
    """A cluster over a private simulated network (default 5×K3 R2)."""
    kwargs.setdefault("n_nodes", 5)
    kwargs.setdefault("replicas", 3)
    kwargs.setdefault("read_quorum", 2)
    return ClusterAssessmentService(
        CLUSTER_CONFIG, calibrator=calibrator, **kwargs
    )


def make_reference(
    events: List[Feedback],
    calibrator,
    servers: Optional[List[str]] = None,
) -> AssessmentService:
    """The single-node ground truth sharing ``calibrator``."""
    ledger = FeedbackLedger(backend="memory")
    service = AssessmentService(
        assessor=Assessor.from_config(CLUSTER_CONFIG, calibrator=calibrator),
        ledger=ledger,
        executor="serial",
    )
    keep = set(servers) if servers is not None else None
    for feedback in events:
        if keep is None or feedback.server in keep:
            ledger.record(feedback)
    return service
