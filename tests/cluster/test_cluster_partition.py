"""Unit coverage for the partitioning and anti-entropy primitives."""

from __future__ import annotations

import pytest

from repro.cluster import HashRingView, MerkleTree
from repro.p2p.chord import key_of


class TestHashRingView:
    MEMBERS = [f"shard-{i:02d}" for i in range(5)]

    def test_members_come_back_in_ring_order(self):
        ring = HashRingView(self.MEMBERS, m_bits=32, replicas=3)
        ids = [key_of(name, 32) for name in ring.members]
        assert ids == sorted(ids)
        assert sorted(ring.members) == sorted(self.MEMBERS)

    def test_owner_is_first_member_clockwise(self):
        ring = HashRingView(self.MEMBERS, m_bits=32, replicas=3)
        for server in ("srv-a", "srv-b", "srv-c", "x" * 40):
            owner = ring.owner(server)
            key = key_of(server, 32)
            ids = sorted((key_of(m, 32), m) for m in self.MEMBERS)
            expected = next(
                (name for node_id, name in ids if node_id >= key), ids[0][1]
            )
            assert owner == expected

    def test_preference_list_is_distinct_successors(self):
        ring = HashRingView(self.MEMBERS, m_bits=32, replicas=3)
        pref = ring.preference_list("some-server")
        assert len(pref) == 3
        assert len(set(pref)) == 3
        assert pref[0] == ring.owner("some-server")
        # the K members are consecutive in ring order
        members = ring.members
        start = members.index(pref[0])
        expected = [members[(start + i) % len(members)] for i in range(3)]
        assert pref == expected

    def test_preference_list_caps_at_membership(self):
        ring = HashRingView(["a", "b"], m_bits=32, replicas=3)
        assert len(ring.preference_list("srv")) == 2

    def test_partition_groups_preserve_order(self):
        ring = HashRingView(self.MEMBERS, m_bits=32, replicas=2)
        servers = [f"srv-{i}" for i in range(50)]
        groups = ring.partition(servers)
        flattened = [s for group in groups.values() for s in group]
        assert sorted(flattened) == sorted(servers)
        for pref, group in groups.items():
            for server in group:
                assert tuple(ring.preference_list(server)) == pref
            # within-group order follows input order
            assert group == [s for s in servers if s in set(group)]

    def test_empty_membership_rejected(self):
        with pytest.raises(ValueError):
            HashRingView([], m_bits=32, replicas=3)


class TestMerkleTree:
    def _items(self, n, diverge=()):
        return [
            (f"srv-{i:03d}", f"digest-{i}x" if i in diverge else f"digest-{i}")
            for i in range(n)
        ]

    def test_equal_items_equal_roots(self):
        a = MerkleTree(self._items(40))
        b = MerkleTree(list(reversed(self._items(40))))
        assert a.root == b.root

    def test_any_divergence_changes_the_root(self):
        a = MerkleTree(self._items(40))
        b = MerkleTree(self._items(40, diverge={17}))
        assert a.root != b.root

    def test_descent_finds_exactly_the_divergent_servers(self):
        diverge = {3, 17, 38}
        a = MerkleTree(self._items(40), leaf_size=4)
        b = MerkleTree(self._items(40, diverge=diverge), leaf_size=4)
        found = set()
        queue = [()]
        while queue:
            path = queue.pop(0)
            node_a, node_b = a.node(path), b.node(path)
            if node_a["hash"] == node_b["hash"]:
                continue
            if node_a["leaf"]:
                items_a = dict(map(tuple, node_a["items"]))
                items_b = dict(map(tuple, node_b["items"]))
                for server in set(items_a) | set(items_b):
                    if items_a.get(server) != items_b.get(server):
                        found.add(server)
                continue
            for step, (ha, hb) in enumerate(
                zip(node_a["children"], node_b["children"])
            ):
                if ha != hb:
                    queue.append(path + (step,))
        assert found == {f"srv-{i:03d}" for i in diverge}

    def test_empty_group_has_a_root(self):
        tree = MerkleTree([])
        assert tree.root == MerkleTree([]).root
        node = tree.node(())
        assert node["leaf"] is True
        assert node["items"] == []

    def test_bad_paths_raise(self):
        tree = MerkleTree(self._items(4), leaf_size=8)  # single leaf
        with pytest.raises(KeyError):
            tree.node((0,))  # descends below the root leaf
        big = MerkleTree(self._items(64), leaf_size=4)
        with pytest.raises(KeyError):
            big.node((2,))
