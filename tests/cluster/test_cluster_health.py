"""Cluster observability: health report, event summary, fleet topology."""

from __future__ import annotations

from repro import obs
from repro.obs.events import EventLog
from repro.resilience import runtime as res
from repro.resilience.health import (
    GLOBAL_HEALTH,
    health_report,
    render_health,
    summarize_events,
)

from .conftest import corpus, make_cluster


class TestHealthReport:
    def test_cluster_section_in_report_and_rendering(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster(name="unit-cluster")
        cluster.record_batch(events)
        report = health_report()
        clusters = report["clusters"]
        assert [c["name"] for c in clusters] == ["unit-cluster"]
        row = clusters[0]
        assert row["nodes"] == row["alive"] == 5
        assert row["replicas"] == 3 and row["read_quorum"] == 2
        assert row["servers"] == len(cluster.servers)
        assert sum(row["ownership"].values()) == row["servers"]
        assert row["replication"]["violated"] == 0
        rendered = render_health(report)
        assert "unit-cluster" in rendered
        assert "replication: satisfied=" in rendered
        assert "ownership:" in rendered

    def test_kill_and_hints_show_up(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster(name="unit-cluster")
        cluster.record_batch(events)
        victim = cluster.members[0]
        cluster.kill(victim)
        base = max(fb.time for fb in events) + 1.0
        from repro.feedback.records import Feedback

        more = [
            Feedback(
                time=base + i * 0.001,
                server=fb.server,
                client=fb.client,
                rating=fb.rating,
            )
            for i, fb in enumerate(corpus(n_per_kind=1, n_events=2, seed=9))
        ]
        cluster.record_batch(more)
        report = health_report()
        row = report["clusters"][0]
        assert row["alive"] == 4
        assert row["open_hints"] == report["open_hints"] == cluster.open_hints()
        if cluster.open_hints():
            assert row["replication"]["violated"] > 0

    def test_dead_cluster_drops_out_of_the_registry(self):
        cluster = make_cluster()
        assert len(health_report()["clusters"]) == 1
        del cluster
        assert health_report()["clusters"] == []
        GLOBAL_HEALTH.clear()


class TestEventSummary:
    def test_cluster_events_are_counted(self):
        events = corpus(n_per_kind=1)
        cluster = make_cluster()
        cluster.record_batch(events)
        log = EventLog()
        with res.activate(None, log):
            victim = cluster.members[0]
            cluster.kill(victim)
            cluster.anti_entropy()
            cluster.recover(victim)
        summary = summarize_events(log.events)
        assert summary["events"].get("cluster_anti_entropy") == 1
        assert summary["events"].get("cluster_node_recovered") == 1
        assert summary["events"].get("node_killed") == 1


class TestFleetTopology:
    def test_topology_snapshot_and_check_ring_accept_the_cluster(self):
        cluster = make_cluster()
        topology = obs.topology_snapshot(cluster.ring)
        assert topology["n_nodes"] == 5
        assert topology["replicas"] == 3
        names = [n["name"] for n in topology["nodes"]]
        assert sorted(names) == sorted(cluster.members)
        verdict = obs.check_ring(cluster.ring)
        assert verdict["ok"], verdict

    def test_killed_nodes_leave_the_topology_view(self):
        cluster = make_cluster()
        cluster.kill(cluster.members[0])
        topology = obs.topology_snapshot(cluster.ring)
        assert topology["n_nodes"] == 4
