"""API-hygiene meta-tests: documentation, exports, and deprecations.

A library deliverable is its public surface; these tests keep it honest:
every public item is documented, every ``__all__`` name resolves, the
subpackages export what their ``__init__`` promises, and deprecated
entry points warn exactly once while no in-repo code still uses them.
"""

import importlib
import inspect
import pathlib
import re
import warnings

import pytest

PACKAGES = [
    "repro",
    "repro.stats",
    "repro.feedback",
    "repro.trust",
    "repro.core",
    "repro.adversary",
    "repro.simulation",
    "repro.p2p",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
    "repro.resilience",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_module_has_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_no_duplicate_exports(self, package_name):
        module = importlib.import_module(package_name)
        assert len(module.__all__) == len(set(module.__all__))

    def test_public_classes_and_functions_documented(self, package_name):
        module = importlib.import_module(package_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: undocumented {undocumented}"


def _documented_somewhere(cls, method_name: str) -> bool:
    """Is the method documented on the class or any base it implements?

    Overriding a documented interface method (TrustTracker.update,
    ServerBehavior.next_outcome, ...) does not require restating the
    contract — that would be noise, not documentation.
    """
    for base in cls.__mro__:
        candidate = base.__dict__.get(method_name)
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    # typing.Protocol bases are not always in __mro__ views of functions;
    # check declared protocol parents explicitly
    for base in getattr(cls, "__bases__", ()):
        candidate = getattr(base, method_name, None)
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    return False


class TestPublicMethodDocs:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_methods_documented(self, package_name):
        module = importlib.import_module(package_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited; documented on the parent
                if not _documented_somewhere(obj, method_name):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{package_name}: undocumented {sorted(set(undocumented))}"


class TestTimingHygiene:
    """Span/heartbeat *durations* must come from ``time.perf_counter()``.

    ``time.time()`` jumps under NTP slews and has coarse resolution on
    some platforms, so it is banned from duration math. The allowlist
    below names the only legitimate wall-clock reads left in the tree —
    each is a *timestamp* (when did this happen), never a delta.
    """

    # relative path under src/repro -> max permitted time.time() reads
    WALL_CLOCK_ALLOWLIST = {
        "obs/context.py": 1,  # _ANCHOR_WALL: per-process anchor pairing
        "obs/events.py": 2,  # run_metadata + event record timestamps
        "obs/monitor.py": 1,  # dashboard staleness vs. "now"
        "resilience/runtime.py": 1,  # flight-recorder record timestamp
        "experiments/p2p_scale.py": 3,  # fleet TSDB snapshot timestamps
    }

    def test_wall_clock_reads_confined_to_timestamp_allowlist(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = {}
        for path in sorted(src.rglob("*.py")):
            count = path.read_text(encoding="utf-8").count("time.time()")
            if count:
                offenders[str(path.relative_to(src))] = count
        unexpected = {
            name: count
            for name, count in offenders.items()
            if count > self.WALL_CLOCK_ALLOWLIST.get(name, 0)
        }
        assert not unexpected, (
            f"new time.time() reads in {unexpected}: use time.perf_counter() "
            "for durations; extend the allowlist only for pure timestamps"
        )


class TestDeprecations:
    """Deprecated entry points warn exactly once and are internally unused.

    The reader/ledger API redesign left compatibility shims behind
    (``read_feedback_csv``/``read_feedback_jsonl``, positional-quarantine
    ``FeedbackLedger``).  Each must emit exactly one
    :class:`DeprecationWarning` per call and still delegate correctly —
    and no in-repo code may call them, so a clean checkout runs
    warning-free.
    """

    @staticmethod
    def _deprecations(caught):
        return [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def _csv(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text(
            "time,server,client,rating\n1.0,s1,c1,1\n2.0,s1,c2,0\n",
            encoding="utf-8",
        )
        return str(path)

    def test_read_feedback_csv_warns_exactly_once(self, tmp_path):
        from repro.feedback import io

        path = self._csv(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = io.read_feedback_csv(path)
        (warning,) = self._deprecations(caught)
        assert 'read(path, format="csv")' in str(warning.message)
        assert result == io.read(path, format="csv")

    def test_read_feedback_jsonl_warns_exactly_once(self, tmp_path):
        from repro.feedback import io

        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"time": 1.0, "server": "s1", "client": "c1", "rating": 1}\n',
            encoding="utf-8",
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = io.read_feedback_jsonl(str(path))
        (warning,) = self._deprecations(caught)
        assert 'read(path, format="jsonl")' in str(warning.message)
        assert result == io.read(str(path), format="jsonl")

    def test_positional_quarantine_warns_exactly_once(self):
        from repro.feedback.ledger import FeedbackLedger
        from repro.resilience import Quarantine

        quarantine = Quarantine(name="legacy")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ledger = FeedbackLedger(quarantine)
        (warning,) = self._deprecations(caught)
        assert "positionally" in str(warning.message)
        assert ledger.quarantine is quarantine

    def test_keyword_paths_do_not_warn(self, tmp_path):
        from repro.feedback import io
        from repro.feedback.ledger import FeedbackLedger
        from repro.resilience import Quarantine

        path = self._csv(tmp_path)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            io.read(path, format="csv")
            io.read(path)  # auto-detection
            FeedbackLedger(quarantine=Quarantine(name="kw"))
            FeedbackLedger(backend="columnar")
        assert not self._deprecations(caught)

    # a call looks like ``name(`` — definitions, docstrings, and the
    # ``read(path, format=...)`` replacements they recommend do not match
    _DEPRECATED_CALLS = re.compile(
        r"(?<!def )\b(read_feedback_csv|read_feedback_jsonl)\s*\("
    )
    _POSITIONAL_LEDGER = re.compile(
        r"\bFeedbackLedger\s*\(\s*(?!\s*\)|\s*\*|\s*\w+\s*=)"
    )

    def test_no_in_repo_callers_of_deprecated_readers(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.relative_to(src) == pathlib.Path("feedback/io.py"):
                continue  # the shims (and their warning text) live here
            text = path.read_text(encoding="utf-8")
            for match in self._DEPRECATED_CALLS.finditer(text):
                offenders.append(f"{path.relative_to(src)}: {match.group(0)}")
        assert not offenders, f"in-repo deprecated reader calls: {offenders}"

    def test_no_in_repo_positional_ledger_construction(self):
        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            for i, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if self._POSITIONAL_LEDGER.search(line):
                    offenders.append(f"{path.relative_to(src)}:{i}: {line.strip()}")
        assert not offenders, (
            f"positional FeedbackLedger(...) construction in repo: {offenders}"
        )
