"""API-hygiene meta-tests: documentation and export consistency.

A library deliverable is its public surface; these tests keep it honest:
every public item is documented, every ``__all__`` name resolves, and
the subpackages export what their ``__init__`` promises.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.stats",
    "repro.feedback",
    "repro.trust",
    "repro.core",
    "repro.adversary",
    "repro.simulation",
    "repro.p2p",
    "repro.analysis",
    "repro.experiments",
    "repro.obs",
    "repro.resilience",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestExports:
    def test_module_has_docstring(self, package_name):
        module = importlib.import_module(package_name)
        assert module.__doc__ and module.__doc__.strip()

    def test_all_names_resolve(self, package_name):
        module = importlib.import_module(package_name)
        assert hasattr(module, "__all__"), f"{package_name} lacks __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package_name}.{name} missing"

    def test_no_duplicate_exports(self, package_name):
        module = importlib.import_module(package_name)
        assert len(module.__all__) == len(set(module.__all__))

    def test_public_classes_and_functions_documented(self, package_name):
        module = importlib.import_module(package_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"{package_name}: undocumented {undocumented}"


def _documented_somewhere(cls, method_name: str) -> bool:
    """Is the method documented on the class or any base it implements?

    Overriding a documented interface method (TrustTracker.update,
    ServerBehavior.next_outcome, ...) does not require restating the
    contract — that would be noise, not documentation.
    """
    for base in cls.__mro__:
        candidate = base.__dict__.get(method_name)
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    # typing.Protocol bases are not always in __mro__ views of functions;
    # check declared protocol parents explicitly
    for base in getattr(cls, "__bases__", ()):
        candidate = getattr(base, method_name, None)
        doc = getattr(candidate, "__doc__", None)
        if doc and doc.strip():
            return True
    return False


class TestPublicMethodDocs:
    @pytest.mark.parametrize("package_name", PACKAGES)
    def test_public_methods_documented(self, package_name):
        module = importlib.import_module(package_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != obj.__name__:
                    continue  # inherited; documented on the parent
                if not _documented_somewhere(obj, method_name):
                    undocumented.append(f"{name}.{method_name}")
        assert not undocumented, f"{package_name}: undocumented {sorted(set(undocumented))}"


class TestTimingHygiene:
    """Span/heartbeat *durations* must come from ``time.perf_counter()``.

    ``time.time()`` jumps under NTP slews and has coarse resolution on
    some platforms, so it is banned from duration math. The allowlist
    below names the only legitimate wall-clock reads left in the tree —
    each is a *timestamp* (when did this happen), never a delta.
    """

    # relative path under src/repro -> max permitted time.time() reads
    WALL_CLOCK_ALLOWLIST = {
        "obs/context.py": 1,  # _ANCHOR_WALL: per-process anchor pairing
        "obs/events.py": 2,  # run_metadata + event record timestamps
        "obs/monitor.py": 1,  # dashboard staleness vs. "now"
        "resilience/runtime.py": 1,  # flight-recorder record timestamp
        "experiments/p2p_scale.py": 3,  # fleet TSDB snapshot timestamps
    }

    def test_wall_clock_reads_confined_to_timestamp_allowlist(self):
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = {}
        for path in sorted(src.rglob("*.py")):
            count = path.read_text(encoding="utf-8").count("time.time()")
            if count:
                offenders[str(path.relative_to(src))] = count
        unexpected = {
            name: count
            for name, count in offenders.items()
            if count > self.WALL_CLOCK_ALLOWLIST.get(name, 0)
        }
        assert not unexpected, (
            f"new time.time() reads in {unexpected}: use time.perf_counter() "
            "for durations; extend the allowlist only for pure timestamps"
        )
