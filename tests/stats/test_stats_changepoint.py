"""Tests for repro.stats.changepoint."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import generate_honest_outcomes
from repro.stats.changepoint import (
    Segment,
    bernoulli_segment_cost,
    detect_change_points,
    segment_sequence,
)


class TestSegmentCost:
    def test_degenerate_segments_cost_zero(self):
        assert bernoulli_segment_cost(0, 100) == 0.0
        assert bernoulli_segment_cost(100, 100) == 0.0
        assert bernoulli_segment_cost(0, 0) == 0.0

    def test_maximal_at_half(self):
        # entropy is maximal at p = 0.5
        assert bernoulli_segment_cost(50, 100) > bernoulli_segment_cost(90, 100)

    def test_known_value(self):
        # n * H(0.5) = 100 * ln 2
        assert bernoulli_segment_cost(50, 100) == pytest.approx(100 * np.log(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            bernoulli_segment_cost(5, 4)
        with pytest.raises(ValueError):
            bernoulli_segment_cost(-1, 4)


class TestDetection:
    def test_single_clear_change_found(self):
        seq = np.concatenate(
            [
                generate_honest_outcomes(500, 0.95, seed=1),
                generate_honest_outcomes(500, 0.70, seed=2),
            ]
        )
        cps = detect_change_points(seq)
        assert len(cps) == 1
        assert abs(cps[0] - 500) < 60

    def test_two_changes_found(self):
        seq = np.concatenate(
            [
                generate_honest_outcomes(400, 0.95, seed=3),
                generate_honest_outcomes(400, 0.60, seed=4),
                generate_honest_outcomes(400, 0.90, seed=5),
            ]
        )
        cps = detect_change_points(seq)
        assert len(cps) == 2
        assert abs(cps[0] - 400) < 80
        assert abs(cps[1] - 800) < 80

    @pytest.mark.parametrize("p", [0.95, 0.9, 0.5])
    def test_stationary_sequence_not_split(self, p):
        false_splits = sum(
            bool(detect_change_points(generate_honest_outcomes(1000, p, seed=s)))
            for s in range(10)
        )
        assert false_splits <= 1  # conservative penalty: rare false positives

    def test_short_sequence_never_split(self):
        assert detect_change_points(np.ones(80, dtype=np.int8)) == []

    def test_min_segment_respected(self):
        seq = np.concatenate(
            [np.ones(60, dtype=np.int8), np.zeros(500, dtype=np.int8)]
        )
        cps = detect_change_points(seq, min_segment=100)
        assert all(cp >= 100 and cp <= seq.size - 100 for cp in cps)

    def test_penalty_scale_controls_sensitivity(self):
        seq = np.concatenate(
            [
                generate_honest_outcomes(300, 0.92, seed=6),
                generate_honest_outcomes(300, 0.84, seed=7),
            ]
        )
        lenient = detect_change_points(seq, penalty_scale=0.5)
        strict = detect_change_points(seq, penalty_scale=20.0)
        assert len(lenient) >= len(strict)

    def test_validation(self):
        with pytest.raises(ValueError):
            detect_change_points(np.array([0, 2, 1]))
        with pytest.raises(ValueError):
            detect_change_points(np.ones((2, 3)))
        with pytest.raises(ValueError):
            detect_change_points(np.ones(100, dtype=np.int8), min_segment=1)
        with pytest.raises(ValueError):
            detect_change_points(np.ones(100, dtype=np.int8), penalty_scale=0)


class TestSegmentSequence:
    def test_segments_partition_the_sequence(self):
        seq = np.concatenate(
            [
                generate_honest_outcomes(500, 0.95, seed=8),
                generate_honest_outcomes(500, 0.65, seed=9),
            ]
        )
        segments = segment_sequence(seq)
        assert segments[0].start == 0
        assert segments[-1].end == seq.size
        for left, right in zip(segments, segments[1:]):
            assert left.end == right.start

    def test_segment_rates_match_regimes(self):
        seq = np.concatenate(
            [
                generate_honest_outcomes(600, 0.95, seed=10),
                generate_honest_outcomes(600, 0.70, seed=11),
            ]
        )
        segments = segment_sequence(seq)
        assert len(segments) == 2
        assert segments[0].p_hat == pytest.approx(0.95, abs=0.04)
        assert segments[1].p_hat == pytest.approx(0.70, abs=0.05)

    def test_stationary_gives_single_segment(self):
        seq = generate_honest_outcomes(800, 0.9, seed=12)
        segments = segment_sequence(seq)
        assert len(segments) == 1
        assert segments[0] == Segment(0, 800, p_hat=float(seq.mean()))

    def test_segment_length_property(self):
        assert Segment(10, 25, 0.5).length == 15

    @given(
        p=st.floats(min_value=0.1, max_value=0.9),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_segments_cover_everything_once(self, p, seed):
        seq = generate_honest_outcomes(300, p, seed=seed)
        segments = segment_sequence(seq, min_segment=50)
        covered = sum(s.length for s in segments)
        assert covered == 300
