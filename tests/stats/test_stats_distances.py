"""Tests for repro.stats.distances."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.distances import (
    DISTANCES,
    chi_square_statistic,
    get_distance,
    ks_distance,
    l1_distance,
    l2_distance,
    total_variation,
)


def _pmf_strategy(size=6):
    return (
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
        .filter(lambda xs: sum(xs) > 0)
        .map(lambda xs: np.asarray(xs) / np.sum(xs))
    )


class TestL1:
    def test_identical_is_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert l1_distance(p, p) == 0.0

    def test_disjoint_is_two(self):
        assert l1_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert l1_distance([0.5, 0.5], [0.25, 0.75]) == pytest.approx(0.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            l1_distance([0.5, 0.5], [1.0])

    def test_requires_1d(self):
        with pytest.raises(ValueError):
            l1_distance(np.eye(2), np.eye(2))

    @given(p=_pmf_strategy(), q=_pmf_strategy())
    def test_property_symmetric_and_bounded(self, p, q):
        d = l1_distance(p, q)
        assert d == pytest.approx(l1_distance(q, p))
        assert 0.0 <= d <= 2.0 + 1e-9

    @given(p=_pmf_strategy(), q=_pmf_strategy(), r=_pmf_strategy())
    def test_property_triangle_inequality(self, p, q, r):
        assert l1_distance(p, r) <= l1_distance(p, q) + l1_distance(q, r) + 1e-9


class TestOthers:
    def test_tv_is_half_l1(self):
        p = np.array([0.1, 0.4, 0.5])
        q = np.array([0.3, 0.3, 0.4])
        assert total_variation(p, q) == pytest.approx(0.5 * l1_distance(p, q))

    def test_l2_known_value(self):
        assert l2_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(np.sqrt(2))

    def test_ks_known_value(self):
        # cdf gaps: |0.5-0.25| = 0.25 at the first point
        assert ks_distance([0.5, 0.5], [0.25, 0.75]) == pytest.approx(0.25)

    def test_chi2_zero_on_identical(self):
        p = np.array([0.2, 0.8])
        assert chi_square_statistic(p, p) == pytest.approx(0.0)

    def test_chi2_finite_on_zero_reference(self):
        value = chi_square_statistic([0.5, 0.5], [1.0, 0.0])
        assert np.isfinite(value)
        assert value > 1e6  # huge, but usable in threshold comparisons

    @given(p=_pmf_strategy(), q=_pmf_strategy())
    def test_property_ks_bounded_by_tv(self, p, q):
        # KS distance never exceeds total variation
        assert ks_distance(p, q) <= total_variation(p, q) + 1e-9

    @given(p=_pmf_strategy(), q=_pmf_strategy())
    def test_property_all_nonnegative(self, p, q):
        for fn in DISTANCES.values():
            assert fn(p, q) >= 0.0


class TestRegistry:
    def test_lookup(self):
        assert get_distance("l1") is l1_distance

    def test_all_registered(self):
        assert set(DISTANCES) == {"l1", "tv", "l2", "ks", "chi2"}

    def test_unknown_raises_with_choices(self):
        with pytest.raises(KeyError, match="l1"):
            get_distance("wasserstein")
