"""Tests for repro.stats.binomial."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats.binomial import (
    BinomialDistribution,
    binomial_cdf,
    binomial_pmf,
    estimate_p,
    sample_window_counts,
)


class TestBinomialPmf:
    def test_length_and_normalization(self):
        pmf = binomial_pmf(10, 0.3)
        assert pmf.shape == (11,)
        assert pmf.sum() == pytest.approx(1.0)

    def test_matches_scipy(self):
        for m, p in [(5, 0.5), (10, 0.9), (25, 0.07), (100, 0.42)]:
            expected = sps.binom.pmf(np.arange(m + 1), m, p)
            np.testing.assert_allclose(binomial_pmf(m, p), expected, atol=1e-12)

    def test_large_m_uses_scipy_path(self):
        m = 1000
        pmf = binomial_pmf(m, 0.95)
        assert pmf.shape == (m + 1,)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    def test_degenerate_p_zero(self):
        pmf = binomial_pmf(8, 0.0)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_degenerate_p_one(self):
        pmf = binomial_pmf(8, 1.0)
        assert pmf[8] == 1.0
        assert pmf[:8].sum() == 0.0

    def test_symmetry_at_half(self):
        pmf = binomial_pmf(9, 0.5)
        np.testing.assert_allclose(pmf, pmf[::-1], atol=1e-12)

    @pytest.mark.parametrize("bad_m", [0, -1, 2.5, "10"])
    def test_invalid_m(self, bad_m):
        with pytest.raises(ValueError):
            binomial_pmf(bad_m, 0.5)

    @pytest.mark.parametrize("bad_p", [-0.1, 1.1, np.nan])
    def test_invalid_p(self, bad_p):
        with pytest.raises(ValueError):
            binomial_pmf(10, bad_p)

    @given(
        m=st.integers(min_value=1, max_value=60),
        p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_property_valid_pmf(self, m, p):
        pmf = binomial_pmf(m, p)
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0, abs=1e-9)

    @given(
        m=st.integers(min_value=1, max_value=40),
        p=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_property_mean(self, m, p):
        pmf = binomial_pmf(m, p)
        mean = float(np.arange(m + 1) @ pmf)
        assert mean == pytest.approx(m * p, rel=1e-6)


class TestBinomialCdf:
    def test_monotone_and_terminal(self):
        cdf = binomial_cdf(12, 0.4)
        assert (np.diff(cdf) >= -1e-15).all()
        assert cdf[-1] == 1.0

    def test_consistent_with_pmf(self):
        m, p = 7, 0.65
        np.testing.assert_allclose(
            binomial_cdf(m, p), np.cumsum(binomial_pmf(m, p)), atol=1e-12
        )


class TestSampling:
    def test_shape_and_support(self):
        counts = sample_window_counts(10, 0.9, 500, seed=1)
        assert counts.shape == (500,)
        assert counts.min() >= 0 and counts.max() <= 10

    def test_deterministic_by_seed(self):
        a = sample_window_counts(10, 0.5, 20, seed=4)
        b = sample_window_counts(10, 0.5, 20, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_empirical_mean_near_expectation(self):
        counts = sample_window_counts(10, 0.9, 20_000, seed=2)
        assert counts.mean() == pytest.approx(9.0, abs=0.05)

    def test_zero_draws(self):
        assert sample_window_counts(10, 0.5, 0).size == 0

    def test_negative_k_raises(self):
        with pytest.raises(ValueError):
            sample_window_counts(10, 0.5, -1)


class TestEstimateP:
    def test_exact_value(self):
        # 3 windows of size 4 with counts 4, 2, 3 -> 9/12
        assert estimate_p(np.array([4, 2, 3]), 4) == pytest.approx(0.75)

    def test_recovers_generator_rate(self):
        counts = sample_window_counts(10, 0.87, 10_000, seed=3)
        assert estimate_p(counts, 10) == pytest.approx(0.87, abs=0.01)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_p(np.array([]), 10)

    def test_out_of_range_counts_raise(self):
        with pytest.raises(ValueError):
            estimate_p(np.array([11]), 10)
        with pytest.raises(ValueError):
            estimate_p(np.array([-1]), 10)

    @given(
        counts=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=50)
    )
    def test_property_in_unit_interval(self, counts):
        assert 0.0 <= estimate_p(np.asarray(counts), 10) <= 1.0


class TestBinomialDistribution:
    def test_moments(self):
        dist = BinomialDistribution(10, 0.9)
        assert dist.mean == pytest.approx(9.0)
        assert dist.variance == pytest.approx(0.9)

    def test_pmf_cdf_sample_consistent(self):
        dist = BinomialDistribution(6, 0.4)
        np.testing.assert_allclose(dist.pmf(), binomial_pmf(6, 0.4))
        np.testing.assert_allclose(dist.cdf(), binomial_cdf(6, 0.4))
        np.testing.assert_array_equal(
            dist.sample(5, seed=8), sample_window_counts(6, 0.4, 5, seed=8)
        )

    def test_hashable_for_caching(self):
        assert {BinomialDistribution(10, 0.9): "x"}[BinomialDistribution(10, 0.9)] == "x"

    def test_validation(self):
        with pytest.raises(ValueError):
            BinomialDistribution(0, 0.5)
        with pytest.raises(ValueError):
            BinomialDistribution(10, 1.5)
