"""Tests for repro.stats.hypothesis (classical tests)."""

import numpy as np
import pytest

from repro.stats.binomial import sample_window_counts
from repro.stats.hypothesis import (
    TestOutcome,
    block_frequency_test,
    chi_square_gof_test,
    exact_binomial_test,
    runs_test,
)


class TestOutcomeSemantics:
    def test_passed_threshold(self):
        assert TestOutcome(0.0, p_value=0.05, alpha=0.05).passed
        assert not TestOutcome(0.0, p_value=0.049, alpha=0.05).passed


class TestExactBinomial:
    def test_consistent_sample_passes(self):
        outcome = exact_binomial_test(95, 100, 0.95)
        assert outcome.passed

    def test_inconsistent_sample_fails(self):
        outcome = exact_binomial_test(50, 100, 0.95)
        assert not outcome.passed
        assert outcome.p_value < 1e-10

    def test_validation(self):
        with pytest.raises(ValueError):
            exact_binomial_test(5, 4, 0.5)
        with pytest.raises(ValueError):
            exact_binomial_test(1, 4, 1.5)


class TestChiSquareGof:
    def test_honest_windows_pass(self):
        counts = sample_window_counts(10, 0.9, 200, seed=1)
        assert chi_square_gof_test(counts, 10, 0.9).passed

    def test_wrong_p_fails(self):
        counts = sample_window_counts(10, 0.9, 200, seed=1)
        assert not chi_square_gof_test(counts, 10, 0.5).passed

    def test_constant_windows_fail(self):
        # every window exactly 9/10: far too concentrated for B(10, 0.9)
        counts = np.full(100, 9)
        assert not chi_square_gof_test(counts, 10, 0.9).passed

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            chi_square_gof_test(np.array([], dtype=int), 10, 0.9)


class TestRunsTest:
    def test_random_sequences_mostly_pass(self):
        # alpha = 0.05, so individual random sequences fail ~5% of the time;
        # assert the aggregate false-positive rate instead of one draw.
        rng = np.random.default_rng(0)
        passes = sum(
            runs_test((rng.random(2000) < 0.5).astype(int)).passed
            for _ in range(40)
        )
        assert passes >= 34  # ~5% expected failures, allow slack

    def test_clumped_sequence_fails(self):
        # all bad transactions at the end (hibernating pattern): too few runs
        seq = np.concatenate([np.ones(500, dtype=int), np.zeros(500, dtype=int)])
        assert not runs_test(seq).passed

    def test_alternating_sequence_fails(self):
        # strictly alternating: far too many runs
        seq = np.tile([0, 1], 500)
        assert not runs_test(seq).passed

    def test_constant_sequence_degenerate_pass(self):
        assert runs_test(np.ones(50, dtype=int)).passed

    def test_too_short_raises(self):
        with pytest.raises(ValueError):
            runs_test(np.array([1]))

    def test_non_binary_raises(self):
        with pytest.raises(ValueError):
            runs_test(np.array([0, 2, 1]))


class TestBlockFrequency:
    def test_honest_sequence_passes(self):
        rng = np.random.default_rng(5)
        seq = (rng.random(1000) < 0.95).astype(int)
        assert block_frequency_test(seq, 10).passed

    def test_burst_sequence_fails(self):
        seq = np.concatenate([np.ones(900, dtype=int), np.zeros(100, dtype=int)])
        assert not block_frequency_test(seq, 10).passed

    def test_degenerate_constant_passes(self):
        assert block_frequency_test(np.ones(100, dtype=int), 10).passed

    def test_short_sequence_raises(self):
        with pytest.raises(ValueError):
            block_frequency_test(np.ones(5, dtype=int), 10)

    def test_invalid_block_size(self):
        with pytest.raises(ValueError):
            block_frequency_test(np.ones(100, dtype=int), 0)
