"""Tests for repro.stats.confidence (binomial-proportion intervals)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.feedback.history import TransactionHistory
from repro.stats.confidence import (
    TrustEstimate,
    clopper_pearson_interval,
    trust_with_confidence,
    wilson_interval,
)


class TestWilson:
    def test_contains_point_estimate(self):
        lower, upper = wilson_interval(95, 100)
        assert lower < 0.95 < upper

    def test_narrows_with_evidence(self):
        narrow = wilson_interval(950, 1000)
        wide = wilson_interval(95, 100)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_extreme_proportions_stay_in_unit_interval(self):
        lower, upper = wilson_interval(100, 100)
        assert 0.0 <= lower <= upper <= 1.0
        lower, upper = wilson_interval(0, 100)
        assert 0.0 <= lower <= upper <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 0)
        with pytest.raises(ValueError):
            wilson_interval(6, 5)
        with pytest.raises(ValueError):
            wilson_interval(5, 10, confidence=1.0)

    @given(
        n=st.integers(min_value=1, max_value=500),
        good=st.integers(min_value=0, max_value=500),
        confidence=st.floats(min_value=0.5, max_value=0.999),
    )
    def test_property_valid_interval(self, n, good, confidence):
        good = min(good, n)
        lower, upper = wilson_interval(good, n, confidence)
        assert 0.0 <= lower <= upper <= 1.0
        assert lower <= good / n + 1e-12
        assert upper >= good / n - 1e-12


class TestClopperPearson:
    def test_exact_coverage_property(self):
        # CP is conservative: empirical coverage >= nominal
        rng = np.random.default_rng(1)
        p, n, trials = 0.9, 50, 400
        covered = 0
        for _ in range(trials):
            good = int(rng.binomial(n, p))
            lower, upper = clopper_pearson_interval(good, n, 0.9)
            covered += lower <= p <= upper
        assert covered / trials >= 0.9

    def test_wider_than_wilson(self):
        wilson = wilson_interval(90, 100)
        cp = clopper_pearson_interval(90, 100)
        assert (cp[1] - cp[0]) >= (wilson[1] - wilson[0]) - 1e-9

    def test_degenerate_edges(self):
        assert clopper_pearson_interval(0, 20)[0] == 0.0
        assert clopper_pearson_interval(20, 20)[1] == 1.0


class TestTrustWithConfidence:
    def test_short_perfect_history_not_confidently_trusted(self):
        # the paper's "short histories are high-risk" point, quantified:
        # 10/10 good transactions do NOT establish >= 0.9 trust at 95%
        estimate = trust_with_confidence(np.ones(10, dtype=int))
        assert estimate.point == 1.0
        assert not estimate.confidently_above(0.9)

    def test_long_good_history_confidently_trusted(self):
        outcomes = np.ones(500, dtype=int)
        outcomes[::50] = 0  # 2% failures
        estimate = trust_with_confidence(outcomes)
        assert estimate.confidently_above(0.9)

    def test_accepts_history_object(self):
        history = TransactionHistory.from_outcomes([1] * 60 + [0] * 4)
        estimate = trust_with_confidence(history)
        assert estimate.n == 64
        assert estimate.point == pytest.approx(60 / 64)

    def test_methods_agree_on_ordering(self):
        wilson = trust_with_confidence(np.ones(30, dtype=int), method="wilson")
        cp = trust_with_confidence(np.ones(30, dtype=int), method="clopper-pearson")
        assert cp.lower <= wilson.lower  # CP is more conservative

    def test_width(self):
        estimate = TrustEstimate(point=0.9, lower=0.85, upper=0.94, n=100, confidence=0.95)
        assert estimate.width == pytest.approx(0.09)

    def test_validation(self):
        with pytest.raises(ValueError):
            trust_with_confidence(np.array([], dtype=int))
        with pytest.raises(ValueError):
            trust_with_confidence(np.ones(5, dtype=int), method="bayes")
