"""Tests for repro.stats.empirical."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.empirical import IncrementalHistogram, counts_histogram, empirical_pmf


class TestCountsHistogram:
    def test_basic(self):
        hist = counts_histogram([0, 1, 1, 3], 5)
        np.testing.assert_array_equal(hist, [1, 2, 0, 1, 0])

    def test_empty(self):
        np.testing.assert_array_equal(counts_histogram([], 3), [0, 0, 0])

    def test_out_of_support_raises(self):
        with pytest.raises(ValueError):
            counts_histogram([5], 5)
        with pytest.raises(ValueError):
            counts_histogram([-1], 5)

    @given(st.lists(st.integers(min_value=0, max_value=10), max_size=100))
    def test_property_total_preserved(self, samples):
        hist = counts_histogram(samples, 11)
        assert hist.sum() == len(samples)


class TestEmpiricalPmf:
    def test_normalized(self):
        pmf = empirical_pmf([2, 2, 4], 5)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[2] == pytest.approx(2 / 3)

    def test_zero_samples_raise(self):
        with pytest.raises(ValueError):
            empirical_pmf([], 4)

    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=60))
    def test_property_valid_pmf(self, samples):
        pmf = empirical_pmf(samples, 8)
        assert (pmf >= 0).all()
        assert pmf.sum() == pytest.approx(1.0)


class TestIncrementalHistogram:
    def test_add_and_pmf(self):
        hist = IncrementalHistogram(4)
        for v in (0, 1, 1, 3):
            hist.add(v)
        assert hist.n_samples == 4
        assert hist.total_value == 5
        np.testing.assert_allclose(hist.pmf(), [0.25, 0.5, 0.0, 0.25])

    def test_add_block_matches_add(self):
        a = IncrementalHistogram(11)
        b = IncrementalHistogram(11)
        values = np.random.default_rng(0).integers(0, 11, size=200)
        a.add_many(values)
        b.add_block(values)
        np.testing.assert_array_equal(a.histogram(), b.histogram())
        assert a.total_value == b.total_value
        assert a.n_samples == b.n_samples

    def test_add_block_empty_noop(self):
        hist = IncrementalHistogram(3)
        hist.add_block(np.array([], dtype=np.int64))
        assert hist.n_samples == 0

    def test_mean_rate(self):
        hist = IncrementalHistogram(11)
        hist.add_many([9, 10, 8, 9])  # 36 goods over 4 windows of 10
        assert hist.mean_rate(10) == pytest.approx(0.9)

    def test_out_of_support_raises(self):
        hist = IncrementalHistogram(4)
        with pytest.raises(ValueError):
            hist.add(4)
        with pytest.raises(ValueError):
            hist.add(-1)
        with pytest.raises(ValueError):
            hist.add_block(np.array([4]))

    def test_pmf_on_empty_raises(self):
        with pytest.raises(ValueError):
            IncrementalHistogram(4).pmf()
        with pytest.raises(ValueError):
            IncrementalHistogram(4).mean_rate(10)

    def test_histogram_returns_copy(self):
        hist = IncrementalHistogram(3)
        hist.add(1)
        snapshot = hist.histogram()
        hist.add(1)
        assert snapshot[1] == 1.0  # unchanged

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            IncrementalHistogram(0)

    @given(
        st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=80)
    )
    def test_property_matches_batch_histogram(self, values):
        hist = IncrementalHistogram(11)
        hist.add_many(values)
        np.testing.assert_array_equal(hist.histogram(), counts_histogram(values, 11))
