"""Tests for repro.stats.sequences (NIST-style randomness tests)."""

import numpy as np
import pytest

from repro.core.model import generate_honest_outcomes
from repro.stats.sequences import approximate_entropy_test, cusum_test, serial_test

ALL_TESTS = [serial_test, approximate_entropy_test, cusum_test]


def _honest(n=1000, p=0.95, seed=1):
    return generate_honest_outcomes(n, p, seed=seed)


def _periodic(n=1000):
    return np.tile([0] + [1] * 9, n // 10)


def _hibernating(n=1000, bads=50):
    return np.concatenate(
        [np.ones(n - bads, dtype=np.int8), np.zeros(bads, dtype=np.int8)]
    )


class TestHonestBehavior:
    @pytest.mark.parametrize("test_fn", ALL_TESTS, ids=lambda f: f.__name__)
    def test_honest_sequences_mostly_pass(self, test_fn):
        passes = sum(
            test_fn(_honest(seed=100 + s)).passed for s in range(30)
        )
        assert passes >= 25  # ~5% rejection expected at alpha = 0.05

    @pytest.mark.parametrize("test_fn", ALL_TESTS, ids=lambda f: f.__name__)
    def test_biased_but_random_passes(self, test_fn):
        # the whole point of the bias generalization: p != 0.5 is fine
        assert test_fn(_honest(p=0.8, seed=2)).passed

    @pytest.mark.parametrize("test_fn", ALL_TESTS, ids=lambda f: f.__name__)
    def test_degenerate_sequences_pass(self, test_fn):
        assert test_fn(np.ones(200, dtype=np.int8)).passed
        assert test_fn(np.zeros(200, dtype=np.int8)).passed


class TestAttackPatterns:
    def test_serial_catches_regular_periodicity(self):
        assert not serial_test(_periodic()).passed

    def test_apen_catches_regular_periodicity(self):
        assert not approximate_entropy_test(_periodic()).passed

    def test_cusum_catches_hibernating_burst(self):
        assert not cusum_test(_hibernating()).passed

    def test_serial_catches_hibernating_burst(self):
        assert not serial_test(_hibernating()).passed

    def test_cusum_blind_to_evenly_spread_periodicity(self):
        # the centered walk of a perfectly regular 1-in-10 pattern never
        # drifts: cusum cannot see it (why the paper needs the windowed
        # distribution test, not just excursion statistics)
        assert cusum_test(_periodic()).passed

    def test_alternating_blocks_caught_by_pattern_tests(self):
        blocks = np.tile([1] * 10 + [0] * 10, 50)
        assert not serial_test(blocks).passed
        assert not approximate_entropy_test(blocks).passed
        # cusum only sees *drift*: a balanced oscillation keeps the walk
        # near zero, so it passes — every statistic has blind spots, the
        # argument for the paper's windowed distribution test
        assert cusum_test(blocks).passed


class TestValidation:
    @pytest.mark.parametrize("test_fn", ALL_TESTS, ids=lambda f: f.__name__)
    def test_rejects_non_binary(self, test_fn):
        with pytest.raises(ValueError):
            test_fn(np.array([0, 1, 2] * 100))

    @pytest.mark.parametrize("test_fn", ALL_TESTS, ids=lambda f: f.__name__)
    def test_rejects_2d(self, test_fn):
        with pytest.raises(ValueError):
            test_fn(np.ones((10, 100), dtype=np.int8))

    def test_minimum_lengths_enforced(self):
        with pytest.raises(ValueError):
            serial_test(np.ones(8, dtype=np.int8))
        with pytest.raises(ValueError):
            cusum_test(np.ones(16, dtype=np.int8))
        with pytest.raises(ValueError):
            approximate_entropy_test(np.ones(16, dtype=np.int8))

    def test_apen_pattern_length_bounds(self):
        with pytest.raises(ValueError):
            approximate_entropy_test(_honest(), m=0)
        with pytest.raises(ValueError):
            approximate_entropy_test(_honest(), m=9)

    def test_apen_longer_patterns_work(self):
        assert approximate_entropy_test(_honest(seed=3), m=3).passed


class TestStatisticalProperties:
    def test_serial_pvalue_roughly_uniform_under_null(self):
        # aggregate sanity: under H0 the p-value should not concentrate
        p_values = [
            serial_test(_honest(seed=200 + s)).p_value for s in range(40)
        ]
        assert 0.2 < float(np.mean(p_values)) < 0.8

    def test_cusum_statistic_grows_with_burst_size(self):
        small = cusum_test(_hibernating(bads=20)).statistic
        large = cusum_test(_hibernating(bads=80)).statistic
        assert large > small
