"""Tests for repro.stats.bootstrap."""

import numpy as np
import pytest

from repro.stats.binomial import binomial_pmf
from repro.stats.bootstrap import (
    batch_histograms,
    null_l1_distances,
    percentile_threshold,
)


class TestBatchHistograms:
    def test_matches_per_row_bincount(self):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 11, size=(30, 17))
        result = batch_histograms(samples, 11)
        expected = np.stack([np.bincount(row, minlength=11) for row in samples])
        np.testing.assert_array_equal(result, expected)

    def test_row_sums_equal_k(self):
        samples = np.random.default_rng(1).integers(0, 5, size=(10, 8))
        assert (batch_histograms(samples, 5).sum(axis=1) == 8).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_histograms(np.array([1, 2, 3]), 5)  # not 2-D
        with pytest.raises(ValueError):
            batch_histograms(np.array([[5]]), 5)  # out of support
        with pytest.raises(ValueError):
            batch_histograms(np.empty((3, 0), dtype=int), 5)  # zero draws


class TestNullL1Distances:
    def test_shape_and_range(self):
        pmf = binomial_pmf(10, 0.9)
        distances = null_l1_distances(pmf, k=50, n_sets=200, seed=1)
        assert distances.shape == (200,)
        assert (distances >= 0).all() and (distances <= 2.0).all()

    def test_deterministic_by_seed(self):
        pmf = binomial_pmf(10, 0.9)
        a = null_l1_distances(pmf, 20, 50, seed=7)
        b = null_l1_distances(pmf, 20, 50, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_concentration_with_more_windows(self):
        # More windows per set -> empirical pmf closer to truth -> smaller
        # typical distances.  This is the mechanism behind Fig. 8.
        pmf = binomial_pmf(10, 0.95)
        small_k = null_l1_distances(pmf, 10, 400, seed=2).mean()
        large_k = null_l1_distances(pmf, 320, 400, seed=3).mean()
        assert large_k < small_k / 2

    def test_point_mass_pmf_gives_zero_distances(self):
        pmf = binomial_pmf(10, 1.0)  # all mass at 10
        distances = null_l1_distances(pmf, 25, 50, seed=4)
        np.testing.assert_allclose(distances, 0.0)

    def test_validation(self):
        pmf = binomial_pmf(10, 0.9)
        with pytest.raises(ValueError):
            null_l1_distances(pmf, 0, 10)
        with pytest.raises(ValueError):
            null_l1_distances(pmf, 10, 0)
        with pytest.raises(ValueError):
            null_l1_distances(np.array([1.0]), 10, 10)


class TestPercentileThreshold:
    def test_simple_quantile(self):
        distances = np.arange(101, dtype=float)  # 0..100
        assert percentile_threshold(distances, 0.95) == pytest.approx(95.0)

    def test_covers_requested_fraction(self):
        rng = np.random.default_rng(5)
        distances = rng.random(10_000)
        threshold = percentile_threshold(distances, 0.95)
        assert (distances <= threshold).mean() == pytest.approx(0.95, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile_threshold(np.array([]), 0.95)
        with pytest.raises(ValueError):
            percentile_threshold(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            percentile_threshold(np.array([1.0]), 0.0)
