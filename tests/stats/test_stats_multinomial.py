"""Tests for repro.stats.multinomial."""

import numpy as np
import pytest

from repro.stats.binomial import binomial_pmf
from repro.stats.multinomial import (
    MultinomialModel,
    category_marginals,
    estimate_category_probs,
)


class TestMultinomialModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultinomialModel(0, (0.5, 0.5))
        with pytest.raises(ValueError):
            MultinomialModel(10, (0.5,))
        with pytest.raises(ValueError):
            MultinomialModel(10, (0.5, 0.6))
        with pytest.raises(ValueError):
            MultinomialModel(10, (-0.1, 1.1))

    def test_n_categories(self):
        assert MultinomialModel(10, (0.7, 0.2, 0.1)).n_categories == 3

    def test_marginal_pmfs_are_binomials(self):
        model = MultinomialModel(10, (0.7, 0.2, 0.1))
        marginals = model.marginal_pmfs()
        assert marginals.shape == (3, 11)
        for j, pj in enumerate((0.7, 0.2, 0.1)):
            np.testing.assert_allclose(marginals[j], binomial_pmf(10, pj))

    def test_sample_rows_sum_to_m(self):
        model = MultinomialModel(10, (0.8, 0.15, 0.05))
        draws = model.sample(50, seed=1)
        assert draws.shape == (50, 3)
        assert (draws.sum(axis=1) == 10).all()

    def test_sample_deterministic(self):
        model = MultinomialModel(6, (0.5, 0.5))
        np.testing.assert_array_equal(model.sample(5, seed=2), model.sample(5, seed=2))

    def test_sample_negative_raises(self):
        with pytest.raises(ValueError):
            MultinomialModel(6, (0.5, 0.5)).sample(-1)


class TestCategoryMarginals:
    def test_basic(self):
        windows = np.array([[8, 2], [10, 0]])
        marginals = category_marginals(windows, 10)
        assert marginals.shape == (2, 11)
        assert marginals[0, 8] == pytest.approx(0.5)
        assert marginals[0, 10] == pytest.approx(0.5)
        assert marginals[1, 2] == pytest.approx(0.5)
        assert marginals[1, 0] == pytest.approx(0.5)

    def test_row_sum_validation(self):
        with pytest.raises(ValueError):
            category_marginals(np.array([[5, 4]]), 10)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            category_marginals(np.array([1, 2, 3]), 6)


class TestEstimateCategoryProbs:
    def test_recovers_generator_probs(self):
        model = MultinomialModel(10, (0.75, 0.20, 0.05))
        windows = model.sample(5000, seed=3)
        probs = estimate_category_probs(windows, 10)
        np.testing.assert_allclose(probs, (0.75, 0.20, 0.05), atol=0.01)

    def test_sums_to_one(self):
        windows = MultinomialModel(8, (0.6, 0.4)).sample(40, seed=4)
        assert estimate_category_probs(windows, 8).sum() == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_category_probs(np.empty((0, 2)), 10)
