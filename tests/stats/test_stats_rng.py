"""Tests for repro.stats.rng."""

import numpy as np
import pytest

from repro.stats.rng import derive_seed, make_rng, spawn


class TestMakeRng:
    def test_int_seed_is_deterministic(self):
        a = make_rng(7).random(5)
        b = make_rng(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(3)
        assert make_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_threading_one_generator_advances_state(self):
        gen = make_rng(11)
        first = make_rng(gen).random()
        second = make_rng(gen).random()
        assert first != second  # same stream, consumed sequentially


class TestSpawn:
    def test_spawn_count(self):
        children = spawn(make_rng(5), 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_spawn_children_are_independent_streams(self):
        children = spawn(make_rng(5), 2)
        a = children[0].random(8)
        b = children[1].random(8)
        assert not np.array_equal(a, b)

    def test_spawn_deterministic_given_parent_seed(self):
        a = spawn(make_rng(9), 3)[1].random(4)
        b = spawn(make_rng(9), 3)[1].random(4)
        np.testing.assert_array_equal(a, b)

    def test_spawn_zero(self):
        assert spawn(make_rng(5), 0) == []

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(make_rng(5), -1)


class TestDeriveSeed:
    def test_range(self):
        seed = derive_seed(make_rng(1))
        assert 0 <= seed < 2**63

    def test_deterministic(self):
        assert derive_seed(make_rng(4)) == derive_seed(make_rng(4))

    def test_usable_as_seed(self):
        seed = derive_seed(make_rng(2))
        assert isinstance(make_rng(seed), np.random.Generator)
