"""Shared fixtures and hypothesis settings for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.core import BehaviorTestConfig, ThresholdCalibrator

# Keep property-based tests fast and deterministic-ish in CI: the default
# 100 examples x many properties would dominate the suite's runtime.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def paper_config() -> BehaviorTestConfig:
    """The paper's default behavior-test configuration (m=10, 95%)."""
    return BehaviorTestConfig()


@pytest.fixture(scope="session")
def shared_calibrator(paper_config) -> ThresholdCalibrator:
    """One session-wide calibrator so tests share the ε cache."""
    return ThresholdCalibrator(
        confidence=paper_config.confidence,
        n_sets=paper_config.calibration_sets,
        distance=paper_config.distance,
        p_quantum=paper_config.p_quantum,
        seed=999,
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
