"""FaultPlan / FaultSpec semantics and replay determinism."""

from __future__ import annotations

import pytest

from repro.obs.events import EventLog
from repro.resilience import (
    FAULT_MODES,
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)
from repro.resilience import runtime as res


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="serve.made.up")

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(site="core.calibration", mode="meltdown")

    def test_rejects_bad_numbers(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(site="core.calibration", probability=1.5)
        with pytest.raises(ValueError, match="max_fires"):
            FaultSpec(site="core.calibration", max_fires=-1)
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="core.calibration", after=-2)
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="core.calibration", mode="delay", delay_s=-0.1)

    def test_every_declared_site_and_mode_is_armable(self):
        for site in FAULT_SITES:
            for mode in FAULT_MODES:
                FaultSpec(site=site, mode=mode)


class TestFaultPlan:
    def test_unarmed_site_never_fires_and_logs_nothing(self):
        plan = FaultPlan(seed=0)
        assert plan.decide("core.calibration") is None
        assert plan.log == []

    def test_always_on_fault_fires_every_invocation(self):
        plan = FaultPlan(seed=0)
        plan.arm("core.calibration")
        for index in range(5):
            assert plan.decide("core.calibration") is not None
        assert [entry[1] for entry in plan.log] == list(range(5))
        assert all(fired for _, _, fired, _ in plan.log)

    def test_arm_accepts_prebuilt_spec(self):
        plan = FaultPlan()
        spec = FaultSpec(site="p2p.network.send", mode="delay", delay_s=0.5)
        assert plan.arm(spec) is spec
        assert plan.specs["p2p.network.send"] is spec
        with pytest.raises(TypeError, match="not both"):
            plan.arm(spec, "crash")

    def test_max_fires_bounds_the_damage(self):
        plan = FaultPlan()
        plan.arm("core.calibration", max_fires=2)
        fired = [plan.decide("core.calibration") is not None for _ in range(6)]
        assert fired == [True, True, False, False, False, False]
        assert plan.counts()["core.calibration"] == {
            "invocations": 6,
            "fires": 2,
        }

    def test_after_skips_a_warmup_prefix(self):
        plan = FaultPlan()
        plan.arm("core.calibration", after=3)
        fired = [plan.decide("core.calibration") is not None for _ in range(5)]
        assert fired == [False, False, False, True, True]

    def test_disarm_and_reset(self):
        plan = FaultPlan()
        plan.arm("core.calibration", max_fires=1)
        assert plan.decide("core.calibration") is not None
        plan.disarm("core.calibration")
        assert plan.decide("core.calibration") is None
        plan.arm("core.calibration", max_fires=1)
        plan.reset()
        assert plan.log == []
        assert plan.decide("core.calibration") is not None  # counters rewound

    def test_probabilistic_faults_fire_sometimes(self):
        plan = FaultPlan(seed=5)
        plan.arm("p2p.network.send", probability=0.5)
        fires = sum(
            plan.decide("p2p.network.send") is not None for _ in range(200)
        )
        assert 60 < fires < 140


class TestDeterminism:
    """The acceptance criterion: same seed => identical fault sequence."""

    def _run(self, seed: int):
        plan = FaultPlan(seed=seed)
        plan.arm("core.calibration", probability=0.4)
        plan.arm("p2p.network.send", probability=0.7)
        log = EventLog()
        with res.activate(plan, log):
            for _ in range(50):
                res.check("core.calibration")
                res.check("p2p.network.send")
        return plan.log, log.events

    @staticmethod
    def _strip_time(events):
        return [{k: v for k, v in e.items() if k != "time"} for e in events]

    def test_same_seed_same_decision_log_and_event_log(self, chaos_seed):
        log_a, events_a = self._run(chaos_seed)
        log_b, events_b = self._run(chaos_seed)
        assert log_a == log_b
        assert self._strip_time(events_a) == self._strip_time(events_b)

    def test_per_site_stream_independent_of_interleaving(self, chaos_seed):
        """Reordering *other* sites cannot perturb a site's decisions."""

        def decisions(order):
            plan = FaultPlan(seed=chaos_seed)
            plan.arm("core.calibration", probability=0.4)
            plan.arm("p2p.network.send", probability=0.7)
            for site in order:
                plan.decide(site)
            return [e for e in plan.log if e[0] == "core.calibration"]

        interleaved = decisions(
            ["core.calibration", "p2p.network.send"] * 25
        )
        batched = decisions(
            ["p2p.network.send"] * 25 + ["core.calibration"] * 25
        )
        assert interleaved == batched[: len(interleaved)]

    def test_different_seeds_differ(self):
        log_a, _ = self._run(0)
        log_b, _ = self._run(1)
        assert log_a != log_b


class TestRuntimeInjection:
    def test_exception_mode_raises_injected_fault(self):
        plan = FaultPlan()
        plan.arm("core.calibration", "exception")
        with res.activate(plan):
            with pytest.raises(InjectedFault) as excinfo:
                res.inject("core.calibration")
        assert excinfo.value.site == "core.calibration"
        assert excinfo.value.mode == "exception"

    def test_corrupt_mode_damages_text_and_rows(self):
        plan = FaultPlan()
        plan.arm("feedback.io.row", "corrupt")
        with res.activate(plan):
            row = res.inject("feedback.io.row", value={"rating": "1"})
            assert row["rating"] == "<injected-corruption>"
            text = res.inject("feedback.io.row", value="0123456789")
            assert text == "01234"

    def test_activate_restores_previous_state(self):
        assert res.armed is False
        with res.activate(FaultPlan()):
            assert res.armed is True
        assert res.armed is False
        assert res.plan is None

    def test_event_log_only_activation_does_not_arm(self):
        with res.activate(event_log=EventLog()):
            assert res.armed is False
            res.emit("quarantined", site="feedback.io.row")
            assert len(res.events.events) == 1
