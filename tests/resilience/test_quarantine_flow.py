"""Quarantine semantics end to end: io rows and ledger folds.

The contract: malformed feedback rows and un-foldable ledger events go
to a bounded quarantine with structured events — the stream never
aborts, and the good records still land.
"""

from __future__ import annotations

import pytest

from repro.feedback.io import read
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.obs.events import EventLog
from repro.resilience import FaultPlan, InjectedFault, Quarantine
from repro.resilience import runtime as res


def _feedback(time, server="s", client="c", rating=Rating.POSITIVE):
    return Feedback(time=time, server=server, client=client, rating=rating)


class TestLedgerQuarantine:
    def test_out_of_order_feedback_is_quarantined_not_fatal(self):
        quarantine = Quarantine(name="ledger")
        ledger = FeedbackLedger(quarantine=quarantine)
        assert ledger.record(_feedback(10.0))
        assert not ledger.record(_feedback(5.0))  # time went backwards
        assert ledger.record(_feedback(11.0))
        assert len(ledger) == 2
        assert quarantine.depth == 1
        (item,) = quarantine.items()
        assert item.site == "feedback.ledger.fold"
        assert item.item.time == 5.0

    def test_without_quarantine_the_stream_aborts(self):
        ledger = FeedbackLedger()
        ledger.record(_feedback(10.0))
        with pytest.raises(ValueError):
            ledger.record(_feedback(5.0))

    def test_injected_fold_fault_is_quarantined(self, chaos_seed):
        quarantine = Quarantine(name="ledger")
        ledger = FeedbackLedger(quarantine=quarantine)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("feedback.ledger.fold", "exception", max_fires=1)
        log = EventLog()
        with res.activate(plan, log):
            folded = ledger.record_many(
                [_feedback(float(t)) for t in range(5)]
            )
        assert folded == 4
        assert quarantine.depth == 1
        assert any(e["event"] == "quarantined" for e in log.events)

    def test_injected_fold_fault_without_quarantine_raises(self, chaos_seed):
        ledger = FeedbackLedger()
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("feedback.ledger.fold", "exception", max_fires=1)
        with res.activate(plan):
            with pytest.raises(InjectedFault):
                ledger.record(_feedback(1.0))

    def test_quarantined_first_sight_does_not_register_server(self):
        """A server whose first-ever feedback fails to fold must not
        leave a half-registered empty history behind."""
        quarantine = Quarantine(name="ledger")
        ledger = FeedbackLedger(quarantine=quarantine)
        plan = FaultPlan()
        plan.arm("feedback.ledger.fold", "exception", max_fires=1)
        with res.activate(plan):
            assert not ledger.record(_feedback(1.0, server="fresh"))
        assert "fresh" not in ledger.servers()
        with pytest.raises(KeyError):
            ledger.history("fresh")
        # and a later fold registers it cleanly
        assert ledger.record(_feedback(2.0, server="fresh"))
        assert len(ledger.history("fresh")) == 1


class TestIoRowQuarantine:
    def test_injected_row_corruption_collected_csv(self, tmp_path, chaos_seed):
        path = tmp_path / "rows.csv"
        path.write_text(
            "time,server,client,rating\n"
            + "".join(f"{t},s,c,1\n" for t in range(6))
        )
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("feedback.io.row", "corrupt", max_fires=2)
        with res.activate(plan):
            result = read(path, format="csv", errors="collect")
        assert len(result) == 4
        assert len(result.errors) == 2
        assert all("rating" in e.message for e in result.errors)

    def test_injected_row_corruption_strict_raises(self, tmp_path, chaos_seed):
        path = tmp_path / "rows.jsonl"
        path.write_text(
            "".join(
                '{"time": %d, "server": "s", "client": "c", "rating": 1}\n'
                % t
                for t in range(3)
            )
        )
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("feedback.io.row", "corrupt", max_fires=1)
        with res.activate(plan):
            with pytest.raises(ValueError, match="rating"):
                read(path, format="jsonl")  # errors="strict" is the default
