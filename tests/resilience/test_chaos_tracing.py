"""Degradation events under chaos carry the originating trace.

The contract: every recovery the ladder performs while serving a traced
request is attributed to that request — ``executor_degraded`` and
``calibration_degraded`` events carry the request's ``trace_id``, and
each degradation emits its event exactly once (no double-counting when
the retry ladder and the health registry both observe the same fall).
"""

from __future__ import annotations

import random

from repro import obs
from repro.obs import context as trace_ctx
from repro.obs.events import EventLog
from repro.resilience import FaultPlan
from repro.resilience import runtime as res
from repro.feedback.records import Feedback, Rating

from .conftest import make_service


def _events_named(log, name):
    return [e for e in log.events if e["event"] == name]


class TestExecutorDegradationTracing:
    def test_executor_degraded_carries_request_trace_id_exactly_once(
        self, service, chaos_seed
    ):
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception", max_fires=2)
        log = EventLog()
        root = trace_ctx.new_root(test="chaos")
        with obs.activate(), res.activate(plan, log):
            with trace_ctx.use(root):
                service.assess_many(executor="thread")
        assert service.n_degradations == 1
        degraded = _events_named(log, "executor_degraded")
        assert len(degraded) == 1, "one degradation => exactly one event"
        assert degraded[0]["trace_id"] == root.trace_id

    def test_untraced_degradation_has_no_trace_id_but_still_fires_once(
        self, service, chaos_seed
    ):
        """Without obs, no root is minted — the event stays id-free."""
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception", max_fires=2)
        log = EventLog()
        with res.activate(plan, log):
            service.assess_many(executor="thread")
        degraded = _events_named(log, "executor_degraded")
        assert len(degraded) == 1
        assert "trace_id" not in degraded[0]

    def test_distinct_requests_attribute_to_distinct_traces(
        self, service, chaos_seed
    ):
        """Two faulted requests => two events, each with its own trace."""
        log = EventLog()
        seen = []
        with obs.activate():
            for _ in range(2):
                plan = FaultPlan(seed=chaos_seed)
                plan.arm("serve.executor.worker", "exception", max_fires=2)
                root = trace_ctx.new_root()
                with res.activate(plan, log):
                    with trace_ctx.use(root):
                        service.assess_many(executor="thread")
                seen.append(root.trace_id)
        degraded = _events_named(log, "executor_degraded")
        assert [e["trace_id"] for e in degraded] == seen
        assert len(set(seen)) == 2


class TestCalibrationDegradationTracing:
    @staticmethod
    def _add_uncalibrated_server(service, sid="srv-new", p_good=0.5):
        """Same (m, k) bucket as the warm run, but an uncalibrated p̂
        bucket — the stale-fallback path is the only recovery."""
        stream = random.Random(77)
        t = 10_000.0
        service.add_server(sid)
        for i in range(40):
            t += 1.0
            service.observe(
                Feedback(
                    time=t,
                    server=sid,
                    client=f"cli-{i % 5}",
                    rating=(
                        Rating.POSITIVE
                        if stream.random() < p_good
                        else Rating.NEGATIVE
                    ),
                )
            )
        return sid

    def test_calibration_degraded_carries_request_trace_id_exactly_once(
        self, chaos_seed
    ):
        service = make_service()
        calibrator = service.assessor.behavior_test.calibrator
        service.assess_many(executor="serial")  # warm nearby ε buckets
        sid = self._add_uncalibrated_server(service)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception")
        log = EventLog()
        root = trace_ctx.new_root(test="chaos")
        with obs.activate(), res.activate(plan, log):
            with trace_ctx.use(root):
                service.assess_many([sid], executor="serial")
        assert calibrator.degraded_calibrations >= 1
        degraded = _events_named(log, "calibration_degraded")
        assert len(degraded) == calibrator.degraded_calibrations
        assert all(e["trace_id"] == root.trace_id for e in degraded)

    def test_traced_degradations_surface_as_span_events(self, chaos_seed):
        """The same funnel annotates the open request span."""
        service = make_service()
        service.assess_many(executor="serial")
        sid = self._add_uncalibrated_server(service)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception")
        root = trace_ctx.new_root()
        with obs.activate() as session, res.activate(plan):
            with trace_ctx.use(root):
                service.assess_many([sid], executor="serial")
        annotated = [
            event
            for span in session.tracer.finished
            for event in span.events
            if event["name"] == "calibration_degraded"
        ]
        assert len(annotated) >= 1
