"""Acceptance: an exhausted ladder under chaos leaves a post-mortem.

The flight recorder's reason to exist: when a
:class:`~repro.resilience.faults.ResilienceError` escapes the serving
ladder, a bundle lands on disk holding the dying request's trace tail,
the degradation events, and the scraped metric history — every span and
event stamped with the one trace_id of the request that died, so the
post-mortem reads as a single causal story.

Bundles are written to ``$REPRO_POSTMORTEM_DIR`` when set (CI exports it
and uploads the directory as an artifact on failure) and to pytest's
``tmp_path`` otherwise.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import obs
from repro.main import main
from repro.obs import context as trace_ctx
from repro.obs.events import EventLog
from repro.obs.flightrec import flight_recording
from repro.obs.tsdb import MetricsScraper, scraping_session
from repro.resilience import FaultPlan, InjectedFault, ResilienceError
from repro.resilience import runtime as res

from .conftest import make_service


@pytest.fixture()
def postmortem_dir(tmp_path) -> Path:
    configured = os.environ.get("REPRO_POSTMORTEM_DIR")
    if configured:
        path = Path(configured)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return tmp_path


def _crash_run(postmortem_dir, chaos_seed, monkeypatch):
    """A degraded sweep, then a sweep whose every ladder step fails."""
    service = make_service()
    plan = FaultPlan(seed=chaos_seed)
    # two fires exhaust the thread step's retries: the sweep degrades to
    # serial for real, emitting a trace-stamped executor_degraded
    plan.arm("serve.executor.worker", "exception", max_fires=2)
    log = EventLog()
    root = trace_ctx.new_root(test="postmortem_e2e")
    with obs.activate():
        scraper = MetricsScraper(obs.get_registry(), interval_s=0.001)
        with scraping_session(scraper), flight_recording(
            postmortem_dir, scraper=scraper, min_dump_interval_s=0.0
        ) as recorder:
            with res.activate(plan, log), trace_ctx.use(root):
                # healthy traffic first: spans, metrics, scrapes
                for _ in range(2):
                    service.assess_many(executor="serial")
                # the degraded-but-served sweep
                service.assess_many(executor="thread")
                assert service.n_degradations == 1
                fault = InjectedFault("serve.executor.worker", "exception", 0)

                def _always_failing(step, ids):
                    raise fault

                monkeypatch.setattr(service, "_run_step", _always_failing)
                with pytest.raises(ResilienceError) as excinfo:
                    service.assess_many(executor="thread")
    return recorder, root, excinfo.value


class TestPostmortemEndToEnd:
    def test_escaping_resilience_error_dumps_a_coherent_bundle(
        self, postmortem_dir, chaos_seed, monkeypatch, capsys
    ):
        recorder, root, error = _crash_run(
            postmortem_dir, chaos_seed, monkeypatch
        )
        assert error.site == "serve.executor.worker"
        assert recorder.dumps, "an escaping ResilienceError must dump"
        path = recorder.dumps[-1]
        assert "resilience_error" in path.name
        assert path.parent == postmortem_dir

        bundle = obs.read_postmortem(path)  # schema-validates
        assert bundle["reason"] == "resilience_error"
        assert bundle["info"]["site"] == "serve.executor.worker"

        # the trace tail: every recorded span belongs to the request's
        # trace — the bundle tells one causal story
        spans = bundle["spans"]
        assert spans
        assert {s["trace_id"] for s in spans} == {root.trace_id}
        assert any(s["name"] == "serve.assess_many" for s in spans)

        # the degradation events carry the same trace_id
        degraded = [
            e for e in bundle["events"] if e["event"] == "executor_degraded"
        ]
        assert degraded
        assert all(e["trace_id"] == root.trace_id for e in degraded)

        # the scraped series history made it in
        assert bundle["series"]
        assert any(name.startswith("serve.") for name in bundle["series"])

        # the armed fault plan is in the bundle, seed and all
        assert bundle["fault_plan"]["seed"] == chaos_seed
        assert "serve.executor.worker" in bundle["fault_plan"]["specs"]

        # and `repro obs postmortem` renders every section of it
        assert main(["obs", "postmortem", str(path)]) == 0
        out = capsys.readouterr().out
        assert "post-mortem: resilience_error" in out
        assert "serve.assess_many" in out
        assert "executor_degraded" in out
        assert "series tails" in out
        assert f"active fault plan (seed {chaos_seed})" in out

    def test_breaker_open_under_chaos_triggers_a_dump(
        self, postmortem_dir, chaos_seed
    ):
        service = make_service()
        threshold = service._breakers["thread"].failure_threshold
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception")
        log = EventLog()
        with obs.activate(), flight_recording(
            postmortem_dir, min_dump_interval_s=0.0
        ) as recorder:
            with res.activate(plan, log):
                for _ in range(threshold):
                    service.assess_many(executor="thread")
        assert service._breakers["thread"].state == "open"
        assert any("breaker_open" in p.name for p in recorder.dumps)
        bundle = obs.read_postmortem(
            next(p for p in recorder.dumps if "breaker_open" in p.name)
        )
        assert bundle["info"]["trigger_event"]["event"] == "breaker_open"
