"""Shared fixtures for the chaos suite.

The suite is parameterized by one environment variable,
``REPRO_CHAOS_SEED`` (default 0): CI runs the whole directory under a
matrix of seeds, and any failure is replayed locally by exporting the
same seed — the fault plans derive every decision from it.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.feedback.records import Feedback, Rating
from repro.resilience.health import GLOBAL_HEALTH
from repro.serve import AssessmentService


@pytest.fixture(scope="session")
def chaos_seed() -> int:
    """The seed every fault plan in this run derives from."""
    return int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _isolate_health_registry():
    """Each test sees only the resilience components it creates."""
    GLOBAL_HEALTH.clear()
    yield
    GLOBAL_HEALTH.clear()


#: Small-but-real serving config: single behavior test, cheap Monte-Carlo
#: calibration, low trust bar so statuses vary across servers.
CHAOS_CONFIG = AssessorConfig(
    trust_function="average",
    behavior_test="single",
    trust_threshold=0.7,
    test_config=BehaviorTestConfig(
        window_size=8, min_windows=2, calibration_sets=50
    ),
)


def make_service(n_servers: int = 6, n_feedbacks: int = 40, **kwargs) -> AssessmentService:
    """A populated service over a deterministic feedback stream."""
    service = AssessmentService(config=CHAOS_CONFIG, **kwargs)
    stream = random.Random(1234)
    t = 0.0
    for s in range(n_servers):
        sid = f"srv-{s:02d}"
        service.add_server(sid)
        p_good = 0.95 - 0.05 * s
        for i in range(n_feedbacks):
            t += 1.0
            service.observe(
                Feedback(
                    time=t,
                    server=sid,
                    client=f"cli-{i % 5}",
                    rating=(
                        Rating.POSITIVE
                        if stream.random() < p_good
                        else Rating.NEGATIVE
                    ),
                )
            )
    return service


@pytest.fixture()
def service() -> AssessmentService:
    return make_service()
