"""Chaos tests for the persistent calibration cache.

A corrupt snapshot (truncated write, bad disk, injected corruption)
must never stop a service from starting — the cache comes up cold, the
run recalibrates, and because calibration is deterministic the verdicts
are bit-identical to a run that never had a cache at all.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EventLog
from repro.resilience import FaultPlan
from repro.resilience import runtime as res
from repro.serve import CalibrationCache

from .conftest import make_service


def _warm_cache(tmp_path, name="cache.json"):
    path = str(tmp_path / name)
    cache = CalibrationCache(path=path)
    service = make_service(calibration_cache=cache)
    baseline = service.assess_many(executor="serial")
    cache.save()
    return path, baseline


class TestCorruptSnapshotRecovery:
    def test_truncated_snapshot_loads_cold_with_event(self, tmp_path):
        path, _ = _warm_cache(tmp_path)
        raw = open(path, encoding="utf-8").read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(raw[: len(raw) // 2])
        log = EventLog()
        with res.activate(event_log=log):
            cache = CalibrationCache(path=path)
        assert len(cache) == 0
        failures = [e for e in log.events if e["event"] == "cache_load_failed"]
        assert len(failures) == 1
        assert failures[0]["site"] == "serve.cache.load"

    def test_injected_corruption_at_load_site(self, tmp_path, chaos_seed):
        path, _ = _warm_cache(tmp_path)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.cache.load", "corrupt", max_fires=1)
        with res.activate(plan):
            cache = CalibrationCache(path=path)
        assert len(cache) == 0
        # the file itself is intact: a later load succeeds
        assert cache.load(path) > 0

    def test_cold_recovery_is_bit_identical(self, tmp_path, chaos_seed):
        path, baseline = _warm_cache(tmp_path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{ not json")
        cache = CalibrationCache(path=path)  # comes up cold, no raise
        service = make_service(calibration_cache=cache)
        assert service.assess_many(executor="serial") == baseline

    def test_foreign_schema_still_raises(self, tmp_path):
        """A parseable file of the wrong schema is a wrong *path*, not
        corruption — silently cold-starting would hide a config bug."""
        path = str(tmp_path / "other.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump({"schema": "something/else", "entries": []}, fh)
        with pytest.raises(ValueError, match="snapshot"):
            CalibrationCache(path=path)

    def test_missing_file_still_raises_on_explicit_load(self, tmp_path):
        cache = CalibrationCache()
        with pytest.raises(FileNotFoundError):
            cache.load(str(tmp_path / "never-written.json"))
