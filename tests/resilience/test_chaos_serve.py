"""Chaos suite for the serving pipeline.

The contract under test: wherever a recovery path exists, verdicts
under injected faults are **bit-identical** to the fault-free run; where
none exists, the sweep surfaces one structured
:class:`~repro.resilience.faults.ResilienceError` naming the
originating site — never a bare worker traceback.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.obs.events import EventLog
from repro.resilience import FaultPlan, InjectedFault, ResilienceError
from repro.resilience import runtime as res
from repro.serve.service import AssessmentService

from .conftest import make_service


def _strip_time(events):
    return [{k: v for k, v in e.items() if k != "time"} for e in events]


class TestExecutorRecovery:
    def test_thread_fault_degrades_to_serial_bit_identical(
        self, service, chaos_seed
    ):
        baseline = service.assess_many(executor="serial")
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception", max_fires=2)
        log = EventLog()
        with res.activate(plan, log):
            chaos = service.assess_many(executor="thread")
        assert chaos == baseline
        assert service.n_degradations == 1
        assert service.last_degradation["from"] == "thread"
        assert service.last_degradation["to"] == "serial"
        names = [e["event"] for e in log.events]
        assert "fault_injected" in names
        assert "executor_degraded" in names

    def test_worker_crash_becomes_broken_pool_then_recovers(
        self, service, chaos_seed
    ):
        baseline = service.assess_many(executor="serial")
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "crash", max_fires=2)
        with res.activate(plan):
            chaos = service.assess_many(executor="thread")
        assert chaos == baseline
        assert "BrokenProcessPool" in service.last_degradation["error"]

    def test_transient_fault_recovers_within_the_same_step(
        self, service, chaos_seed
    ):
        """One fire, two attempts: the retry absorbs it — no degradation."""
        baseline = service.assess_many(executor="serial")
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception", max_fires=1)
        with res.activate(plan):
            chaos = service.assess_many(executor="thread")
        assert chaos == baseline
        assert service.n_degradations == 0
        assert service._retry_policy.n_retries == 1

    def test_broken_process_pool_falls_back_to_serial(
        self, monkeypatch, chaos_seed
    ):
        """Satellite: simulated pool-worker death => serial equivalence."""
        service = make_service()
        baseline = service.assess_many(executor="serial")

        def _dying_pool(ids):
            raise BrokenProcessPool("simulated worker death")

        monkeypatch.setattr(service, "_assess_many_threaded", _dying_pool)
        log = EventLog()
        with res.activate(FaultPlan(seed=chaos_seed), log):
            chaos = service.assess_many(executor="thread")
        assert chaos == baseline
        assert service.n_degradations == 1
        degradations = [
            e for e in log.events if e["event"] == "executor_degraded"
        ]
        assert len(degradations) == 1
        assert degradations[0]["to"] == "serial"

    def test_caller_errors_stay_out_of_the_ladder(self, service):
        with pytest.raises(KeyError):
            service.assess_many(["no-such-server"], executor="serial")
        with pytest.raises(ValueError, match="config"):
            # assessor-built service: process mode is a config error, not
            # a fault to degrade around
            AssessmentService(
                assessor=service.assessor
            ).assess_many(executor="process")
        assert service.n_degradations == 0

    def test_exhausted_ladder_raises_single_resilience_error(
        self, service, monkeypatch, chaos_seed
    ):
        fault = InjectedFault("serve.executor.worker", "exception", 0)

        def _always_failing(step, ids):
            raise fault

        monkeypatch.setattr(service, "_run_step", _always_failing)
        with res.activate(FaultPlan(seed=chaos_seed)):
            with pytest.raises(ResilienceError) as excinfo:
                service.assess_many(executor="thread")
        assert excinfo.value.site == "serve.executor.worker"
        # one attempt record per ladder step: thread, serial
        assert [step for step, _ in excinfo.value.attempts] == [
            "thread",
            "serial",
        ]


class TestCircuitBreaker:
    def test_repeated_pool_failures_open_the_breaker(self, chaos_seed):
        service = make_service()
        threshold = service._breakers["thread"].failure_threshold
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("serve.executor.worker", "exception")  # unbounded
        baseline = service.assess_many(executor="serial")
        log = EventLog()
        with res.activate(plan, log):
            for _ in range(threshold):
                assert service.assess_many(executor="thread") == baseline
            assert service._breakers["thread"].state == "open"
            # next sweep skips the thread pool entirely: no new fault
            # decisions at the worker site, still correct answers
            invocations_before = plan.counts()["serve.executor.worker"][
                "invocations"
            ]
            assert service.assess_many(executor="thread") == baseline
            assert (
                plan.counts()["serve.executor.worker"]["invocations"]
                == invocations_before
            )
        assert any(e["event"] == "breaker_open" for e in log.events)
        assert any(e["event"] == "breaker_rejection" for e in log.events)


class TestCalibrationRecovery:
    def test_transient_calibration_fault_is_bit_identical(self, chaos_seed):
        """Injection happens before the Monte-Carlo pass consumes RNG, so
        the retried calibration reproduces the fault-free threshold."""
        baseline = make_service().assess_many(executor="serial")
        service = make_service()
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception", max_fires=1)
        with res.activate(plan):
            chaos = service.assess_many(executor="serial")
        assert chaos == baseline
        assert not any(a.degraded for a in chaos.values())

    @staticmethod
    def _add_uncalibrated_server(service, sid="srv-new", p_good=0.5):
        """A server at the standard history length (same (m, k) bucket)
        whose p_hat lands in a rate bucket no warm run calibrated."""
        import random

        from repro.feedback.records import Feedback, Rating

        stream = random.Random(77)
        t = 10_000.0
        service.add_server(sid)
        for i in range(40):
            t += 1.0
            service.observe(
                Feedback(
                    time=t,
                    server=sid,
                    client=f"cli-{i % 5}",
                    rating=(
                        Rating.POSITIVE
                        if stream.random() < p_good
                        else Rating.NEGATIVE
                    ),
                )
            )
        return sid

    def test_persistent_calibration_fault_serves_stale_degraded(
        self, chaos_seed
    ):
        service = make_service()
        calibrator = service.assessor.behavior_test.calibrator
        service.assess_many(executor="serial")  # warms nearby ε buckets
        sid = self._add_uncalibrated_server(service)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception")  # every attempt fails
        log = EventLog()
        with res.activate(plan, log):
            chaos = service.assess_many([sid], executor="serial")
        assert calibrator.degraded_calibrations > 0
        assert chaos[sid].degraded
        assert any(
            e["event"] == "calibration_degraded" for e in log.events
        )

    def test_degraded_assessments_are_not_memoized(self, chaos_seed):
        service = make_service()
        service.assess_many(executor="serial")
        sid = self._add_uncalibrated_server(service)
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception")
        with res.activate(plan):
            first = service.assess(sid)
        assert first.degraded
        # the degraded answer was served but not cached: with the fault
        # cleared the next call recomputes for real
        healthy = service.assess(sid)
        assert not healthy.degraded
        # and now the healthy answer *is* memoized
        assert service.assess(sid) is healthy

    def test_unrecoverable_calibration_fault_raises_resilience_error(
        self, chaos_seed
    ):
        """A cold calibrator has no stale candidate: nothing can recover,
        and the sweep surfaces one structured error naming the site."""
        service = make_service()
        plan = FaultPlan(seed=chaos_seed)
        plan.arm("core.calibration", "exception")
        with res.activate(plan):
            with pytest.raises(ResilienceError) as excinfo:
                service.assess_many(executor="serial")
        assert excinfo.value.site == "core.calibration"
        # the per-server path (no ladder) propagates the fault itself
        with res.activate(plan):
            with pytest.raises(InjectedFault):
                service.assess(service.servers()[0])


class TestChaosDeterminism:
    """Same plan seed => identical fault sequence and obs event log."""

    def _chaos_run(self, seed: int):
        service = make_service()
        plan = FaultPlan(seed=seed)
        plan.arm("serve.executor.worker", "exception", probability=0.6)
        plan.arm("core.calibration", "exception", max_fires=1)
        log = EventLog()
        with res.activate(plan, log):
            results = service.assess_many(executor="thread")
        return results, plan.log, _strip_time(log.events)

    def test_two_runs_replay_identically(self, chaos_seed):
        results_a, plan_log_a, events_a = self._chaos_run(chaos_seed)
        results_b, plan_log_b, events_b = self._chaos_run(chaos_seed)
        assert plan_log_a == plan_log_b
        assert events_a == events_b
        assert results_a == results_b

    def test_chaos_results_match_fault_free_run(self, chaos_seed):
        baseline = make_service().assess_many(executor="serial")
        results, _, _ = self._chaos_run(chaos_seed)
        assert results == baseline
