"""Unit tests for the recovery policies: retry, breaker, quarantine, health."""

from __future__ import annotations

import pytest

from repro.resilience import (
    CircuitBreaker,
    Quarantine,
    RetryExhausted,
    RetryPolicy,
    health_report,
    render_health,
)
from repro.resilience.health import GLOBAL_HEALTH


class _Flaky:
    """Fails the first ``n_failures`` calls, then succeeds."""

    def __init__(self, n_failures, error=OSError("boom")):
        self.n_failures = n_failures
        self.calls = 0
        self.error = error

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise self.error
        return "ok"


class TestRetryPolicy:
    def test_success_first_try(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.call(lambda: 42) == 42
        assert policy.stats()["retries"] == 0

    def test_retries_until_success(self):
        policy = RetryPolicy(max_attempts=3)
        flaky = _Flaky(2)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert policy.n_retries == 2

    def test_exhaustion_raises_with_last_error(self):
        policy = RetryPolicy(max_attempts=2, name="unit")
        flaky = _Flaky(10)
        with pytest.raises(RetryExhausted) as excinfo:
            policy.call(flaky)
        assert excinfo.value.last_error is flaky.error
        assert excinfo.value.attempts == 2
        assert flaky.calls == 2
        assert policy.n_exhausted == 1

    def test_non_retryable_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5, retry_on=(OSError,))
        flaky = _Flaky(10, error=KeyError("caller bug"))
        with pytest.raises(KeyError):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_backoff_curve_exponential_and_capped(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, multiplier=2.0, max_delay=5.0
        )
        assert [policy.delay_for(i) for i in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_jitter_is_deterministic_per_seed(self):
        delays_a = [
            RetryPolicy(base_delay=1.0, jitter=0.5, seed=7).delay_for(i)
            for i in range(4)
        ]
        delays_b = [
            RetryPolicy(base_delay=1.0, jitter=0.5, seed=7).delay_for(i)
            for i in range(4)
        ]
        assert delays_a == delays_b
        for index, delay in enumerate(delays_a):
            base = 2.0**index
            assert base <= delay <= base * 1.5

    def test_sleep_callable_receives_backoff(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.5)
        policy.call(_Flaky(2), sleep=slept.append)
        assert slept == [0.5, 1.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        kwargs.setdefault("failure_threshold", 3)
        kwargs.setdefault("reset_after_s", 10.0)
        return CircuitBreaker("unit", clock=lambda: self.now, **kwargs)

    def test_opens_after_consecutive_failures(self):
        breaker = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.n_rejections == 1

    def test_success_resets_the_failure_streak(self):
        breaker = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.now = 11.0
        assert breaker.state == "half_open"
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_probe_failure_reopens(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        self.now = 11.0
        assert breaker.allow()
        breaker.record_failure()  # one failed probe re-opens immediately
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_reset_forces_closed(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_after_s=0.0)


class TestQuarantine:
    def test_bounded_drop_oldest(self):
        quarantine = Quarantine(capacity=3, name="unit")
        for i in range(5):
            quarantine.add(i, site="feedback.ledger.fold", reason=f"r{i}")
        assert quarantine.depth == 3
        assert [q.item for q in quarantine.items()] == [2, 3, 4]
        assert quarantine.n_quarantined == 5
        assert quarantine.n_dropped == 2

    def test_items_carry_provenance(self):
        quarantine = Quarantine()
        record = quarantine.add(
            "bad", site="feedback.io.row", reason="unparseable"
        )
        assert record.site == "feedback.io.row"
        assert record.reason == "unparseable"
        assert record.index == 0

    def test_drain_empties(self):
        quarantine = Quarantine()
        quarantine.add(1, site="feedback.io.row", reason="x")
        assert [q.item for q in quarantine.drain()] == [1]
        assert quarantine.depth == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Quarantine(capacity=0)


class TestHealthRegistry:
    def test_report_aggregates_live_components(self):
        breaker = CircuitBreaker("svc.pool", failure_threshold=1)
        breaker.record_failure()
        quarantine = Quarantine(name="ledger")
        quarantine.add("bad", site="feedback.ledger.fold", reason="order")
        policy = RetryPolicy(max_attempts=2, name="svc.retry")
        with pytest.raises(RetryExhausted):
            policy.call(_Flaky(10))
        report = health_report()
        assert report["open_breakers"] == 1
        assert report["quarantine_depth"] == 1
        assert report["total_retries"] == 1
        rendered = render_health(report)
        assert "svc.pool" in rendered
        assert "ledger" in rendered
        assert "svc.retry" in rendered

    def test_dead_components_fall_out_of_the_report(self):
        CircuitBreaker("ephemeral")
        assert len(health_report()["breakers"]) <= 1  # may already be gone
        import gc

        gc.collect()
        assert health_report()["breakers"] == []

    def test_registry_does_not_keep_components_alive(self):
        import weakref

        breaker = CircuitBreaker("weak")
        ref = weakref.ref(breaker)
        del breaker
        import gc

        gc.collect()
        assert ref() is None
        assert GLOBAL_HEALTH.report()["breakers"] == []
