"""The ``repro health`` subcommand: live registry and event-log modes."""

from __future__ import annotations

import json

from repro.main import main
from repro.resilience import CircuitBreaker, Quarantine


class TestLiveMode:
    def test_empty_registry_renders_cleanly(self, capsys):
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "resilience health" in out
        assert "breakers: 0" in out

    def test_live_components_appear(self, capsys):
        breaker = CircuitBreaker("serve.executor.process", failure_threshold=1)
        breaker.record_failure()
        quarantine = Quarantine(name="ledger")
        quarantine.add("bad", site="feedback.ledger.fold", reason="order")
        assert main(["health"]) == 0
        out = capsys.readouterr().out
        assert "serve.executor.process" in out
        assert "open" in out
        assert "ledger" in out
        assert "depth=1" in out


class TestEventLogMode:
    def test_summarizes_resilience_events(self, tmp_path, capsys):
        path = tmp_path / "run_events.jsonl"
        records = [
            {"time": 1.0, "event": "fault_injected", "site": "core.calibration"},
            {"time": 2.0, "event": "fault_injected", "site": "core.calibration"},
            {
                "time": 3.0,
                "event": "executor_degraded",
                "from": "process",
                "to": "serial",
                "error": "BrokenProcessPool('x')",
            },
            {"time": 4.0, "event": "phase", "name": "unrelated"},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        assert main(["health", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fault_injected           2" in out
        assert "core.calibration" in out
        assert "degraded: process -> serial" in out

    def test_log_without_resilience_events(self, tmp_path, capsys):
        path = tmp_path / "quiet.jsonl"
        path.write_text('{"time": 1.0, "event": "phase", "name": "warm"}\n')
        assert main(["health", str(path)]) == 0
        assert "no resilience events" in capsys.readouterr().out

    def test_missing_log_is_an_error(self, tmp_path, capsys):
        assert main(["health", str(tmp_path / "absent.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err
