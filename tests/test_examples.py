"""Smoke tests: every example must run clean through the public API.

Examples are documentation that executes; a broken one misleads every
new user.  Each is run as a subprocess (exactly how users run them) and
its key output lines are asserted.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _run(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, f"{name} failed:\n{result.stderr}"
    return result.stdout


class TestExamplesRun:
    def test_every_example_is_covered_here(self):
        covered = {
            "quickstart.py",
            "marketplace_screening.py",
            "p2p_collusion_ring.py",
            "trust_function_shootout.py",
            "detection_tuning.py",
            "dht_reputation.py",
            "dynamic_servers.py",
            "roc_tradeoffs.py",
        }
        assert set(ALL_EXAMPLES) == covered

    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "alice" in out and "trusted" in out
        assert "mallory" in out and "suspicious" in out

    def test_marketplace_screening(self):
        out = _run("marketplace_screening.py")
        assert "attackers flagged by multi-testing" in out
        assert "dans-discounts" in out

    def test_p2p_collusion_ring(self):
        out = _run("p2p_collusion_ring.py")
        assert "average trust only" in out
        assert "collusion-resilient" in out

    def test_dht_reputation(self):
        out = _run("dht_reputation.py")
        assert "crashed" in out
        assert "suspicious" in out
        assert "push-pull gossip" in out

    def test_dynamic_servers(self):
        out = _run("dynamic_servers.py")
        assert "migrated-mirror" in out
        assert "segmented: ok" in out
        assert "clockwork-cheat" in out

    def test_detection_tuning(self):
        out = _run("detection_tuning.py")
        assert "false-pos" in out
        assert "detection" in out

    def test_roc_tradeoffs(self):
        out = _run("roc_tradeoffs.py")
        assert "AUC" in out
        assert "max sustainable cheat rate" in out

    @pytest.mark.slow
    def test_trust_function_shootout(self):
        out = _run("trust_function_shootout.py")
        assert "attacker bad txns" in out
        assert "average" in out and "weighted" in out
