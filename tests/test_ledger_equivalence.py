"""Property-based ledger equivalence: every backend tells the same story.

For arbitrary populations — honest players, hibernating and periodic
attackers, colluding issuer cliques — the object (``memory``), SoA
(``columnar``) and persisted (``mmap``) backends must agree
*verdict-for-verdict* (the behavior tests run on each backend's
histories, including the vectorized cold-path kernel) and
*byte-for-byte* on the aggregate ``feedback_graph()``.  A chaos variant
replays the same stream under per-backend fresh fault plans built from
the CI seed matrix and demands identical fold/quarantine decisions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.hibernating import hibernating_attack_history
from repro.adversary.periodic import periodic_attack_history
from repro.core.calibration import ThresholdCalibrator
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.vectorized import fold_cold_batch
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.resilience import FaultPlan, Quarantine
from repro.resilience import runtime as res

BACKENDS = ("memory", "columnar", "mmap")
CHAOS_SEEDS = (0, 1337, 90210)

CONFIG = BehaviorTestConfig(calibration_sets=50)

server_spec = st.tuples(
    st.sampled_from(["honest", "hibernating", "periodic", "collusion"]),
    st.integers(min_value=0, max_value=150),  # history length
    st.integers(min_value=0, max_value=2**20),  # per-server seed
)
population = st.lists(server_spec, min_size=1, max_size=5)


def _outcomes(family: str, length: int, seed: int) -> np.ndarray:
    if length == 0:
        return np.empty(0, dtype=np.int64)
    if family == "honest":
        return generate_honest_outcomes(length, 0.9, seed=seed)
    if family == "hibernating":
        return hibernating_attack_history(length, max(length // 6, 1), seed=seed)
    if family == "periodic":
        return periodic_attack_history(length, 12, seed=seed)
    # collusion: a low-quality server whose outcome stream is mostly bad
    rng = np.random.default_rng(seed)
    return (rng.random(length) < 0.35).astype(np.int64)


def _stream(spec) -> list:
    """One deterministic feedback stream for a population spec.

    Collusion servers get their feedback from a small colluding clique
    (repeat issuers, ``authentic=False`` on fabricated praise); everyone
    else draws issuers from a broad client pool.
    """
    events = []
    for idx, (family, length, seed) in enumerate(spec):
        sid = f"{family}-{idx}"
        rng = np.random.default_rng(seed ^ 0xC0FFEE)
        outcomes = _outcomes(family, length, seed)
        for t, outcome in enumerate(outcomes.tolist()):
            if family == "collusion":
                client = f"clique-{rng.integers(0, 3)}"
                # the clique praises regardless of the real outcome
                fabricated = rng.random() < 0.5
                rating = Rating.POSITIVE if fabricated else Rating(outcome)
                authentic = not fabricated
            else:
                client = f"client-{rng.integers(0, 20)}"
                rating = Rating(outcome)
                authentic = True
            events.append(
                Feedback(
                    time=float(t),
                    server=sid,
                    client=client,
                    rating=rating,
                    authentic=authentic,
                )
            )
    return events


def _ledger(backend: str, tmp_path_factory, tag: str, **kwargs) -> FeedbackLedger:
    if backend == "mmap":
        root = tmp_path_factory.mktemp("ledger-eq")
        kwargs["path"] = str(root / f"{tag}.bin")
    return FeedbackLedger(backend=backend, **kwargs)


def _tester() -> MultiBehaviorTest:
    return MultiBehaviorTest(
        CONFIG,
        ThresholdCalibrator(
            confidence=CONFIG.confidence,
            n_sets=CONFIG.calibration_sets,
            distance=CONFIG.distance,
            p_quantum=CONFIG.p_quantum,
            seed=424242,
        ),
    )


class TestBackendEquivalence:
    @given(spec=population)
    @settings(max_examples=20, deadline=None)
    def test_verdicts_and_graph_agree(self, spec, tmp_path_factory):
        events = _stream(spec)
        ledgers = {
            backend: _ledger(backend, tmp_path_factory, f"clean-{backend}")
            for backend in BACKENDS
        }
        for backend, led in ledgers.items():
            assert led.record_many(events) == len(events)

        reference = ledgers["memory"]
        ref_graph = reference.feedback_graph()
        servers = sorted(reference.servers())
        # scalar verdicts on the object backend are the ground truth;
        # each columnar backend is judged by the vectorized kernel so
        # the equivalence covers the whole cold path, not just storage
        tester = _tester()
        expected = {
            sid: tester.test(reference.history(sid)) for sid in servers
        }
        for backend in ("columnar", "mmap"):
            led = ledgers[backend]
            assert led.servers() == set(servers)
            assert led.feedback_graph() == ref_graph
            histories = [led.history(sid).outcomes() for sid in servers]
            folded = fold_cold_batch(histories, tester)
            for sid, (report, _) in zip(servers, folded):
                assert report == expected[sid], f"{backend} diverged on {sid}"
            for sid in servers:
                assert led.feedbacks_for_server(sid) == reference.feedbacks_for_server(
                    sid
                )

    @given(spec=population)
    @settings(max_examples=10, deadline=None)
    def test_round_trip_through_persistence(self, spec, tmp_path_factory):
        """Closing and reopening the mmap ledger loses nothing."""
        events = _stream(spec)
        root = tmp_path_factory.mktemp("ledger-rt")
        path = str(root / "led.bin")
        with FeedbackLedger(backend="mmap", path=path) as led:
            led.record_many(events)
            graph = led.feedback_graph()
        with FeedbackLedger(backend="mmap", path=path) as reopened:
            assert reopened.feedback_graph() == graph
            assert len(reopened) == len(events)


class TestChaosEquivalence:
    @pytest.mark.parametrize("chaos_seed", CHAOS_SEEDS)
    @given(spec=population)
    @settings(max_examples=5, deadline=None)
    def test_fault_decisions_identical_across_backends(
        self, chaos_seed, spec, tmp_path_factory
    ):
        """A fresh same-seed fault plan per backend, the same per-event
        invocation sequence: every backend must fold and quarantine the
        exact same events and agree on the surviving state."""
        events = _stream(spec)
        folded_sets = {}
        graphs = {}
        for backend in BACKENDS:
            quarantine = Quarantine(name=f"eq-{backend}")
            led = _ledger(
                backend,
                tmp_path_factory,
                f"chaos-{backend}-{chaos_seed}",
                quarantine=quarantine,
            )
            plan = FaultPlan(seed=chaos_seed)
            plan.arm("feedback.ledger.fold", "exception", probability=0.3)
            folded = []
            with res.activate(plan):
                for i, fb in enumerate(events):
                    if led.record(fb):
                        folded.append(i)
            folded_sets[backend] = folded
            graphs[backend] = led.feedback_graph()
            assert len(folded) + quarantine.depth == len(events)
        assert folded_sets["columnar"] == folded_sets["memory"]
        assert folded_sets["mmap"] == folded_sets["memory"]
        assert graphs["columnar"] == graphs["memory"]
        assert graphs["mmap"] == graphs["memory"]
