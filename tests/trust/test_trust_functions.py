"""Tests for the history-based trust functions (average/weighted/beta/decay)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.feedback.history import TransactionHistory
from repro.trust.average import AverageTrust
from repro.trust.beta import BetaReputationTrust
from repro.trust.decay import DecayTrust
from repro.trust.trustguard import TrustGuardTrust
from repro.trust.weighted import WeightedTrust

ALL_FUNCTIONS = [
    AverageTrust(),
    WeightedTrust(0.5),
    WeightedTrust(0.1),
    BetaReputationTrust(),
    BetaReputationTrust(forgetting=0.95),
    DecayTrust(gamma=0.98),
    DecayTrust(gamma=1.0),
    TrustGuardTrust(),
    TrustGuardTrust(alpha=0.2, beta=0.8, gamma=0.6, period=5),
]

outcome_lists = st.lists(st.integers(min_value=0, max_value=1), max_size=80)


class TestAverageTrust:
    def test_simple_ratio(self):
        assert AverageTrust().score([1, 1, 1, 0]) == pytest.approx(0.75)

    def test_empty_returns_prior(self):
        assert AverageTrust(prior=0.3).score([]) == pytest.approx(0.3)

    def test_accepts_history_object(self):
        h = TransactionHistory.from_outcomes([1, 0])
        assert AverageTrust().score(h) == pytest.approx(0.5)

    def test_order_insensitive(self):
        assert AverageTrust().score([1, 1, 0, 0]) == AverageTrust().score([0, 0, 1, 1])

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            AverageTrust(prior=1.5)

    def test_peek(self):
        tracker = AverageTrust().tracker()
        tracker.update_many([1, 1, 1])
        assert tracker.peek(0) == pytest.approx(0.75)
        assert tracker.value == pytest.approx(1.0)  # peek did not mutate


class TestWeightedTrust:
    def test_recurrence(self):
        # R = 0.5 initially; good: 0.75; bad: 0.375
        tracker = WeightedTrust(0.5).tracker()
        tracker.update(1)
        assert tracker.value == pytest.approx(0.75)
        tracker.update(0)
        assert tracker.value == pytest.approx(0.375)

    def test_bad_transaction_halves_trust(self):
        # the paper's key observation for lambda = 0.5
        tracker = WeightedTrust(0.5).tracker()
        tracker.update_many([1] * 50)
        before = tracker.value
        tracker.update(0)
        assert tracker.value == pytest.approx(before / 2)

    def test_two_to_three_goods_recover_over_09(self):
        # paper: "after each bad transaction, the attacker needs to conduct
        # 2~3 good transactions to ensure its trust value to be over 0.9"
        tracker = WeightedTrust(0.5).tracker()
        tracker.update_many([1] * 50)
        tracker.update(0)
        goods = 0
        while tracker.value < 0.9:
            tracker.update(1)
            goods += 1
        assert goods in (2, 3)

    def test_closed_form_matches_tracker(self):
        outcomes = np.random.default_rng(0).integers(0, 2, size=100)
        fn = WeightedTrust(0.3, initial=0.6)
        tracker = fn.tracker()
        tracker.update_many(outcomes)
        assert fn.score(outcomes) == pytest.approx(tracker.value, abs=1e-12)

    def test_order_sensitive(self):
        fn = WeightedTrust(0.5)
        assert fn.score([0, 1, 1]) > fn.score([1, 1, 0])

    def test_lambda_one_is_last_outcome(self):
        fn = WeightedTrust(1.0)
        assert fn.score([0, 0, 1]) == pytest.approx(1.0)
        assert fn.score([1, 1, 0]) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            WeightedTrust(0.0)
        with pytest.raises(ValueError):
            WeightedTrust(0.5, initial=-0.1)


class TestBetaReputation:
    def test_uniform_prior(self):
        assert BetaReputationTrust().score([]) == pytest.approx(0.5)

    def test_posterior_mean(self):
        # 3 positive, 1 negative -> (3+1)/(4+2)
        assert BetaReputationTrust().score([1, 1, 1, 0]) == pytest.approx(4 / 6)

    def test_forgetting_weights_recent(self):
        fn = BetaReputationTrust(forgetting=0.9)
        assert fn.score([0] * 20 + [1] * 20) > fn.score([1] * 20 + [0] * 20)

    def test_no_forgetting_order_insensitive(self):
        fn = BetaReputationTrust()
        assert fn.score([0, 1, 1]) == pytest.approx(fn.score([1, 1, 0]))

    def test_evidence_exposed(self):
        tracker = BetaReputationTrust().tracker()
        tracker.update_many([1, 1, 0])
        assert tracker.evidence == (2.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BetaReputationTrust(forgetting=0.0)


class TestDecayTrust:
    def test_gamma_one_equals_average(self):
        outcomes = np.random.default_rng(1).integers(0, 2, size=60)
        assert DecayTrust(gamma=1.0).score(outcomes) == pytest.approx(
            AverageTrust().score(outcomes)
        )

    def test_recent_outcomes_weigh_more(self):
        fn = DecayTrust(gamma=0.9)
        assert fn.score([0] * 10 + [1] * 10) > fn.score([1] * 10 + [0] * 10)

    def test_empty_returns_prior(self):
        assert DecayTrust(prior=0.7).score([]) == pytest.approx(0.7)

    def test_closed_form_matches_tracker(self):
        outcomes = np.random.default_rng(2).integers(0, 2, size=120)
        fn = DecayTrust(gamma=0.93)
        tracker = fn.tracker()
        tracker.update_many(outcomes)
        assert fn.score(outcomes) == pytest.approx(tracker.value, abs=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayTrust(gamma=1.0001)
        with pytest.raises(ValueError):
            DecayTrust(gamma=0.9, prior=2.0)


class TestCrossFunctionInvariants:
    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    @given(outcomes=outcome_lists)
    def test_property_score_in_unit_interval(self, fn, outcomes):
        assert 0.0 <= fn.score(outcomes) <= 1.0

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    @given(outcomes=outcome_lists)
    def test_property_tracker_matches_score(self, fn, outcomes):
        tracker = fn.tracker()
        tracker.update_many(outcomes)
        assert tracker.value == pytest.approx(fn.score(outcomes), abs=1e-9)

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    @given(outcomes=outcome_lists)
    def test_property_peek_equals_update(self, fn, outcomes):
        tracker = fn.tracker()
        tracker.update_many(outcomes)
        for outcome in (0, 1):
            peeked = tracker.peek(outcome)
            clone = tracker.copy()
            clone.update(outcome)
            assert peeked == pytest.approx(clone.value, abs=1e-12)

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    def test_all_good_history_high_trust(self, fn):
        assert fn.score([1] * 200) > 0.9

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    def test_all_bad_history_low_trust(self, fn):
        assert fn.score([0] * 200) < 0.1

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    def test_copy_is_independent(self, fn):
        tracker = fn.tracker()
        tracker.update_many([1] * 10)
        clone = tracker.copy()
        clone.update(0)
        tracker_value_after = tracker.value
        clone.update(0)
        assert tracker.value == tracker_value_after

    @pytest.mark.parametrize("fn", ALL_FUNCTIONS, ids=lambda f: repr(f))
    def test_update_rejects_non_binary(self, fn):
        tracker = fn.tracker()
        with pytest.raises(ValueError):
            tracker.update(2)
        with pytest.raises(ValueError):
            tracker.peek(-1)

    def test_score_rejects_non_binary_sequences(self):
        with pytest.raises(ValueError):
            AverageTrust().score([0, 1, 2])
