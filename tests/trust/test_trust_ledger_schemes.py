"""Tests for the ledger-based schemes (PeerTrust, EigenTrust) and the registry."""

import pytest

from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.trust import (
    AverageTrust,
    EigenTrust,
    PeerTrust,
    available_trust_functions,
    make_trust_function,
    register_trust_function,
)


def _fb(t, server, client, good=True):
    return Feedback(
        time=float(t),
        server=server,
        client=client,
        rating=Rating.POSITIVE if good else Rating.NEGATIVE,
    )


def _build_ledger():
    """Two servers: s-good (praised by everyone), s-bad (panned by everyone)."""
    ledger = FeedbackLedger()
    t = 0
    for round_ in range(10):
        for client in ("c1", "c2", "c3"):
            t += 1
            ledger.record(_fb(t, "s-good", client, good=True))
            t += 1
            ledger.record(_fb(t, "s-bad", client, good=False))
    return ledger


class TestPeerTrust:
    def test_separates_good_from_bad(self):
        ledger = _build_ledger()
        pt = PeerTrust()
        assert pt.score_server("s-good", ledger) > 0.9
        assert pt.score_server("s-bad", ledger) < 0.1

    def test_unknown_server_gets_prior(self):
        assert PeerTrust(prior=0.4).score_server("nope", _build_ledger()) == 0.4

    def test_unanimous_community_equals_average(self):
        # when every client rates identically, credibilities are equal and
        # PeerTrust reduces to the plain satisfaction ratio
        ledger = FeedbackLedger()
        t = 0
        for client in ("c0", "c1", "c2"):
            for outcome in (1, 1, 1, 0):
                t += 1
                ledger.record(_fb(t, "s", client, good=bool(outcome)))
        expected = AverageTrust().score([1, 1, 1, 0])
        assert PeerTrust().score_server("s", ledger) == pytest.approx(expected)

    def test_dissenting_rater_downweighted(self):
        # c-liar rates s-good negatively while three honest clients agree
        # it is good; the liar's low credibility shrinks its impact, so
        # PeerTrust stays above the raw average.
        ledger = _build_ledger()
        t = 1000
        for _ in range(10):
            t += 1
            ledger.record(_fb(t, "s-good", "c-liar", good=False))
        raw_average = 30 / 40  # 30 positives, 10 liar negatives
        assert PeerTrust().score_server("s-good", ledger) > raw_average

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            PeerTrust(prior=-0.1)


class TestEigenTrust:
    def test_global_trust_is_distribution(self):
        trust = EigenTrust().global_trust(_build_ledger())
        assert pytest.approx(sum(trust.values()), abs=1e-6) == 1.0
        assert all(v >= 0 for v in trust.values())

    def test_good_server_ranked_above_bad(self):
        trust = EigenTrust().global_trust(_build_ledger())
        assert trust["s-good"] > trust["s-bad"]

    def test_score_normalized_to_unit_interval(self):
        ledger = _build_ledger()
        et = EigenTrust()
        assert et.score_server("s-good", ledger) == pytest.approx(1.0)
        assert 0.0 <= et.score_server("s-bad", ledger) <= 1.0

    def test_unknown_server_scores_zero(self):
        assert EigenTrust().score_server("nope", _build_ledger()) == 0.0

    def test_empty_ledger(self):
        assert EigenTrust().global_trust(FeedbackLedger()) == {}

    def test_pretrusted_peers_bias_restart(self):
        ledger = _build_ledger()
        biased = EigenTrust(restart=0.5, pretrusted=["c1"]).global_trust(ledger)
        uniform = EigenTrust(restart=0.5).global_trust(ledger)
        assert biased["c1"] > uniform["c1"]

    def test_validation(self):
        with pytest.raises(ValueError):
            EigenTrust(restart=1.0)
        with pytest.raises(ValueError):
            EigenTrust(max_iterations=0)


class TestRegistry:
    def test_all_names_present(self):
        names = available_trust_functions()
        assert {"average", "weighted", "beta", "decay", "peertrust", "eigentrust"} <= set(names)

    def test_make_with_kwargs(self):
        fn = make_trust_function("weighted", lam=0.25)
        assert fn.lam == 0.25

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="average"):
            make_trust_function("nope")

    def test_register_custom_and_reject_duplicates(self):
        register_trust_function("custom-for-test", AverageTrust)
        assert isinstance(make_trust_function("custom-for-test"), AverageTrust)
        with pytest.raises(ValueError):
            register_trust_function("custom-for-test", AverageTrust)
