"""Tests for the TrustGuard-style PID trust function."""

import numpy as np
import pytest

from repro.trust.average import AverageTrust
from repro.trust.trustguard import TrustGuardTrust


class TestSteadyStates:
    def test_consistently_good_server(self):
        assert TrustGuardTrust().score([1] * 300) == pytest.approx(1.0)

    def test_consistently_bad_server(self):
        assert TrustGuardTrust().score([0] * 300) == pytest.approx(0.0)

    def test_empty_history_prior(self):
        assert TrustGuardTrust(prior=0.5).score([]) == pytest.approx(0.5)

    def test_honest_mid_quality(self):
        rng = np.random.default_rng(1)
        outcomes = (rng.random(1000) < 0.8).astype(int)
        assert TrustGuardTrust().score(outcomes) == pytest.approx(0.8, abs=0.08)


class TestAntiOscillation:
    def test_downswing_punished_harder_than_average(self):
        # after a bad burst the derivative penalty bites: TrustGuard drops
        # far below what the forgiving average shows
        prep = [1] * 500
        burst = [0] * 10
        trace = prep + burst
        assert TrustGuardTrust().score(trace) < AverageTrust().score(trace) - 0.3

    def test_recovery_is_gradual(self):
        fn = TrustGuardTrust()
        tracker = fn.tracker()
        tracker.update_many([1] * 500 + [0] * 10)
        dipped = tracker.value
        tracker.update_many([1] * 10)  # one good period
        assert tracker.value > dipped
        assert tracker.value < 1.0  # the integral remembers the burst

    def test_oscillator_dips_below_threshold_each_cycle(self):
        # a 10-bad/90-good oscillator keeps ratio 0.9; TrustGuard's value
        # right after each bad period falls well below 0.9
        fn = TrustGuardTrust()
        tracker = fn.tracker()
        tracker.update_many([1] * 200)
        tracker.update_many([0] * 10)
        assert tracker.value < 0.75

    def test_reduces_to_average_without_pid_terms(self):
        fn = TrustGuardTrust(alpha=0.0, beta=1.0, gamma=0.0, period=10)
        rng = np.random.default_rng(2)
        outcomes = (rng.random(500) < 0.85).astype(int)
        # integral over complete periods == average over those periods
        expected = outcomes.reshape(50, 10).mean()
        assert fn.score(outcomes) == pytest.approx(expected)


class TestTrackerProtocol:
    def test_peek_matches_update_mid_period(self):
        tracker = TrustGuardTrust().tracker()
        tracker.update_many([1] * 15)  # mid-period
        peeked = tracker.peek(0)
        clone = tracker.copy()
        clone.update(0)
        assert peeked == pytest.approx(clone.value)

    def test_peek_matches_update_at_period_boundary(self):
        tracker = TrustGuardTrust(period=10).tracker()
        tracker.update_many([1] * 19)  # next update completes a period
        for outcome in (0, 1):
            clone = tracker.copy()
            clone.update(outcome)
            assert tracker.peek(outcome) == pytest.approx(clone.value)

    def test_copy_independent(self):
        tracker = TrustGuardTrust().tracker()
        tracker.update_many([1] * 30)
        clone = tracker.copy()
        clone.update_many([0] * 30)
        assert tracker.value > clone.value

    def test_value_always_in_unit_interval(self):
        rng = np.random.default_rng(3)
        tracker = TrustGuardTrust(gamma=0.9).tracker()
        for _ in range(500):
            tracker.update(int(rng.random() < 0.5))
            assert 0.0 <= tracker.value <= 1.0


class TestValidation:
    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            TrustGuardTrust(alpha=-0.1)
        with pytest.raises(ValueError):
            TrustGuardTrust(alpha=0.7, beta=0.7)
        with pytest.raises(ValueError):
            TrustGuardTrust(alpha=0.0, beta=0.0)
        with pytest.raises(ValueError):
            TrustGuardTrust(period=0)
        with pytest.raises(ValueError):
            TrustGuardTrust(prior=1.5)

    def test_registry_integration(self):
        from repro.trust.registry import make_trust_function

        fn = make_trust_function("trustguard", period=5)
        assert isinstance(fn, TrustGuardTrust)

    def test_update_rejects_non_binary(self):
        tracker = TrustGuardTrust().tracker()
        with pytest.raises(ValueError):
            tracker.update(2)
        with pytest.raises(ValueError):
            tracker.peek(-1)
