"""Tests for the H-Trust (h-index) reputation baseline."""

import pytest

from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.trust.htrust import HTrust, h_index


def _ledger(entries):
    """entries: iterable of (time, client, good) for server 's'."""
    ledger = FeedbackLedger()
    for t, client, good in entries:
        ledger.record(
            Feedback(
                time=float(t),
                server="s",
                client=client,
                rating=Rating.POSITIVE if good else Rating.NEGATIVE,
            )
        )
    return ledger


class TestHIndex:
    def test_classic_examples(self):
        assert h_index([]) == 0
        assert h_index([0, 0]) == 0
        assert h_index([1]) == 1
        assert h_index([5, 4, 4, 2, 1]) == 3
        assert h_index([10, 10, 10]) == 3
        assert h_index([1, 1, 1, 1, 1]) == 1

    def test_order_invariant(self):
        assert h_index([1, 5, 2, 4, 4]) == h_index([5, 4, 4, 2, 1])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            h_index([3, -1])


class TestHTrust:
    def test_breadth_required(self):
        # one devoted client with 50 positives: index stays at 1
        narrow = _ledger((t, "fan", True) for t in range(50))
        # ten clients with 10 positives each: index 10
        broad = _ledger(
            (t, f"c{t % 10}", True) for t in range(100)
        )
        ht = HTrust(saturation=10)
        assert ht.raw_index("s", narrow) == 1
        assert ht.raw_index("s", broad) == 10
        assert ht.score_server("s", narrow) == pytest.approx(0.1)
        assert ht.score_server("s", broad) == pytest.approx(1.0)

    def test_colluder_ring_capped_at_ring_size(self):
        # 5 colluders pumping 100 fakes each: h-index cannot exceed 5 —
        # the supporter-base intuition the paper builds its Sec. 4 on
        ring = _ledger((t, f"colluder{t % 5}", True) for t in range(500))
        assert HTrust(saturation=10).raw_index("s", ring) == 5

    def test_negative_feedback_does_not_count(self):
        mixed = _ledger(
            [(0, "a", True), (1, "a", False), (2, "b", False), (3, "b", False)]
        )
        # a has 1 positive, b has 0 -> h = 1
        assert HTrust().raw_index("s", mixed) == 1

    def test_unknown_server_scores_zero(self):
        assert HTrust().score_server("ghost", FeedbackLedger()) == 0.0

    def test_score_clamped_to_one(self):
        big = _ledger((t, f"c{t % 30}", True) for t in range(900))
        assert HTrust(saturation=5).score_server("s", big) == 1.0

    def test_registry(self):
        from repro.trust.registry import make_trust_function

        assert isinstance(make_trust_function("htrust", saturation=5), HTrust)

    def test_validation(self):
        with pytest.raises(ValueError):
            HTrust(saturation=0)

    def test_two_phase_integration(self, paper_config, shared_calibrator):
        import numpy as np

        from repro.core.testing import SingleBehaviorTest
        from repro.core.two_phase import TwoPhaseAssessor
        from repro.core.verdict import AssessmentStatus

        rng = np.random.default_rng(3)
        ledger = _ledger(
            (t, f"c{int(rng.integers(0, 20))}", bool(rng.random() < 0.95))
            for t in range(400)
        )
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
            trust_function=HTrust(saturation=10),
            trust_threshold=0.9,
        )
        result = assessor.assess(ledger.history("s"), ledger=ledger)
        assert result.status in (AssessmentStatus.TRUSTED, AssessmentStatus.UNTRUSTED)
