"""Tests for repro.simulation.server and repro.simulation.metrics."""

import numpy as np
import pytest

from repro.simulation.metrics import ServerMetrics, SimulationMetrics
from repro.simulation.server import (
    DriftingHonestBehavior,
    HonestBehavior,
    ScriptedBehavior,
)


class TestHonestBehavior:
    def test_rate(self):
        rng = np.random.default_rng(1)
        behavior = HonestBehavior(0.8)
        outcomes = [behavior.next_outcome(rng) for _ in range(5000)]
        assert np.mean(outcomes) == pytest.approx(0.8, abs=0.02)

    def test_degenerate(self):
        rng = np.random.default_rng(2)
        assert HonestBehavior(1.0).next_outcome(rng) == 1
        assert HonestBehavior(0.0).next_outcome(rng) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            HonestBehavior(1.5)


class TestDriftingBehavior:
    def test_time_varying_rate(self):
        rng = np.random.default_rng(3)
        behavior = DriftingHonestBehavior(lambda t: 1.0 if t < 10 else 0.0)
        outcomes = [behavior.next_outcome(rng) for _ in range(20)]
        assert outcomes[:10] == [1] * 10
        assert outcomes[10:] == [0] * 10

    def test_invalid_p_of_t(self):
        rng = np.random.default_rng(4)
        behavior = DriftingHonestBehavior(lambda t: 2.0)
        with pytest.raises(ValueError):
            behavior.next_outcome(rng)


class TestScriptedBehavior:
    def test_replays_script_then_tail(self):
        rng = np.random.default_rng(5)
        behavior = ScriptedBehavior([0, 1, 0], tail=1)
        assert [behavior.next_outcome(rng) for _ in range(5)] == [0, 1, 0, 1, 1]
        assert behavior.exhausted

    def test_custom_tail(self):
        rng = np.random.default_rng(6)
        behavior = ScriptedBehavior([1], tail=0)
        behavior.next_outcome(rng)
        assert behavior.next_outcome(rng) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScriptedBehavior([0, 2])
        with pytest.raises(ValueError):
            ScriptedBehavior([[0], [1]])
        with pytest.raises(ValueError):
            ScriptedBehavior([1], tail=5)


class TestMetrics:
    def test_server_metrics_derived_values(self):
        m = ServerMetrics(transactions=10, good_transactions=7, requests=20)
        assert m.bad_transactions == 3
        assert m.satisfaction_rate == pytest.approx(0.7)
        assert m.acceptance_rate == pytest.approx(0.5)

    def test_zero_division_guards(self):
        m = ServerMetrics()
        assert m.satisfaction_rate == 0.0
        assert m.acceptance_rate == 0.0

    def test_simulation_metrics_aggregation(self):
        metrics = SimulationMetrics()
        metrics.server("a").transactions = 5
        metrics.server("a").good_transactions = 5
        metrics.server("b").transactions = 5
        metrics.server("b").good_transactions = 3
        assert metrics.total_transactions == 10
        assert metrics.total_good == 8
        assert metrics.overall_satisfaction == pytest.approx(0.8)

    def test_summary_keys(self):
        metrics = SimulationMetrics()
        summary = metrics.summary()
        assert set(summary) == {
            "steps",
            "transactions",
            "requests",
            "assessments",
            "satisfaction",
            "refusals_suspicious",
            "refusals_trust",
        }

    def test_empty_satisfaction_zero(self):
        assert SimulationMetrics().overall_satisfaction == 0.0
