"""Tests for repro.simulation.workloads."""

import numpy as np
import pytest

from repro.core.collusion import CollusionResilientTest
from repro.core.temporal import TemporalBehaviorTest, hour_of_day_bucket
from repro.feedback.history import TransactionHistory
from repro.simulation.workloads import (
    diurnal_feedback_history,
    diurnal_quality,
    zipf_client_weights,
    zipf_feedback_history,
)


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_client_weights(50)
        assert weights.sum() == pytest.approx(1.0)
        assert (np.diff(weights) <= 0).all()

    def test_skew_increases_with_exponent(self):
        flat = zipf_client_weights(50, exponent=0.5)
        steep = zipf_client_weights(50, exponent=2.0)
        assert steep[0] > flat[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_client_weights(0)
        with pytest.raises(ValueError):
            zipf_client_weights(10, exponent=0)


class TestZipfHistory:
    def test_basic_shape(self):
        feedbacks = zipf_feedback_history(500, "srv", seed=1)
        assert len(feedbacks) == 500
        assert all(fb.server == "srv" for fb in feedbacks)
        rate = np.mean([fb.outcome for fb in feedbacks])
        assert rate == pytest.approx(0.95, abs=0.03)

    def test_activity_is_skewed(self):
        feedbacks = zipf_feedback_history(2000, "srv", n_clients=100, seed=2)
        history = TransactionHistory.from_feedbacks(feedbacks)
        sizes = sorted(
            (len(v) for v in history.group_by_client().values()), reverse=True
        )
        # the heaviest client dwarfs the median one
        assert sizes[0] > 10 * sizes[len(sizes) // 2]

    def test_honest_zipf_passes_collusion_resilient_test(
        self, paper_config, shared_calibrator
    ):
        # the key property: heterogeneous group sizes alone (no collusion)
        # must NOT trip the issuer-grouped reordering test
        test_ = CollusionResilientTest(paper_config, shared_calibrator)
        passes = 0
        for s in range(10):
            feedbacks = zipf_feedback_history(800, "srv", seed=100 + s)
            history = TransactionHistory.from_feedbacks(feedbacks)
            passes += test_.test(history).passed
        assert passes >= 8

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_feedback_history(-1, "srv")
        with pytest.raises(ValueError):
            zipf_feedback_history(10, "srv", p=1.5)


class TestDiurnalQuality:
    def test_dip_at_peak_hour(self):
        quality = diurnal_quality(base=0.97, dip=0.3, peak_hour=20.0)
        assert quality(20.0) == pytest.approx(0.67)
        assert quality(8.0) > 0.95  # far from the peak

    def test_circular_distance(self):
        quality = diurnal_quality(peak_hour=23.0, width=2.0)
        # 1am is 2 hours from 11pm across midnight
        assert quality(1.0) < quality(11.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_quality(base=1.5)
        with pytest.raises(ValueError):
            diurnal_quality(base=0.5, dip=0.6)
        with pytest.raises(ValueError):
            diurnal_quality(width=0)


class TestDiurnalHistory:
    def test_quality_tracks_curve(self):
        feedbacks = diurnal_feedback_history(
            5000, "srv", transactions_per_hour=10, seed=3
        )
        peak = [fb.outcome for fb in feedbacks if 19 <= fb.time % 24 < 21]
        calm = [fb.outcome for fb in feedbacks if 6 <= fb.time % 24 < 10]
        assert np.mean(peak) < np.mean(calm)

    def test_temporal_test_separates_buckets(self, paper_config, shared_calibrator):
        # business/off-hours bucketing with an off-hours-dipping server:
        # each bucket individually honest
        quality = diurnal_quality(base=0.97, dip=0.35, peak_hour=21.0, width=2.0)
        feedbacks = diurnal_feedback_history(
            2400, "srv", quality=quality, transactions_per_hour=2, seed=4
        )
        history = TransactionHistory.from_feedbacks(feedbacks)
        temporal = TemporalBehaviorTest(
            hour_of_day_bucket, paper_config, shared_calibrator
        )
        report = temporal.test(history)
        assert set(report.buckets) == {"business", "off-hours"}

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_feedback_history(-1, "srv")
        with pytest.raises(ValueError):
            diurnal_feedback_history(10, "srv", transactions_per_hour=0)
        with pytest.raises(ValueError):
            diurnal_feedback_history(10, "srv", quality=lambda t: 2.0)
