"""Tests for repro.simulation.arrival."""

import numpy as np
import pytest

from repro.simulation.arrival import ArrivalModel, ClientExperience, ClientStateTable


class TestArrivalModel:
    def test_paper_defaults(self):
        model = ArrivalModel()
        assert (model.a1, model.a2, model.a3) == (0.5, 0.9, 0.2)

    def test_coefficients_by_experience(self):
        model = ArrivalModel()
        assert model.coefficient(ClientExperience.NEVER_SERVED) == 0.5
        assert model.coefficient(ClientExperience.RECENT_GOOD) == 0.9
        assert model.coefficient(ClientExperience.RECENT_BAD) == 0.2

    def test_request_probability_scales_with_reputation(self):
        model = ArrivalModel()
        assert model.request_probability(
            ClientExperience.RECENT_GOOD, 0.5
        ) == pytest.approx(0.45)
        assert model.request_probability(ClientExperience.RECENT_GOOD, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrivalModel(a1=1.5)
        with pytest.raises(ValueError):
            ArrivalModel().request_probability(ClientExperience.NEVER_SERVED, 1.5)


class TestClientStateTable:
    def test_initial_state_never_served(self):
        table = ClientStateTable(["a", "b"], ArrivalModel())
        assert table.experience("a") is ClientExperience.NEVER_SERVED

    def test_record_service_transitions(self):
        table = ClientStateTable(["a"], ArrivalModel())
        table.record_service("a", 1)
        assert table.experience("a") is ClientExperience.RECENT_GOOD
        table.record_service("a", 0)
        assert table.experience("a") is ClientExperience.RECENT_BAD

    def test_unknown_client_raises(self):
        table = ClientStateTable(["a"], ArrivalModel())
        with pytest.raises(KeyError):
            table.experience("zzz")
        with pytest.raises(KeyError):
            table.record_service("zzz", 1)

    def test_invalid_outcome(self):
        table = ClientStateTable(["a"], ArrivalModel())
        with pytest.raises(ValueError):
            table.record_service("a", 2)

    def test_duplicate_clients_rejected(self):
        with pytest.raises(ValueError):
            ClientStateTable(["a", "a"], ArrivalModel())

    def test_empty_clients_rejected(self):
        with pytest.raises(ValueError):
            ClientStateTable([], ArrivalModel())

    def test_sample_requesters_rates(self):
        # 1000 never-served clients, reputation 0.9: expect ~a1*0.9 = 45%
        clients = [f"c{i}" for i in range(1000)]
        table = ClientStateTable(clients, ArrivalModel())
        requesters = table.sample_requesters(0.9, seed=1)
        assert 0.40 <= len(requesters) / 1000 <= 0.50

    def test_cheated_clients_mostly_stay_away(self):
        clients = [f"c{i}" for i in range(1000)]
        table = ClientStateTable(clients, ArrivalModel())
        for c in clients:
            table.record_service(c, 0)
        requesters = table.sample_requesters(0.9, seed=2)
        assert 0.13 <= len(requesters) / 1000 <= 0.23  # ~a3 * 0.9 = 18%

    def test_zero_reputation_no_requests(self):
        table = ClientStateTable(["a", "b", "c"], ArrivalModel())
        assert table.sample_requesters(0.0, seed=3) == []

    def test_reputation_clamped(self):
        table = ClientStateTable(["a"], ArrivalModel())
        # out-of-range reputations are clamped rather than erroring (trust
        # functions can emit tiny float drift)
        table.sample_requesters(1.0 + 1e-12, seed=4)

    def test_counts_by_experience(self):
        table = ClientStateTable(["a", "b", "c"], ArrivalModel())
        table.record_service("a", 1)
        table.record_service("b", 0)
        counts = table.counts_by_experience()
        assert counts[ClientExperience.RECENT_GOOD] == 1
        assert counts[ClientExperience.RECENT_BAD] == 1
        assert counts[ClientExperience.NEVER_SERVED] == 1

    def test_deterministic_sampling(self):
        clients = [f"c{i}" for i in range(50)]
        table = ClientStateTable(clients, ArrivalModel())
        assert table.sample_requesters(0.8, seed=9) == table.sample_requesters(
            0.8, seed=9
        )
