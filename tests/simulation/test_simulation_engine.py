"""Tests for repro.simulation.engine and repro.simulation.scenario."""

import numpy as np
import pytest

from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.simulation.engine import ReputationSimulation
from repro.simulation.scenario import ScenarioConfig, build_simulation
from repro.simulation.server import HonestBehavior, ScriptedBehavior
from repro.trust.average import AverageTrust
from repro.trust.eigentrust import EigenTrust


def _assessor(screen=None, threshold=0.9):
    return TwoPhaseAssessor(
        behavior_test=screen,
        trust_function=AverageTrust(),
        trust_threshold=threshold,
    )


def _simulation(**overrides):
    defaults = dict(
        servers={"srv": HonestBehavior(0.95)},
        clients=["c1", "c2", "c3"],
        assessor=_assessor(),
        bootstrap_transactions=50,
        seed=1,
    )
    defaults.update(overrides)
    return ReputationSimulation(**defaults)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            _simulation(servers={})
        with pytest.raises(ValueError):
            _simulation(clients=[])
        with pytest.raises(ValueError):
            _simulation(clients=["srv"])  # id used as both roles
        with pytest.raises(ValueError):
            _simulation(bootstrap_transactions=-1)
        with pytest.raises(ValueError):
            _simulation(exploration=1.5)

    def test_bootstrap_seeds_history(self):
        sim = _simulation(bootstrap_transactions=30)
        assert len(sim.ledger.history("srv")) == 30

    def test_prior_histories_seed_ledger(self):
        prior = np.ones(100, dtype=np.int8)
        sim = _simulation(
            bootstrap_transactions=0, prior_histories={"srv": prior}
        )
        history = sim.ledger.history("srv")
        assert len(history) == 100
        assert history.p_hat == 1.0

    def test_prior_history_unknown_server_rejected(self):
        with pytest.raises(ValueError):
            _simulation(prior_histories={"ghost": [1, 0]})

    def test_prior_history_non_binary_rejected(self):
        with pytest.raises(ValueError):
            _simulation(prior_histories={"srv": [1, 2]})


class TestDynamics:
    def test_honest_server_transacts(self):
        sim = _simulation()
        metrics = sim.run(30)
        assert metrics.steps == 30
        assert metrics.server("srv").transactions > 0
        assert metrics.overall_satisfaction > 0.8

    def test_reputation_of_matches_trust_function(self):
        sim = _simulation()
        sim.run(5)
        history = sim.ledger.history("srv")
        assert sim.reputation_of("srv") == pytest.approx(history.p_hat)

    def test_reputation_of_unknown_server_is_zero(self):
        sim = _simulation(bootstrap_transactions=0)
        assert sim.reputation_of("srv") == 0.0

    def test_bad_server_gets_trust_refusals(self):
        sim = _simulation(
            servers={"bad": HonestBehavior(0.3)}, bootstrap_transactions=60
        )
        metrics = sim.run(30)
        assert metrics.server("bad").refusals_trust > 0
        assert metrics.server("bad").transactions == 0

    def test_screen_blocks_scripted_burst(
        self, paper_config, shared_calibrator
    ):
        burst = ScriptedBehavior(np.zeros(500, dtype=np.int8))
        prior = (np.random.default_rng(7).random(400) < 0.95).astype(np.int8)
        screened = ReputationSimulation(
            servers={"attacker": burst},
            clients=[f"c{i}" for i in range(20)],
            assessor=_assessor(SingleBehaviorTest(paper_config, shared_calibrator)),
            bootstrap_transactions=0,
            prior_histories={"attacker": prior},
            seed=2,
        )
        metrics = screened.run(40)
        served_bads = metrics.server("attacker").bad_transactions
        assert metrics.server("attacker").refusals_suspicious > 0
        # the screen caps the burst well below what the trust threshold
        # alone would allow (~ 400*0.05/0.1 = 20+ bads before trust dips)
        assert served_bads < 40

    def test_assess_helper(self):
        sim = _simulation()
        sim.run(2)
        assessment = sim.assess("srv")
        assert assessment.status in (
            AssessmentStatus.TRUSTED,
            AssessmentStatus.UNTRUSTED,
            AssessmentStatus.SUSPICIOUS,
        )

    def test_ledger_trust_function_integration(self):
        sim = _simulation(
            assessor=TwoPhaseAssessor(
                trust_function=EigenTrust(), trust_threshold=0.1
            )
        )
        metrics = sim.run(5)
        assert metrics.server("srv").transactions > 0

    def test_run_validation(self):
        with pytest.raises(ValueError):
            _simulation().run(-1)

    def test_deterministic_with_seed(self):
        a = _simulation(seed=42).run(20).summary()
        b = _simulation(seed=42).run(20).summary()
        assert a == b


class TestDhtBackedEcosystem:
    """The full ecosystem running over the decentralized feedback store."""

    def _dht_store(self, n_nodes=6, seed=11):
        from repro.p2p import ChordRing, DistributedFeedbackStore

        ring = ChordRing(replicas=3, seed=seed)
        for i in range(n_nodes):
            ring.add_node(f"storage-{i}")
        return DistributedFeedbackStore(ring=ring)

    def test_runs_and_serves_clients(self):
        sim = _simulation(
            feedback_store=self._dht_store(), bootstrap_transactions=50
        )
        metrics = sim.run(15)
        assert metrics.server("srv").transactions > 0
        assert metrics.overall_satisfaction > 0.8

    def test_attacker_flagged_over_dht(self, paper_config, shared_calibrator):
        burst = ScriptedBehavior(np.zeros(300, dtype=np.int8))
        prior = (np.random.default_rng(12).random(400) < 0.95).astype(np.int8)
        sim = ReputationSimulation(
            servers={"attacker": burst},
            clients=[f"c{i}" for i in range(15)],
            assessor=_assessor(SingleBehaviorTest(paper_config, shared_calibrator)),
            bootstrap_transactions=0,
            prior_histories={"attacker": prior},
            feedback_store=self._dht_store(seed=13),
            seed=14,
        )
        metrics = sim.run(25)
        assert metrics.server("attacker").refusals_suspicious > 0

    def test_feedback_actually_lives_in_the_ring(self):
        store = self._dht_store()
        sim = _simulation(feedback_store=store, bootstrap_transactions=40)
        sim.run(5)
        stored = sum(
            len(values)
            for node in store.ring.nodes.values()
            for values in node.storage.values()
        )
        assert stored >= len(store.feedbacks_for_server("srv"))

    def test_ledger_trust_functions_require_central_store(self):
        with pytest.raises(ValueError, match="FeedbackLedger"):
            _simulation(
                assessor=TwoPhaseAssessor(
                    trust_function=EigenTrust(), trust_threshold=0.5
                ),
                feedback_store=self._dht_store(),
            )


class TestScenario:
    def test_build_population(self):
        config = ScenarioConfig(
            n_honest_servers=2, n_hibernating=1, n_periodic=1, n_clients=10
        )
        sim = build_simulation(config, _assessor(), seed=3)
        servers = {
            s for s in sim.ledger.servers()
        }  # priors mean every server has history
        assert {"honest-0", "honest-1", "hibernating-0", "periodic-0"} <= servers

    def test_prior_histories_established(self):
        config = ScenarioConfig(
            n_honest_servers=1, n_hibernating=1, n_clients=10,
            attack_prep=200, prior_history_size=150, bootstrap_transactions=0,
        )
        sim = build_simulation(config, _assessor(), seed=4)
        assert len(sim.ledger.history("hibernating-0")) == 200
        assert len(sim.ledger.history("honest-0")) == 150
        # the hibernating prior looks honest (the cover reputation)
        assert sim.ledger.history("hibernating-0").p_hat > 0.9

    def test_scenario_deterministic(self):
        config = ScenarioConfig(n_honest_servers=2, n_clients=8)
        a = build_simulation(config, _assessor(), seed=5).run(10).summary()
        b = build_simulation(config, _assessor(), seed=5).run(10).summary()
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_honest_servers=0, n_hibernating=0, n_periodic=0)
        with pytest.raises(ValueError):
            ScenarioConfig(honest_p_range=(0.9, 0.5))
        with pytest.raises(ValueError):
            ScenarioConfig(n_clients=0)
        with pytest.raises(ValueError):
            ScenarioConfig(exploration=-0.1)
