"""Tests for repro.core.collusion (issuer-grouped reordering and tests)."""

import numpy as np
import pytest

from repro.core.collusion import (
    CollusionResilientMultiTest,
    CollusionResilientTest,
    reorder_by_issuer,
    reordered_outcomes,
)
from repro.core.model import generate_honest_outcomes
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating


def _fb(t, client, good=True, server="s"):
    return Feedback(
        time=float(t),
        server=server,
        client=client,
        rating=Rating.POSITIVE if good else Rating.NEGATIVE,
    )


def _honest_feedbacks(n, p, n_clients, seed, server="s"):
    """An honest server's feedbacks: many distinct clients, iid quality."""
    rng = np.random.default_rng(seed)
    return [
        _fb(
            t,
            f"c{int(rng.integers(0, n_clients))}",
            good=bool(rng.random() < p),
            server=server,
        )
        for t in range(n)
    ]


def _collusion_feedbacks(prep, cheats, seed, server="s"):
    """Colluder-boosted attacker: 5 colluders give positives; victims get cheated."""
    rng = np.random.default_rng(seed)
    feedbacks = []
    t = 0
    for _ in range(prep):
        feedbacks.append(_fb(t, f"colluder{t % 5}", good=True, server=server))
        t += 1
    for i in range(cheats):
        feedbacks.append(_fb(t, f"victim{i}", good=False, server=server))
        # a colluder positive after each cheat keeps the ratio high
        t += 1
        feedbacks.append(_fb(t, f"colluder{t % 5}", good=True, server=server))
        t += 1
    return feedbacks


class TestReorder:
    def test_bigger_groups_first(self):
        feedbacks = [
            _fb(1, "a"),
            _fb(2, "b"),
            _fb(3, "a"),
            _fb(4, "c"),
            _fb(5, "a"),
            _fb(6, "b"),
        ]
        reordered = reorder_by_issuer(feedbacks)
        clients = [fb.client for fb in reordered]
        assert clients == ["a", "a", "a", "b", "b", "c"]

    def test_time_order_within_group(self):
        feedbacks = [_fb(3, "a"), _fb(1, "a"), _fb(2, "a")]
        reordered = reorder_by_issuer(feedbacks)
        assert [fb.time for fb in reordered] == [1.0, 2.0, 3.0]

    def test_tie_break_by_first_feedback_time(self):
        feedbacks = [_fb(2, "late"), _fb(1, "early")]
        reordered = reorder_by_issuer(feedbacks)
        assert [fb.client for fb in reordered] == ["early", "late"]

    def test_preserves_multiset(self):
        feedbacks = _honest_feedbacks(100, 0.9, 10, seed=1)
        reordered = reorder_by_issuer(feedbacks)
        assert sorted(f.time for f in reordered) == sorted(f.time for f in feedbacks)

    def test_deterministic(self):
        feedbacks = _honest_feedbacks(60, 0.9, 8, seed=2)
        a = reordered_outcomes(feedbacks)
        b = reordered_outcomes(feedbacks)
        np.testing.assert_array_equal(a, b)

    def test_empty(self):
        assert reorder_by_issuer([]) == []
        assert reordered_outcomes([]).size == 0


class TestCollusionResilientSingle:
    def test_honest_server_passes(self, paper_config, shared_calibrator):
        test_ = CollusionResilientTest(paper_config, shared_calibrator)
        history = TransactionHistory.from_feedbacks(
            _honest_feedbacks(600, 0.95, 40, seed=3)
        )
        assert test_.test(history).passed

    def test_colluder_boosted_attacker_fails(self, paper_config, shared_calibrator):
        test_ = CollusionResilientTest(paper_config, shared_calibrator)
        history = TransactionHistory.from_feedbacks(
            _collusion_feedbacks(prep=200, cheats=20, seed=4)
        )
        # overall ratio is high (220 positives / 20 negatives) but the
        # reordering concentrates the victims' negatives in the tail
        assert history.p_hat > 0.9
        assert not test_.test(history).passed

    def test_bare_outcome_history_rejected(self, paper_config, shared_calibrator):
        test_ = CollusionResilientTest(paper_config, shared_calibrator)
        history = TransactionHistory.from_outcomes([1] * 100)
        with pytest.raises(ValueError):
            test_.test(history)

    def test_accepts_raw_feedback_list(self, paper_config, shared_calibrator):
        test_ = CollusionResilientTest(paper_config, shared_calibrator)
        assert test_.test(_honest_feedbacks(400, 0.95, 30, seed=5)).passed


class TestCollusionResilientMulti:
    def test_honest_server_passes(self, paper_config, shared_calibrator):
        test_ = CollusionResilientMultiTest(paper_config, shared_calibrator)
        history = TransactionHistory.from_feedbacks(
            _honest_feedbacks(500, 0.95, 40, seed=6)
        )
        assert test_.test(history).passed

    def test_recent_collusion_caught_despite_long_history(
        self, paper_config, shared_calibrator
    ):
        # long honest past, then a colluder-covered cheating spree: the
        # time-recent suffixes expose it
        honest_past = _honest_feedbacks(2000, 0.95, 60, seed=7)
        spree = _collusion_feedbacks(prep=0, cheats=15, seed=8)
        shifted = [
            Feedback(
                time=2000.0 + fb.time,
                server=fb.server,
                client=fb.client,
                rating=fb.rating,
            )
            for fb in spree
        ]
        history = TransactionHistory.from_feedbacks(honest_past + shifted)
        report = CollusionResilientMultiTest(paper_config, shared_calibrator).test(
            history
        )
        assert not report.passed

    def test_suffix_schedule_matches_plain_multi(self, paper_config, shared_calibrator):
        test_ = CollusionResilientMultiTest(paper_config, shared_calibrator)
        assert test_.suffix_lengths(200) == [200, 150, 100, 50]

    def test_insufficient_history(self, paper_config, shared_calibrator):
        test_ = CollusionResilientMultiTest(paper_config, shared_calibrator)
        history = TransactionHistory.from_feedbacks(
            _honest_feedbacks(30, 0.9, 5, seed=9)
        )
        report = test_.test(history)
        assert report.passed
        assert report.rounds[0][1].insufficient

    def test_rounds_longest_first(self, paper_config, shared_calibrator):
        test_ = CollusionResilientMultiTest(
            paper_config, shared_calibrator, collect_all=True
        )
        history = TransactionHistory.from_feedbacks(
            _honest_feedbacks(240, 0.95, 20, seed=10)
        )
        lengths = [length for length, _ in test_.test(history).rounds]
        assert lengths == sorted(lengths, reverse=True)
