"""Tests for repro.core.verdict result objects."""

import numpy as np
import pytest

from repro.core.registry import available_behavior_tests, make_behavior_test
from repro.core.verdict import (
    Assessment,
    AssessmentStatus,
    BehaviorVerdict,
    MultiTestReport,
)
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating


def _verdict(passed=True, distance=0.1, threshold=0.3):
    return BehaviorVerdict(
        passed=passed,
        distance=distance,
        threshold=threshold,
        p_hat=0.9,
        n_windows=10,
        window_size=10,
        n_considered=100,
    )


class TestBehaviorVerdict:
    def test_margin(self):
        assert _verdict(distance=0.1, threshold=0.3).margin == pytest.approx(0.2)
        assert _verdict(passed=False, distance=0.5, threshold=0.3).margin < 0

    def test_insufficient_constructor(self):
        v = BehaviorVerdict.insufficient_history(
            passed=True, window_size=10, n_considered=7
        )
        assert v.insufficient
        assert v.passed
        assert v.n_windows == 0
        assert v.n_considered == 7

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _verdict().passed = False


class TestMultiTestReport:
    def test_first_failure_longest_first(self):
        rounds = (
            (300, _verdict(passed=True)),
            (250, _verdict(passed=False, distance=0.9)),
            (200, _verdict(passed=False, distance=0.8)),
        )
        report = MultiTestReport(passed=False, rounds=rounds)
        length, verdict = report.first_failure
        assert length == 250
        assert verdict.distance == 0.9

    def test_first_failure_none_when_passing(self):
        report = MultiTestReport(passed=True, rounds=((100, _verdict()),))
        assert report.first_failure is None

    def test_worst_margin_skips_insufficient(self):
        rounds = (
            (100, _verdict(distance=0.1, threshold=0.3)),
            (
                50,
                BehaviorVerdict.insufficient_history(
                    passed=True, window_size=10, n_considered=30
                ),
            ),
        )
        report = MultiTestReport(passed=True, rounds=rounds)
        assert report.worst_margin == pytest.approx(0.2)

    def test_worst_margin_all_insufficient(self):
        rounds = (
            (
                30,
                BehaviorVerdict.insufficient_history(
                    passed=True, window_size=10, n_considered=30
                ),
            ),
        )
        assert MultiTestReport(passed=True, rounds=rounds).worst_margin == float("inf")

    def test_n_rounds(self):
        report = MultiTestReport(passed=True, rounds=((1, _verdict()), (2, _verdict())))
        assert report.n_rounds == 2


class TestVerdictUnification:
    """Every registered tester returns a BehaviorVerdict."""

    def _rich_history(self) -> TransactionHistory:
        """Feedback-rich history: timestamps, cycling clients, categories."""
        rng = np.random.default_rng(42)
        return TransactionHistory.from_feedbacks(
            Feedback(
                time=float(t) * 3600.0,
                server="srv",
                client=f"client-{t % 5}",
                rating=(
                    Rating.POSITIVE if rng.random() < 0.95 else Rating.NEGATIVE
                ),
                category=("books", "tools")[t % 2],
            )
            for t in range(300)
        )

    @pytest.mark.parametrize("name", sorted(available_behavior_tests()))
    def test_every_registry_tester_returns_a_verdict(
        self, name, paper_config, shared_calibrator
    ):
        kwargs = {"n_categories": 3} if name == "multinomial" else {}
        tester = make_behavior_test(
            name, config=paper_config, calibrator=shared_calibrator, **kwargs
        )
        if name == "multinomial":
            rng = np.random.default_rng(7)
            verdict = tester.test(rng.integers(0, 3, size=300))
        else:
            verdict = tester.test(self._rich_history())
        assert isinstance(verdict, BehaviorVerdict)
        assert isinstance(verdict.passed, bool)
        assert isinstance(verdict.margin, float)


class TestAssessment:
    def test_accepted_only_when_trusted(self):
        for status, accepted in [
            (AssessmentStatus.TRUSTED, True),
            (AssessmentStatus.UNTRUSTED, False),
            (AssessmentStatus.SUSPICIOUS, False),
        ]:
            a = Assessment(status=status, trust_value=0.95, behavior=None)
            assert a.accepted is accepted

    def test_suspicious_flag(self):
        a = Assessment(
            status=AssessmentStatus.SUSPICIOUS, trust_value=None, behavior=None
        )
        assert a.suspicious

    def test_status_values(self):
        assert AssessmentStatus.SUSPICIOUS.value == "suspicious"
        assert AssessmentStatus.TRUSTED.value == "trusted"
        assert AssessmentStatus.UNTRUSTED.value == "untrusted"
