"""Tests for repro.core.verdict result objects."""

import pytest

from repro.core.verdict import (
    Assessment,
    AssessmentStatus,
    BehaviorVerdict,
    MultiTestReport,
)


def _verdict(passed=True, distance=0.1, threshold=0.3):
    return BehaviorVerdict(
        passed=passed,
        distance=distance,
        threshold=threshold,
        p_hat=0.9,
        n_windows=10,
        window_size=10,
        n_considered=100,
    )


class TestBehaviorVerdict:
    def test_margin(self):
        assert _verdict(distance=0.1, threshold=0.3).margin == pytest.approx(0.2)
        assert _verdict(passed=False, distance=0.5, threshold=0.3).margin < 0

    def test_insufficient_constructor(self):
        v = BehaviorVerdict.insufficient_history(
            passed=True, window_size=10, n_considered=7
        )
        assert v.insufficient
        assert v.passed
        assert v.n_windows == 0
        assert v.n_considered == 7

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _verdict().passed = False


class TestMultiTestReport:
    def test_first_failure_longest_first(self):
        rounds = (
            (300, _verdict(passed=True)),
            (250, _verdict(passed=False, distance=0.9)),
            (200, _verdict(passed=False, distance=0.8)),
        )
        report = MultiTestReport(passed=False, rounds=rounds)
        length, verdict = report.first_failure
        assert length == 250
        assert verdict.distance == 0.9

    def test_first_failure_none_when_passing(self):
        report = MultiTestReport(passed=True, rounds=((100, _verdict()),))
        assert report.first_failure is None

    def test_worst_margin_skips_insufficient(self):
        rounds = (
            (100, _verdict(distance=0.1, threshold=0.3)),
            (
                50,
                BehaviorVerdict.insufficient_history(
                    passed=True, window_size=10, n_considered=30
                ),
            ),
        )
        report = MultiTestReport(passed=True, rounds=rounds)
        assert report.worst_margin == pytest.approx(0.2)

    def test_worst_margin_all_insufficient(self):
        rounds = (
            (
                30,
                BehaviorVerdict.insufficient_history(
                    passed=True, window_size=10, n_considered=30
                ),
            ),
        )
        assert MultiTestReport(passed=True, rounds=rounds).worst_margin == float("inf")

    def test_n_rounds(self):
        report = MultiTestReport(passed=True, rounds=((1, _verdict()), (2, _verdict())))
        assert report.n_rounds == 2


class TestAssessment:
    def test_accepted_only_when_trusted(self):
        for status, accepted in [
            (AssessmentStatus.TRUSTED, True),
            (AssessmentStatus.UNTRUSTED, False),
            (AssessmentStatus.SUSPICIOUS, False),
        ]:
            a = Assessment(status=status, trust_value=0.95, behavior=None)
            assert a.accepted is accepted

    def test_suspicious_flag(self):
        a = Assessment(
            status=AssessmentStatus.SUSPICIOUS, trust_value=None, behavior=None
        )
        assert a.suspicious

    def test_status_values(self):
        assert AssessmentStatus.SUSPICIOUS.value == "suspicious"
        assert AssessmentStatus.TRUSTED.value == "trusted"
        assert AssessmentStatus.UNTRUSTED.value == "untrusted"
