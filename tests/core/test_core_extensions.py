"""Tests for the Sec. 3.1 / Sec. 4 extensions: categorized and multinomial tests."""

import numpy as np
import pytest

from repro.core.categories import CategorizedBehaviorTest
from repro.core.config import BehaviorTestConfig
from repro.core.multinomial_testing import MultinomialBehaviorTest
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating


def _fb(t, category, good=True):
    return Feedback(
        time=float(t),
        server="s",
        client=f"c{t % 9}",
        rating=Rating.POSITIVE if good else Rating.NEGATIVE,
        category=category,
    )


def _mixed_quality_history(n_per_category, p_by_category, seed):
    """An honest server whose quality differs by category (NA vs AF)."""
    rng = np.random.default_rng(seed)
    feedbacks = []
    t = 0
    for _ in range(n_per_category):
        for category, p in p_by_category.items():
            feedbacks.append(_fb(t, category, good=bool(rng.random() < p)))
            t += 1
    return TransactionHistory.from_feedbacks(feedbacks)


class TestCategorizedBehaviorTest:
    def test_mixture_fails_pooled_but_passes_per_category(
        self, paper_config, shared_calibrator
    ):
        # The paper's US-movie-server example: good for NA, poor for AF.
        # Pooled, the mixture of two binomials is not a binomial; split by
        # category, each side is honest.
        from repro.core.testing import SingleBehaviorTest

        history = _mixed_quality_history(400, {"NA": 0.98, "AF": 0.35}, seed=1)
        pooled = SingleBehaviorTest(paper_config, shared_calibrator)
        assert not pooled.test(history.outcomes()).passed

        per_category = CategorizedBehaviorTest(paper_config, shared_calibrator)
        report = per_category.test(history)
        assert report.passed
        assert set(report.categories) == {"NA", "AF"}

    def test_manipulated_category_flagged(self, paper_config, shared_calibrator):
        rng = np.random.default_rng(2)
        feedbacks = []
        t = 0
        for _ in range(300):
            feedbacks.append(_fb(t, "NA", good=bool(rng.random() < 0.95)))
            t += 1
        # the EU category is a deterministic periodic manipulation
        for i in range(300):
            feedbacks.append(_fb(t, "EU", good=(i % 10 != 0)))
            t += 1
        history = TransactionHistory.from_feedbacks(feedbacks)
        report = CategorizedBehaviorTest(paper_config, shared_calibrator).test(history)
        assert not report.passed
        assert report.failing_categories == ("EU",)
        assert report.verdict("NA").passed

    def test_category_filter(self, paper_config, shared_calibrator):
        history = _mixed_quality_history(200, {"NA": 0.95, "AF": 0.4}, seed=3)
        only_na = CategorizedBehaviorTest(
            paper_config, shared_calibrator, categories=["NA"]
        )
        report = only_na.test(history)
        assert report.categories == ("NA",)

    def test_uncategorized_feedback_grouped(self, paper_config, shared_calibrator):
        rng = np.random.default_rng(4)
        feedbacks = [
            Feedback(
                time=float(t),
                server="s",
                client=f"c{t % 5}",
                rating=Rating.POSITIVE if rng.random() < 0.95 else Rating.NEGATIVE,
            )
            for t in range(200)
        ]
        history = TransactionHistory.from_feedbacks(feedbacks)
        report = CategorizedBehaviorTest(paper_config, shared_calibrator).test(history)
        assert report.categories == ("<uncategorized>",)

    def test_unknown_category_lookup_raises(self, paper_config, shared_calibrator):
        history = _mixed_quality_history(100, {"NA": 0.9}, seed=5)
        report = CategorizedBehaviorTest(paper_config, shared_calibrator).test(history)
        with pytest.raises(KeyError):
            report.verdict("MARS")

    def test_small_categories_follow_insufficient_policy(
        self, paper_config, shared_calibrator
    ):
        history = _mixed_quality_history(10, {"NA": 0.9, "AF": 0.5}, seed=6)
        report = CategorizedBehaviorTest(paper_config, shared_calibrator).test(history)
        assert report.passed  # both categories too small, policy is "pass"
        assert all(v.insufficient for _, v in report.by_category)


class TestMultinomialBehaviorTest:
    @staticmethod
    def _categorical(n, probs, seed):
        rng = np.random.default_rng(seed)
        return rng.choice(len(probs), size=n, p=probs)

    def test_honest_multivalued_server_passes(self):
        test_ = MultinomialBehaviorTest(n_categories=3)
        ratings = self._categorical(800, [0.8, 0.15, 0.05], seed=1)
        report = test_.test(ratings)
        assert report.passed
        assert report.n_categories == 3
        assert len(report.by_category) == 3

    def test_manipulated_pattern_fails(self):
        # deterministic cycle: every window has identical composition —
        # far too regular for a multinomial
        test_ = MultinomialBehaviorTest(n_categories=3)
        ratings = np.tile([0] * 8 + [1] + [2], 60)
        assert not test_.test(ratings).passed

    def test_never_occurring_category_is_fine(self):
        test_ = MultinomialBehaviorTest(n_categories=3)
        ratings = self._categorical(600, [0.9, 0.1, 0.0], seed=2)
        assert test_.test(ratings).passed

    def test_insufficient_history(self):
        test_ = MultinomialBehaviorTest(n_categories=3)
        report = test_.test([0, 1, 2, 0])
        assert report.insufficient
        assert report.passed

    def test_validation(self):
        with pytest.raises(ValueError):
            MultinomialBehaviorTest(n_categories=1)
        test_ = MultinomialBehaviorTest(n_categories=3)
        with pytest.raises(ValueError):
            test_.test(np.array([0, 3] * 50))
        with pytest.raises(ValueError):
            test_.test(np.ones((2, 50), dtype=int))

    def test_binary_case_agrees_with_single_test_direction(
        self, paper_config, shared_calibrator
    ):
        # with 2 categories, category-1 marginal == the binary window count
        test_ = MultinomialBehaviorTest(n_categories=2)
        honest = self._categorical(600, [0.05, 0.95], seed=3)
        periodic = np.tile([0] + [1] * 9, 60)
        assert test_.test(honest).passed
        assert not test_.test(periodic).passed

    def test_sidak_correction_applied(self):
        config = BehaviorTestConfig(confidence=0.95)
        test_ = MultinomialBehaviorTest(n_categories=4, config=config)
        expected = 0.95 ** (1.0 / 4)
        assert test_._calibrator.confidence == pytest.approx(expected)
