"""Tests for repro.core.calibration (the ε threshold estimator)."""

import numpy as np
import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.stats.binomial import sample_window_counts
from repro.stats.distances import l1_distance
from repro.stats.empirical import empirical_pmf
from repro.stats.binomial import binomial_pmf


class TestThreshold:
    def test_positive_and_bounded(self):
        cal = ThresholdCalibrator(seed=1)
        eps = cal.threshold(10, 50, 0.95)
        assert 0.0 < eps < 2.0

    def test_decreases_with_more_windows(self):
        # the Fig. 8 mechanism: more windows -> tighter threshold
        cal = ThresholdCalibrator(n_sets=1000, seed=2)
        assert cal.threshold(10, 320, 0.95) < cal.threshold(10, 10, 0.95)

    def test_honest_samples_pass_at_roughly_the_confidence(self):
        # ~95% of honest sample sets should fall under the 95% threshold
        cal = ThresholdCalibrator(n_sets=2000, seed=3)
        m, k, p = 10, 40, 0.9
        eps = cal.threshold(m, k, p)
        pmf = binomial_pmf(m, p)
        passes = 0
        trials = 400
        rng = np.random.default_rng(4)
        for _ in range(trials):
            counts = sample_window_counts(m, p, k, seed=rng)
            d = l1_distance(empirical_pmf(counts, m + 1), pmf)
            passes += d <= eps
        assert passes / trials == pytest.approx(0.95, abs=0.05)

    def test_degenerate_p_gives_zero_threshold(self):
        cal = ThresholdCalibrator(seed=5)
        assert cal.threshold(10, 20, 1.0) == pytest.approx(0.0)
        assert cal.threshold(10, 20, 0.0) == pytest.approx(0.0)

    def test_higher_confidence_gives_larger_threshold(self):
        strict = ThresholdCalibrator(confidence=0.90, n_sets=2000, seed=6)
        lenient = ThresholdCalibrator(confidence=0.99, n_sets=2000, seed=6)
        assert lenient.threshold(10, 30, 0.9) >= strict.threshold(10, 30, 0.9)

    def test_validation(self):
        cal = ThresholdCalibrator(seed=7)
        with pytest.raises(ValueError):
            cal.threshold(0, 10, 0.9)
        with pytest.raises(ValueError):
            cal.threshold(10, 0, 0.9)
        with pytest.raises(ValueError):
            cal.threshold(10, 10, 1.5)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(confidence=1.5)
        with pytest.raises(ValueError):
            ThresholdCalibrator(n_sets=0)
        with pytest.raises(ValueError):
            ThresholdCalibrator(p_quantum=-1)
        with pytest.raises(KeyError):
            ThresholdCalibrator(distance="nope")


class TestCaching:
    def test_cache_hits_on_repeat(self):
        cal = ThresholdCalibrator(seed=8)
        first = cal.threshold(10, 25, 0.95)
        second = cal.threshold(10, 25, 0.95)
        assert first == second
        hits, misses = cal.cache_stats
        assert hits == 1 and misses == 1

    def test_quantization_shares_entries(self):
        cal = ThresholdCalibrator(p_quantum=0.01, seed=9)
        a = cal.threshold(10, 25, 0.948)
        b = cal.threshold(10, 25, 0.952)
        assert a == b  # both snap to 0.95
        assert cal.cache_stats == (1, 1)

    def test_quantize_p(self):
        cal = ThresholdCalibrator(p_quantum=0.01)
        assert cal.quantize_p(0.948) == pytest.approx(0.95)
        assert cal.quantize_p(0.944) == pytest.approx(0.94)

    def test_near_degenerate_p_never_snaps_to_point_mass(self):
        # regression: p_hat = 0.996 must NOT calibrate against the p = 1.0
        # point mass (epsilon = 0), which would flag nearly-perfect honest
        # servers forever (found via a deadlocked Fig. 6 campaign)
        cal = ThresholdCalibrator(p_quantum=0.01, seed=20)
        assert cal.quantize_p(0.996) == pytest.approx(0.99)
        assert cal.quantize_p(0.004) == pytest.approx(0.01)
        assert cal.quantize_p(1.0) == pytest.approx(1.0)
        assert cal.quantize_p(0.0) == pytest.approx(0.0)
        assert cal.threshold(10, 100, 0.9999) > 0.0

    def test_nearly_perfect_honest_server_passes(self):
        # end-to-end regression for the same bug
        from repro.core.testing import SingleBehaviorTest
        from repro.core.model import generate_honest_outcomes

        test_ = SingleBehaviorTest()
        outcomes = generate_honest_outcomes(2000, 0.998, seed=21)
        assert 0 < (2000 - outcomes.sum()) < 20  # nearly, but not exactly, perfect
        assert test_.test(outcomes).passed

    def test_zero_quantum_disables_snapping(self):
        cal = ThresholdCalibrator(p_quantum=0.0, seed=10)
        cal.threshold(10, 25, 0.948)
        cal.threshold(10, 25, 0.952)
        assert cal.cache_stats == (0, 2)

    def test_different_k_are_separate_entries(self):
        cal = ThresholdCalibrator(seed=11)
        cal.threshold(10, 25, 0.95)
        cal.threshold(10, 26, 0.95)
        assert cal.cache_stats == (0, 2)


class TestNullDistances:
    def test_shape(self):
        cal = ThresholdCalibrator(n_sets=123, seed=12)
        assert cal.null_distances(10, 30, 0.9).shape == (123,)

    def test_seeded_reproducibility(self):
        cal = ThresholdCalibrator(n_sets=50, seed=13)
        a = cal.null_distances(10, 30, 0.9, seed=99)
        b = cal.null_distances(10, 30, 0.9, seed=99)
        np.testing.assert_array_equal(a, b)

    def test_non_l1_distance_path(self):
        cal = ThresholdCalibrator(n_sets=50, distance="ks", seed=14)
        distances = cal.null_distances(10, 30, 0.9)
        assert distances.shape == (50,)
        assert (distances >= 0).all() and (distances <= 1).all()
        assert cal.threshold(10, 30, 0.9) > 0
