"""Tests for the dynamic-behavior extensions: temporal and segmented testing."""

import numpy as np
import pytest

from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.segmented import SegmentedBehaviorTest
from repro.core.temporal import (
    TemporalBehaviorTest,
    hour_of_day_bucket,
    weekday_weekend_bucket,
)
from repro.core.testing import SingleBehaviorTest
from repro.feedback.history import TransactionHistory
from repro.feedback.records import Feedback, Rating


def _temporal_history(n, p_of_time, seed):
    rng = np.random.default_rng(seed)
    feedbacks = []
    for t in range(n):
        hours = float(t)
        feedbacks.append(
            Feedback(
                time=hours,
                server="s",
                client=f"c{t % 9}",
                rating=(
                    Rating.POSITIVE
                    if rng.random() < p_of_time(hours)
                    else Rating.NEGATIVE
                ),
            )
        )
    return TransactionHistory.from_feedbacks(feedbacks)


class TestBuckets:
    def test_weekday_weekend_bucket(self):
        assert weekday_weekend_bucket(0.0) == "weekday"  # Monday 00:00
        assert weekday_weekend_bucket(4 * 24.0) == "weekday"  # Friday
        assert weekday_weekend_bucket(5 * 24.0) == "weekend"  # Saturday
        assert weekday_weekend_bucket(6 * 24.0 + 23) == "weekend"  # Sunday night
        assert weekday_weekend_bucket(7 * 24.0) == "weekday"  # wraps to Monday

    def test_hour_of_day_bucket(self):
        assert hour_of_day_bucket(10.0) == "business"
        assert hour_of_day_bucket(8.99) == "off-hours"
        assert hour_of_day_bucket(17.0) == "off-hours"
        assert hour_of_day_bucket(24.0 + 12) == "business"  # next day noon

    def test_hour_bucket_validation(self):
        with pytest.raises(ValueError):
            hour_of_day_bucket(1.0, start=10, end=9)


class TestTemporalBehaviorTest:
    def test_weekday_weekend_server_passes_temporal_fails_pooled(
        self, paper_config, shared_calibrator
    ):
        # honest server with weekend congestion: two regimes, each iid
        def p_of_time(hours):
            return 0.97 if weekday_weekend_bucket(hours) == "weekday" else 0.6

        history = _temporal_history(1400, p_of_time, seed=1)
        pooled = SingleBehaviorTest(paper_config, shared_calibrator)
        temporal = TemporalBehaviorTest(
            weekday_weekend_bucket, paper_config, shared_calibrator
        )
        assert not pooled.test(history.outcomes()).passed
        report = temporal.test(history)
        assert report.passed
        assert set(report.buckets) == {"weekday", "weekend"}

    def test_manipulation_within_bucket_still_caught(
        self, paper_config, shared_calibrator
    ):
        # deterministic periodic cheating confined to weekdays
        feedbacks = []
        i = 0
        for t in range(1400):
            hours = float(t)
            if weekday_weekend_bucket(hours) == "weekday":
                good = i % 10 != 0
                i += 1
            else:
                good = True
            feedbacks.append(
                Feedback(
                    time=hours,
                    server="s",
                    client=f"c{t % 9}",
                    rating=Rating.POSITIVE if good else Rating.NEGATIVE,
                )
            )
        history = TransactionHistory.from_feedbacks(feedbacks)
        temporal = TemporalBehaviorTest(
            weekday_weekend_bucket, paper_config, shared_calibrator
        )
        report = temporal.test(history)
        assert not report.passed
        assert report.failing_buckets == ("weekday",)
        assert report.verdict("weekend").passed

    def test_unknown_bucket_lookup(self, paper_config, shared_calibrator):
        history = _temporal_history(200, lambda h: 0.95, seed=2)
        report = TemporalBehaviorTest(
            weekday_weekend_bucket, paper_config, shared_calibrator
        ).test(history)
        with pytest.raises(KeyError):
            report.verdict("holiday")

    def test_custom_bucket_fn(self, paper_config, shared_calibrator):
        history = _temporal_history(300, lambda h: 0.95, seed=3)
        report = TemporalBehaviorTest(
            lambda t: "all", paper_config, shared_calibrator
        ).test(history)
        assert report.buckets == ("all",)


class TestSegmentedBehaviorTest:
    def test_drifting_honest_server(self, paper_config, shared_calibrator):
        drift = np.concatenate(
            [
                generate_honest_outcomes(500, 0.95, seed=4),
                generate_honest_outcomes(500, 0.75, seed=5),
            ]
        )
        pooled = SingleBehaviorTest(paper_config, shared_calibrator)
        segmented = SegmentedBehaviorTest(paper_config, shared_calibrator)
        assert not pooled.test(drift).passed  # mixture is not binomial
        report = segmented.test(drift)
        assert report.passed
        assert report.n_segments == 2
        assert abs(report.change_points[0] - 500) < 60

    def test_stationary_server_single_segment(self, paper_config, shared_calibrator):
        outcomes = generate_honest_outcomes(900, 0.92, seed=6)
        report = SegmentedBehaviorTest(paper_config, shared_calibrator).test(outcomes)
        assert report.n_segments == 1
        assert report.passed

    def test_manipulation_not_explained_away(self, paper_config, shared_calibrator):
        # periodic manipulation inside a stationary regime still fails
        trace = np.concatenate(
            [
                generate_honest_outcomes(400, 0.95, seed=7),
                np.tile([0] + [1] * 9, 30),
            ]
        )
        report = SegmentedBehaviorTest(paper_config, shared_calibrator).test(trace)
        assert not report.passed
        assert len(report.failing_segments) >= 1

    def test_segments_helper(self, paper_config, shared_calibrator):
        drift = np.concatenate(
            [
                generate_honest_outcomes(500, 0.95, seed=8),
                generate_honest_outcomes(500, 0.7, seed=9),
            ]
        )
        segments = SegmentedBehaviorTest(paper_config, shared_calibrator).segments(drift)
        assert len(segments) == 2
        assert segments[0].p_hat > segments[1].p_hat

    def test_accepts_history_object(self, paper_config, shared_calibrator):
        history = TransactionHistory.from_outcomes(
            generate_honest_outcomes(400, 0.9, seed=10)
        )
        assert SegmentedBehaviorTest(paper_config, shared_calibrator).test(history).passed

    def test_min_segment_must_cover_test_floor(self, paper_config):
        with pytest.raises(ValueError, match="min_segment"):
            SegmentedBehaviorTest(paper_config, min_segment=20)

    def test_two_phase_integration(self, paper_config, shared_calibrator):
        from repro.core.two_phase import TwoPhaseAssessor
        from repro.core.verdict import AssessmentStatus
        from repro.trust.average import AverageTrust

        drift = np.concatenate(
            [
                generate_honest_outcomes(600, 0.98, seed=11),
                generate_honest_outcomes(600, 0.92, seed=12),
            ]
        )
        assessor = TwoPhaseAssessor(
            behavior_test=SegmentedBehaviorTest(paper_config, shared_calibrator),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        history = TransactionHistory.from_outcomes(drift)
        assert assessor.assess(history).status is AssessmentStatus.TRUSTED
