"""Tests for repro.core.multi_testing (Scheme 2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest


@pytest.fixture()
def multi(paper_config, shared_calibrator):
    return MultiBehaviorTest(paper_config, shared_calibrator)


@pytest.fixture()
def multi_all(paper_config, shared_calibrator):
    return MultiBehaviorTest(paper_config, shared_calibrator, collect_all=True)


class TestSuffixSchedule:
    def test_lengths(self, multi):
        # n=200, step=50, floor=40: 200, 150, 100, 50
        assert multi.suffix_lengths(200) == [200, 150, 100, 50]

    def test_short_history(self, multi):
        assert multi.suffix_lengths(39) == []
        assert multi.suffix_lengths(40) == [40]

    def test_negative_raises(self, multi):
        with pytest.raises(ValueError):
            multi.suffix_lengths(-1)

    def test_custom_step(self, shared_calibrator):
        config = BehaviorTestConfig(multi_step=100)
        test_ = MultiBehaviorTest(config, shared_calibrator)
        assert test_.suffix_lengths(250) == [250, 150, 50]


class TestVerdicts:
    def test_honest_history_passes(self, multi):
        report = multi.test(generate_honest_outcomes(1000, 0.95, seed=1))
        assert report.passed
        assert report.first_failure is None

    def test_hibernating_burst_caught(self, multi):
        # this is exactly the attack the single test misses (see
        # test_core_single_testing) — multi-testing's short suffixes see it
        trace = np.concatenate(
            [generate_honest_outcomes(4000, 0.95, seed=2), np.zeros(20, dtype=np.int8)]
        )
        report = multi.test(trace)
        assert not report.passed
        length, verdict = report.first_failure
        assert not verdict.passed
        assert length <= 4020

    def test_rounds_ordered_longest_first(self, multi_all):
        report = multi_all.test(generate_honest_outcomes(300, 0.9, seed=3))
        lengths = [length for length, _ in report.rounds]
        assert lengths == sorted(lengths, reverse=True)
        assert lengths[0] == 300

    def test_insufficient_history(self, multi):
        report = multi.test(np.ones(30, dtype=np.int8))
        assert report.passed  # on_insufficient="pass"
        assert report.n_rounds == 1
        assert report.rounds[0][1].insufficient

    def test_worst_margin(self, multi_all):
        report = multi_all.test(generate_honest_outcomes(400, 0.95, seed=4))
        margins = [v.margin for _, v in report.rounds if not v.insufficient]
        assert report.worst_margin == pytest.approx(min(margins))

    def test_early_stop_on_failure(self, paper_config, shared_calibrator):
        trace = np.concatenate(
            [generate_honest_outcomes(500, 0.95, seed=5), np.zeros(30, dtype=np.int8)]
        )
        eager = MultiBehaviorTest(paper_config, shared_calibrator, collect_all=False)
        full = MultiBehaviorTest(paper_config, shared_calibrator, collect_all=True)
        eager_report = eager.test(trace)
        full_report = full.test(trace)
        assert not eager_report.passed and not full_report.passed
        assert eager_report.n_rounds <= full_report.n_rounds


class TestStrategyParity:
    """Naive O(n^2) and optimized O(n) must produce identical verdicts."""

    def _pair(self, config, calibrator):
        return (
            MultiBehaviorTest(config, calibrator, strategy="naive", collect_all=True),
            MultiBehaviorTest(config, calibrator, strategy="optimized", collect_all=True),
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_parity_on_honest_histories(self, paper_config, shared_calibrator, seed):
        naive, fast = self._pair(paper_config, shared_calibrator)
        outcomes = generate_honest_outcomes(700, 0.93, seed=seed)
        self._assert_same(naive.test(outcomes), fast.test(outcomes))

    def test_parity_on_attack_histories(self, paper_config, shared_calibrator):
        naive, fast = self._pair(paper_config, shared_calibrator)
        trace = np.concatenate(
            [generate_honest_outcomes(600, 0.95, seed=9), np.zeros(25, dtype=np.int8)]
        )
        self._assert_same(naive.test(trace), fast.test(trace))

    @given(
        n=st.integers(min_value=40, max_value=400),
        p=st.floats(min_value=0.05, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_parity(self, paper_config, shared_calibrator, n, p, seed):
        naive, fast = self._pair(paper_config, shared_calibrator)
        outcomes = generate_honest_outcomes(n, p, seed=seed)
        self._assert_same(naive.test(outcomes), fast.test(outcomes))

    def test_parity_with_step_not_multiple_of_window(self, shared_calibrator):
        # step 7 against window 10: consecutive suffix lengths often share
        # the same window set, exercising the verdict-reuse path
        config = BehaviorTestConfig(multi_step=7)
        naive, fast = self._pair(config, shared_calibrator)
        outcomes = generate_honest_outcomes(300, 0.9, seed=77)
        self._assert_same(naive.test(outcomes), fast.test(outcomes))

    @staticmethod
    def _assert_same(a, b):
        assert a.passed == b.passed
        assert a.n_rounds == b.n_rounds
        for (la, va), (lb, vb) in zip(a.rounds, b.rounds):
            assert la == lb
            assert va.passed == vb.passed
            assert va.n_windows == vb.n_windows
            assert va.p_hat == pytest.approx(vb.p_hat, abs=1e-12)
            assert va.distance == pytest.approx(vb.distance, abs=1e-9)
            assert va.threshold == pytest.approx(vb.threshold, abs=1e-12)


class TestConstruction:
    def test_rejects_unknown_strategy(self, paper_config):
        with pytest.raises(ValueError):
            MultiBehaviorTest(paper_config, strategy="quantum")

    def test_rejects_oldest_alignment(self):
        config = BehaviorTestConfig(align="oldest")
        with pytest.raises(ValueError, match="recent"):
            MultiBehaviorTest(config)

    def test_exposes_strategy(self, multi):
        assert multi.strategy == "optimized"
