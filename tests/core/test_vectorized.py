"""Bit-parity of the vectorized cold-path kernel with the scalar tester.

:func:`repro.core.vectorized.fold_cold_batch` must reproduce
``tester.test(history)`` *exactly* — same distances, same thresholds,
same decisive rounds — including the calibration side effects: the
calibrator draws Monte-Carlo sets from one shared rng stream, so the
kernel must consult it in the scalar path's miss order.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.core.vectorized import fold_cold_batch, supports_vectorized
from repro.feedback.windows import window_counts

CONFIG = BehaviorTestConfig(calibration_sets=50)


def _histories(seed=0, n=40):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        kind = i % 4
        if kind == 0:  # honest
            length = int(rng.integers(40, 200))
            out.append(generate_honest_outcomes(length, 0.9, seed=seed + i))
        elif kind == 1:  # failing rate drift
            length = int(rng.integers(40, 200))
            out.append((rng.random(length) < 0.5).astype(np.int64))
        elif kind == 2:  # short / insufficient
            out.append(np.ones(int(rng.integers(0, CONFIG.min_transactions)), dtype=np.int64))
        else:  # regime switch: honest then cheating
            half = int(rng.integers(20, 100))
            out.append(
                np.concatenate(
                    [
                        generate_honest_outcomes(half, 0.95, seed=seed + i),
                        (rng.random(half) < 0.4).astype(np.int64),
                    ]
                )
            )
    return out


def _calibrator():
    return ThresholdCalibrator(
        confidence=CONFIG.confidence,
        n_sets=CONFIG.calibration_sets,
        distance=CONFIG.distance,
        p_quantum=CONFIG.p_quantum,
        seed=777,
    )


class TestSupport:
    def test_supported_configuration(self):
        assert supports_vectorized(MultiBehaviorTest(CONFIG, _calibrator()))

    def test_naive_strategy_unsupported(self):
        tester = MultiBehaviorTest(CONFIG, _calibrator(), strategy="naive")
        assert not supports_vectorized(tester)
        with pytest.raises(ValueError, match="requires an optimized"):
            fold_cold_batch([np.ones(50, dtype=np.int64)], tester)

    def test_single_test_unsupported(self):
        assert not supports_vectorized(SingleBehaviorTest(CONFIG, _calibrator()))


@pytest.mark.parametrize("collect_all", [False, True])
class TestParity:
    def test_verdict_for_verdict_shared_calibrator(self, collect_all):
        tester = MultiBehaviorTest(CONFIG, _calibrator(), collect_all=collect_all)
        histories = _histories()
        folded = fold_cold_batch(histories, tester)
        for history, (report, _) in zip(histories, folded):
            assert report == tester.test(history)

    def test_order_parity_with_fresh_calibrators(self, collect_all):
        """Two *independent* same-seed calibrators must end up with the
        same thresholds: the kernel consults calibration cache misses in
        exactly the scalar walk's order, so the shared rng streams stay
        in lockstep."""
        histories = _histories(seed=3)
        vec_tester = MultiBehaviorTest(CONFIG, _calibrator(), collect_all=collect_all)
        scalar_tester = MultiBehaviorTest(CONFIG, _calibrator(), collect_all=collect_all)
        folded = fold_cold_batch(histories, vec_tester)
        for history, (report, _) in zip(histories, folded):
            assert report == scalar_tester.test(history)


class TestSeeds:
    def test_counts_match_recent_aligned_window_counts(self):
        tester = MultiBehaviorTest(CONFIG, _calibrator())
        histories = _histories(seed=5)
        folded = fold_cold_batch(histories, tester)
        m = CONFIG.window_size
        for history, (_, counts) in zip(histories, folded):
            if len(history) < CONFIG.min_transactions:
                assert counts is None
            else:
                assert np.array_equal(
                    counts, window_counts(np.asarray(history), m, align="recent")
                )

    def test_insufficient_histories_report_like_scalar(self):
        tester = MultiBehaviorTest(CONFIG, _calibrator())
        short = [np.array([], dtype=np.int64), np.ones(5, dtype=np.int64)]
        folded = fold_cold_batch(short, tester)
        for history, (report, counts) in zip(short, folded):
            assert counts is None
            assert report == tester.test(history)
            assert report.insufficient

    def test_empty_batch(self):
        tester = MultiBehaviorTest(CONFIG, _calibrator())
        assert fold_cold_batch([], tester) == []
