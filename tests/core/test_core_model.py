"""Tests for repro.core.model (the honest-player window model)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.model import HonestPlayerModel, generate_honest_outcomes
from repro.stats.binomial import binomial_pmf


class TestGenerateHonestOutcomes:
    def test_length_and_binary(self):
        outcomes = generate_honest_outcomes(500, 0.95, seed=1)
        assert outcomes.shape == (500,)
        assert set(np.unique(outcomes)) <= {0, 1}

    def test_rate_close_to_p(self):
        outcomes = generate_honest_outcomes(50_000, 0.9, seed=2)
        assert outcomes.mean() == pytest.approx(0.9, abs=0.01)

    def test_deterministic_by_seed(self):
        np.testing.assert_array_equal(
            generate_honest_outcomes(50, 0.7, seed=3),
            generate_honest_outcomes(50, 0.7, seed=3),
        )

    def test_degenerate_rates(self):
        assert generate_honest_outcomes(20, 1.0, seed=4).sum() == 20
        assert generate_honest_outcomes(20, 0.0, seed=4).sum() == 0

    def test_zero_length(self):
        assert generate_honest_outcomes(0, 0.5).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_honest_outcomes(-1, 0.5)
        with pytest.raises(ValueError):
            generate_honest_outcomes(10, 1.5)


class TestHonestPlayerModel:
    def test_fit_basic(self):
        model = HonestPlayerModel(10)
        outcomes = np.concatenate([np.ones(10), np.zeros(5), np.ones(5)]).astype(int)
        fitted = model.fit(outcomes)
        assert fitted.n_windows == 2
        assert fitted.n_considered == 20
        assert fitted.p_hat == pytest.approx(0.75)
        np.testing.assert_array_equal(fitted.counts, [10, 5])

    def test_fit_recent_alignment(self):
        model = HonestPlayerModel(10, align="recent")
        # 15 outcomes: the oldest 5 are dropped
        outcomes = np.concatenate([np.zeros(5), np.ones(10)]).astype(int)
        fitted = model.fit(outcomes)
        assert fitted.n_windows == 1
        assert fitted.p_hat == pytest.approx(1.0)

    def test_fit_too_short_raises(self):
        with pytest.raises(ValueError):
            HonestPlayerModel(10).fit(np.ones(9, dtype=int))

    def test_expected_pmf(self):
        fitted = HonestPlayerModel(10).fit(generate_honest_outcomes(100, 0.9, seed=5))
        np.testing.assert_allclose(
            fitted.expected_pmf(), binomial_pmf(10, fitted.p_hat)
        )

    def test_observed_pmf_normalized(self):
        fitted = HonestPlayerModel(10).fit(generate_honest_outcomes(200, 0.9, seed=6))
        pmf = fitted.observed_pmf()
        assert pmf.shape == (11,)
        assert pmf.sum() == pytest.approx(1.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            HonestPlayerModel(0)

    @given(
        n=st.integers(min_value=10, max_value=400),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_p_hat_matches_windowed_mean(self, n, p):
        outcomes = generate_honest_outcomes(n, p, seed=42)
        model = HonestPlayerModel(10)
        fitted = model.fit(outcomes)
        k = n // 10
        windowed = outcomes[n - k * 10 :]
        assert fitted.p_hat == pytest.approx(windowed.mean())

    def test_p_hat_converges_to_true_p(self):
        # Lemma 3.1: with enough transactions p_hat approximates p
        fitted = HonestPlayerModel(10).fit(
            generate_honest_outcomes(100_000, 0.87, seed=7)
        )
        assert fitted.p_hat == pytest.approx(0.87, abs=0.005)
