"""Tests for repro.core.testing (Scheme 1, the single behavior test)."""

import numpy as np
import pytest

from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest
from repro.feedback.history import TransactionHistory


@pytest.fixture()
def test_(paper_config, shared_calibrator):
    return SingleBehaviorTest(paper_config, shared_calibrator)


class TestHonestPlayers:
    def test_honest_history_passes(self, test_):
        assert test_.test(generate_honest_outcomes(800, 0.95, seed=1)).passed

    @pytest.mark.parametrize("p", [0.99, 0.95, 0.9, 0.8, 0.5])
    def test_honest_pass_rate_tracks_confidence(self, test_, p):
        passes = sum(
            test_.test(generate_honest_outcomes(600, p, seed=100 + s)).passed
            for s in range(40)
        )
        # 95% confidence: expect ~2 failures in 40; allow generous slack
        assert passes >= 33

    def test_perfect_server_passes(self, test_):
        verdict = test_.test(np.ones(500, dtype=np.int8))
        assert verdict.passed
        assert verdict.p_hat == 1.0
        assert verdict.distance == pytest.approx(0.0)

    def test_always_bad_server_is_consistent_too(self, test_):
        # a 0%-quality server is *consistent*; it fails the trust phase,
        # not the behavior phase
        assert test_.test(np.zeros(500, dtype=np.int8)).passed

    def test_accepts_history_object_and_list(self, test_):
        outcomes = generate_honest_outcomes(100, 0.9, seed=2)
        assert test_.test(TransactionHistory.from_outcomes(outcomes)).passed
        assert test_.test(list(outcomes)).passed


class TestAttackers:
    def test_regular_periodic_pattern_detected(self, test_):
        # exactly one bad per window, deterministic: under-dispersed
        trace = np.tile([0] + [1] * 9, 60)
        verdict = test_.test(trace)
        assert not verdict.passed
        assert verdict.distance > verdict.threshold

    def test_big_burst_in_short_history_detected(self, test_):
        trace = np.concatenate(
            [generate_honest_outcomes(160, 0.95, seed=3), np.zeros(40, dtype=np.int8)]
        )
        assert not test_.test(trace).passed

    def test_hibernating_with_long_history_evades_single_test(self, test_):
        # the paper's motivation for multi-testing: the same burst hides
        # inside a long enough preparation history
        trace = np.concatenate(
            [generate_honest_outcomes(4000, 0.95, seed=4), np.zeros(20, dtype=np.int8)]
        )
        assert test_.test(trace).passed

    def test_oscillating_blocks_detected(self, test_):
        # 10 good, 10 bad alternating: bimodal window counts
        trace = np.tile([1] * 10 + [0] * 10, 30)
        assert not test_.test(trace).passed


class TestVerdictContents:
    def test_fields(self, test_):
        outcomes = generate_honest_outcomes(205, 0.9, seed=5)
        verdict = test_.test(outcomes)
        assert verdict.window_size == 10
        assert verdict.n_windows == 20
        assert verdict.n_considered == 200
        assert 0.0 <= verdict.p_hat <= 1.0
        assert verdict.threshold > 0
        assert not verdict.insufficient
        assert verdict.margin == pytest.approx(verdict.threshold - verdict.distance)

    def test_insufficient_history_defaults_to_pass(self, test_):
        verdict = test_.test(np.ones(39, dtype=np.int8))
        assert verdict.insufficient
        assert verdict.passed
        assert verdict.n_windows == 0

    def test_insufficient_history_fail_policy(self, shared_calibrator):
        config = BehaviorTestConfig(on_insufficient="fail")
        test_ = SingleBehaviorTest(config, shared_calibrator)
        verdict = test_.test(np.ones(39, dtype=np.int8))
        assert verdict.insufficient
        assert not verdict.passed

    def test_empty_history_is_insufficient(self, test_):
        verdict = test_.test(np.array([], dtype=np.int8))
        assert verdict.insufficient

    def test_rejects_2d_input(self, test_):
        with pytest.raises(ValueError):
            test_.test(np.ones((4, 10)))


class TestConfigurationEffects:
    def test_custom_window_size(self, shared_calibrator):
        config = BehaviorTestConfig(window_size=20)
        test_ = SingleBehaviorTest(config)
        verdict = test_.test(generate_honest_outcomes(400, 0.9, seed=6))
        assert verdict.window_size == 20
        assert verdict.n_windows == 20

    def test_alternative_distance(self):
        config = BehaviorTestConfig(distance="l2")
        test_ = SingleBehaviorTest(config)
        honest = generate_honest_outcomes(600, 0.95, seed=7)
        periodic = np.tile([0] + [1] * 9, 60)
        assert test_.test(honest).passed
        assert not test_.test(periodic).passed

    def test_shared_calibrator_is_used(self, paper_config, shared_calibrator):
        test_ = SingleBehaviorTest(paper_config, shared_calibrator)
        assert test_.calibrator is shared_calibrator
