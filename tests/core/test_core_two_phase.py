"""Tests for repro.core.two_phase (the Fig. 1 / Fig. 2 framework)."""

import numpy as np
import pytest

from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.feedback.history import TransactionHistory
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.trust.average import AverageTrust
from repro.trust.eigentrust import EigenTrust


@pytest.fixture()
def assessor(paper_config, shared_calibrator):
    return TwoPhaseAssessor(
        behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
        trust_function=AverageTrust(),
        trust_threshold=0.9,
    )


def _history(outcomes, server="s"):
    return TransactionHistory.from_outcomes(np.asarray(outcomes), server=server)


class TestStatuses:
    def test_honest_high_quality_is_trusted(self, assessor):
        history = _history(generate_honest_outcomes(500, 0.97, seed=1))
        result = assessor.assess(history)
        assert result.status is AssessmentStatus.TRUSTED
        assert result.accepted
        assert result.trust_value == pytest.approx(history.p_hat)

    def test_honest_low_quality_is_untrusted_not_suspicious(self, assessor):
        # consistent but mediocre: phase 1 passes, phase 2 rejects
        history = _history(generate_honest_outcomes(500, 0.7, seed=2))
        result = assessor.assess(history)
        assert result.status is AssessmentStatus.UNTRUSTED
        assert not result.accepted
        assert result.trust_value is not None

    def test_manipulator_is_suspicious_and_short_circuits(self, assessor):
        trace = np.tile([0] + [1] * 9, 60)  # regular periodic, ratio 0.9
        result = assessor.assess(_history(trace))
        assert result.status is AssessmentStatus.SUSPICIOUS
        assert result.suspicious
        assert result.trust_value is None  # Fig. 2: abort before phase 2
        assert not result.behavior.passed

    def test_server_id_propagates(self, assessor):
        history = _history(generate_honest_outcomes(200, 0.95, seed=3), server="alice")
        assert assessor.assess(history).server == "alice"


class TestNoScreenBaseline:
    def test_none_behavior_test_reduces_to_trust_function(self):
        assessor = TwoPhaseAssessor(
            trust_function=AverageTrust(), trust_threshold=0.9
        )
        trace = np.tile([0] + [1] * 9, 60)
        result = assessor.assess(_history(trace))
        # the bare trust function happily trusts the manipulator
        assert result.status is AssessmentStatus.TRUSTED
        assert result.behavior is None


class TestLedgerTrustIntegration:
    def test_ledger_scheme_requires_ledger(self, paper_config, shared_calibrator):
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
            trust_function=EigenTrust(),
        )
        history = _history(generate_honest_outcomes(100, 0.95, seed=4))
        with pytest.raises(ValueError, match="ledger"):
            assessor.assess(history)

    def test_ledger_scheme_end_to_end(self, paper_config, shared_calibrator):
        ledger = FeedbackLedger()
        rng = np.random.default_rng(5)
        for t in range(200):
            ledger.record(
                Feedback(
                    time=float(t),
                    server="s",
                    client=f"c{t % 7}",
                    rating=Rating.POSITIVE if rng.random() < 0.95 else Rating.NEGATIVE,
                )
            )
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
            trust_function=EigenTrust(),
            trust_threshold=0.5,
        )
        result = assessor.assess(ledger.history("s"), ledger=ledger)
        assert result.status in (AssessmentStatus.TRUSTED, AssessmentStatus.UNTRUSTED)
        assert result.trust_value is not None


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ValueError):
            TwoPhaseAssessor(trust_function=AverageTrust(), trust_threshold=1.5)

    def test_properties(self, assessor):
        assert assessor.trust_threshold == 0.9
        assert isinstance(assessor.trust_function, AverageTrust)
        assert assessor.behavior_test is not None
