"""AssessorConfig / from_config builder, registries, and the deprecation shim."""

from __future__ import annotations

import warnings

import pytest

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.registry import (
    available_behavior_tests,
    make_behavior_test,
    register_behavior_test,
    resolve_behavior_test_name,
)
from repro.core.two_phase import Assessor, TwoPhaseAssessor
from repro.trust.base import LedgerTrustFunction, TrustFunction
from repro.trust.registry import (
    available_trust_functions,
    make_trust_function,
    resolve_trust_name,
)
from repro.trust.average import AverageTrust


class TestAssessorConfig:
    def test_defaults_match_the_paper(self):
        config = AssessorConfig()
        assert config.trust_function == "average"
        assert config.behavior_test == "multi"
        assert config.trust_threshold == 0.9

    def test_threshold_validated(self):
        with pytest.raises(ValueError, match="trust_threshold"):
            AssessorConfig(trust_threshold=1.5)

    def test_options_freeze_and_round_trip(self):
        config = AssessorConfig(
            trust_function="weighted", trust_options={"lam": 0.5}
        )
        assert config.trust_options == (("lam", 0.5),)
        assert config.trust_kwargs == {"lam": 0.5}
        assert isinstance(hash(config), int)  # frozen and hashable

    def test_with_produces_modified_copy(self):
        base = AssessorConfig()
        derived = base.with_(trust_threshold=0.5, behavior_test=None)
        assert derived.trust_threshold == 0.5
        assert derived.behavior_test is None
        assert base.trust_threshold == 0.9


class TestFromConfig:
    @pytest.mark.parametrize("name", sorted(available_trust_functions()))
    def test_every_trust_function_round_trips(self, name):
        assessor = Assessor.from_config(
            AssessorConfig(trust_function=name, behavior_test=None)
        )
        expected = type(make_trust_function(name))
        assert type(assessor.trust_function) is expected
        assert isinstance(
            assessor.trust_function, (TrustFunction, LedgerTrustFunction)
        )

    @pytest.mark.parametrize(
        "alias", ["avg", "mean", "beta-reputation", "peer-trust", "eigen"]
    )
    def test_trust_aliases_resolve(self, alias):
        canonical = resolve_trust_name(alias)
        assert canonical in available_trust_functions()
        assessor = Assessor.from_config(
            AssessorConfig(trust_function=alias, behavior_test=None)
        )
        assert type(assessor.trust_function) is type(make_trust_function(canonical))

    @pytest.mark.parametrize("name", sorted(available_behavior_tests()))
    def test_every_behavior_test_round_trips(self, name):
        # multinomial's rating domain cannot be inferred from data
        options = {"n_categories": 3} if name == "multinomial" else {}
        assessor = Assessor.from_config(
            AssessorConfig(behavior_test=name, behavior_options=options)
        )
        assert assessor.behavior_test is not None
        assert assessor.behavior_test.name == name

    @pytest.mark.parametrize(
        "alias,canonical",
        [
            ("scheme1", "single"),
            ("scheme2", "multi"),
            ("collusion", "collusion-multi"),
            ("category", "categorized"),
        ],
    )
    def test_behavior_aliases_resolve(self, alias, canonical):
        assert resolve_behavior_test_name(alias) == canonical
        assessor = Assessor.from_config(AssessorConfig(behavior_test=alias))
        assert assessor.behavior_test.name == canonical

    @pytest.mark.parametrize("none_name", [None, "none", "off", "disabled"])
    def test_disabled_screening_spellings(self, none_name):
        assessor = Assessor.from_config(AssessorConfig(behavior_test=none_name))
        assert assessor.behavior_test is None

    def test_test_config_and_options_flow_through(self):
        config = AssessorConfig(
            behavior_test="multi",
            test_config=BehaviorTestConfig(multi_step=250),
            behavior_options={"strategy": "naive"},
            trust_function="weighted",
            trust_options={"lam": 0.25},
            trust_threshold=0.8,
        )
        assessor = Assessor.from_config(config)
        assert assessor.behavior_test.config.multi_step == 250
        assert assessor.behavior_test.strategy == "naive"
        assert assessor.trust_threshold == 0.8

    def test_unknown_names_raise(self):
        with pytest.raises(KeyError, match="unknown trust function"):
            Assessor.from_config(AssessorConfig(trust_function="nope"))
        with pytest.raises(KeyError, match="unknown behavior test"):
            Assessor.from_config(AssessorConfig(behavior_test="nope"))

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError):
            register_behavior_test("multi", lambda **kw: None)
        with pytest.raises(ValueError):
            register_behavior_test("brand-new", lambda **kw: None, aliases=["multi"])

    def test_make_behavior_test_none_returns_none(self):
        assert make_behavior_test(None) is None
        assert make_behavior_test("none") is None


class TestDeprecatedPositionalConstruction:
    def test_positional_emits_exactly_one_deprecation_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assessor = TwoPhaseAssessor(None, AverageTrust(), 0.8)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "positional" in str(deprecations[0].message)
        assert assessor.behavior_test is None
        assert assessor.trust_threshold == 0.8

    def test_partial_positional_merges_with_keywords(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assessor = TwoPhaseAssessor(
                None, trust_function=AverageTrust(), trust_threshold=0.7
            )
        assert sum(
            issubclass(w.category, DeprecationWarning) for w in caught
        ) == 1
        assert assessor.trust_threshold == 0.7

    def test_keyword_form_emits_no_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            TwoPhaseAssessor(
                behavior_test=None,
                trust_function=AverageTrust(),
                trust_threshold=0.9,
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]

    def test_duplicate_positional_and_keyword_raises(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="multiple values"):
                TwoPhaseAssessor(None, AverageTrust(), trust_function=AverageTrust())

    def test_too_many_positionals_raise(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError, match="at most"):
                TwoPhaseAssessor(None, AverageTrust(), 0.9, "extra")

    def test_trust_function_is_required(self):
        with pytest.raises(TypeError, match="trust_function"):
            TwoPhaseAssessor(behavior_test=None)

    def test_assessor_is_the_same_class(self):
        assert Assessor is TwoPhaseAssessor
