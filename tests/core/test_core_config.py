"""Tests for repro.core.config."""

import pytest

from repro.core.config import DEFAULT_CONFIG, BehaviorTestConfig


class TestDefaults:
    def test_paper_settings(self):
        assert DEFAULT_CONFIG.window_size == 10
        assert DEFAULT_CONFIG.confidence == 0.95
        assert DEFAULT_CONFIG.distance == "l1"
        assert DEFAULT_CONFIG.align == "recent"

    def test_min_transactions(self):
        assert DEFAULT_CONFIG.min_transactions == 40
        assert BehaviorTestConfig(window_size=5, min_windows=3).min_transactions == 15


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"window_size": 0},
            {"confidence": 0.0},
            {"confidence": 1.0},
            {"calibration_sets": 0},
            {"min_windows": 0},
            {"multi_step": 0},
            {"p_quantum": -0.01},
            {"align": "center"},
            {"on_insufficient": "explode"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            BehaviorTestConfig(**kwargs)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_CONFIG.window_size = 5


class TestWith:
    def test_with_replaces_field(self):
        changed = DEFAULT_CONFIG.with_(window_size=20)
        assert changed.window_size == 20
        assert changed.confidence == DEFAULT_CONFIG.confidence
        assert DEFAULT_CONFIG.window_size == 10

    def test_with_validates(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.with_(confidence=2.0)
