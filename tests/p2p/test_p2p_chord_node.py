"""Direct tests of the ChordNode-level API (the ring harness aside)."""

import pytest

from repro.p2p.chord import ChordNode, ChordRing, LookupResult, key_of
from repro.p2p.network import SimulatedNetwork


@pytest.fixture()
def pair():
    """Two nodes joined by hand, stabilized manually."""
    network = SimulatedNetwork()
    a = ChordNode("alpha", network, m_bits=16, replicas=2)
    b = ChordNode("beta", network, m_bits=16, replicas=2)
    b.join("alpha")
    for _ in range(3):
        a.stabilize()
        b.stabilize()
        a.fix_fingers()
        b.fix_fingers()
    return network, a, b


class TestLookupResult:
    def test_tuple_and_accessors(self):
        result = LookupResult("node-1", 3)
        assert result == ("node-1", 3)
        assert result.node == "node-1"
        assert result.hops == 3


class TestNodeApi:
    def test_manual_join_links_the_pair(self, pair):
        _, a, b = pair
        assert a.successor == "beta"
        assert b.successor == "alpha"
        assert a.predecessor == "beta"
        assert b.predecessor == "alpha"

    def test_responsible_for_partitions_key_space(self, pair):
        _, a, b = pair
        for key in (0, 1000, 30000, 65535):
            assert a.responsible_for(key) != b.responsible_for(key)

    def test_find_successor_agrees_with_responsibility(self, pair):
        _, a, b = pair
        for key in (7, 12345, 54321):
            owner = a.find_successor(key).node
            owner_node = a if owner == "alpha" else b
            assert owner_node.responsible_for(key)

    def test_put_get_via_either_node(self, pair):
        _, a, b = pair
        key = key_of("some-server", 16)
        a.put(key, "from-a")
        b.put(key, "from-b")
        assert set(a.get(key)) == {"from-a", "from-b"}
        assert set(b.get(key)) == {"from-a", "from-b"}

    def test_leave_hands_data_to_successor(self, pair):
        network, a, b = pair
        key = key_of("record", 16)
        a.storage[key] = ["precious"]
        a.leave()
        assert not network.is_alive("alpha")
        assert "precious" in b.storage.get(key, [])

    def test_lone_node_owns_everything(self):
        network = SimulatedNetwork()
        solo = ChordNode("solo", network, m_bits=16, replicas=2)
        assert solo.responsible_for(0)
        assert solo.responsible_for(65535)
        assert solo.find_successor(1234).node == "solo"

    def test_unknown_message_type_rejected(self, pair):
        network, _, _ = pair
        with pytest.raises(ValueError, match="unknown message type"):
            network.send("alpha", "frobnicate", {})


class TestRepairReplication:
    def test_restores_replica_count(self):
        ring = ChordRing(replicas=3, seed=9)
        for i in range(8):
            ring.add_node(f"n{i}")
        ring.put("key", "v")
        key = key_of("key", 16)
        # wipe all replicas except the owner
        owner = ring.responsible_node("key")
        for name, node in ring.nodes.items():
            if name != owner:
                node.storage.pop(key, None)
        ring.repair_replication()
        holders = [
            name for name, node in ring.nodes.items() if "v" in node.storage.get(key, [])
        ]
        assert len(holders) >= 2
