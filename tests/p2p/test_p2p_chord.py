"""Tests for repro.p2p.chord (ring correctness, lookups, churn, replication)."""

import pytest

from repro.p2p.chord import ChordRing, in_interval, key_of
from repro.p2p.network import SimulatedNetwork


def _ring(n_nodes, replicas=3, seed=0, drop_rate=0.0):
    ring = ChordRing(
        network=SimulatedNetwork(drop_rate=drop_rate, seed=seed),
        replicas=replicas,
        seed=seed,
    )
    for i in range(n_nodes):
        ring.add_node(f"node-{i}")
    return ring


class TestHashing:
    def test_key_deterministic_and_in_range(self):
        assert key_of("abc") == key_of("abc")
        assert 0 <= key_of("abc", 16) < (1 << 16)

    def test_different_names_usually_differ(self):
        keys = {key_of(f"name-{i}") for i in range(100)}
        assert len(keys) > 95  # collisions possible but rare

    def test_in_interval_simple(self):
        assert in_interval(5, 1, 10)
        assert not in_interval(1, 1, 10)
        assert not in_interval(10, 1, 10)
        assert in_interval(10, 1, 10, inclusive_right=True)

    def test_in_interval_wrapping(self):
        # interval (200, 10) wraps through 0
        assert in_interval(250, 200, 10)
        assert in_interval(5, 200, 10)
        assert not in_interval(100, 200, 10)

    def test_in_interval_full_circle(self):
        assert in_interval(42, 7, 7)


class TestRingStructure:
    def test_single_node_owns_everything(self):
        ring = _ring(1)
        node = ring.nodes["node-0"]
        assert node.successor == "node-0"
        assert ring.lookup("anything").node == "node-0"

    def test_successors_form_the_sorted_circle(self):
        ring = _ring(8)
        ids = sorted((key_of(name), name) for name in ring.nodes)
        for idx, (_, name) in enumerate(ids):
            expected_successor = ids[(idx + 1) % len(ids)][1]
            assert ring.nodes[name].successor == expected_successor

    def test_predecessors_consistent(self):
        ring = _ring(6)
        for name, node in ring.nodes.items():
            assert ring.nodes[node.successor].predecessor == name


class TestLookup:
    @pytest.mark.parametrize("n_nodes", [2, 5, 16])
    def test_lookup_matches_ground_truth(self, n_nodes):
        ring = _ring(n_nodes)
        for i in range(50):
            key_name = f"key-{i}"
            assert ring.lookup(key_name).node == ring.responsible_node(key_name)

    def test_lookup_hops_logarithmic(self):
        ring = _ring(32)
        hops = [ring.lookup(f"key-{i}").hops for i in range(100)]
        # O(log n): for 32 nodes expect hops well under n
        assert max(hops) <= 12
        assert sum(hops) / len(hops) <= 6

    def test_lookup_by_integer_key(self):
        ring = _ring(4)
        result = ring.lookup(12345)
        assert result.node in ring.nodes


class TestStorage:
    def test_put_get_roundtrip(self):
        ring = _ring(8)
        ring.put("server-x", {"t": 1})
        ring.put("server-x", {"t": 2})
        values = ring.get("server-x")
        assert {v["t"] for v in values} == {1, 2}

    def test_get_missing_key_empty(self):
        assert _ring(4).get("nothing-here") == []

    def test_put_lands_on_responsible_node(self):
        ring = _ring(8)
        owner = ring.put("server-y", "v")
        assert owner == ring.responsible_node("server-y")
        key = key_of("server-y")
        assert "v" in ring.nodes[owner].storage.get(key, [])

    def test_replication_on_successors(self):
        ring = _ring(8, replicas=3)
        owner = ring.put("server-z", "v")
        key = key_of("server-z")
        holders = [n for n, node in ring.nodes.items() if "v" in node.storage.get(key, [])]
        assert owner in holders
        assert len(holders) >= 2  # owner + at least one replica


class TestChurn:
    def test_graceful_leave_preserves_data(self):
        ring = _ring(8)
        owner = ring.put("server-a", "payload")
        ring.remove_node(owner, graceful=True)
        assert "payload" in ring.get("server-a")

    def test_crash_with_replication_preserves_data(self):
        ring = _ring(8, replicas=3)
        owner = ring.put("server-b", "payload")
        ring.remove_node(owner, graceful=False, stabilize_rounds=4)
        assert "payload" in ring.get("server-b")

    def test_lookup_correct_after_join(self):
        ring = _ring(6)
        ring.add_node("late-joiner")
        for i in range(30):
            key_name = f"post-join-{i}"
            assert ring.lookup(key_name).node == ring.responsible_node(key_name)

    def test_lookup_correct_after_crash(self):
        ring = _ring(8)
        ring.remove_node("node-3", graceful=False, stabilize_rounds=4)
        for i in range(30):
            key_name = f"post-crash-{i}"
            assert ring.lookup(key_name).node == ring.responsible_node(key_name)

    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            _ring(2).remove_node("ghost")

    def test_duplicate_add_raises(self):
        ring = _ring(2)
        with pytest.raises(ValueError):
            ring.add_node("node-0")

    def test_id_collision_refused(self):
        # 'n6' and 'n31' hash to the same position at m_bits=8; two names
        # on one ring position would corrupt ownership intervals silently
        ring = ChordRing(m_bits=8, seed=1)
        ring.add_node("n6")
        with pytest.raises(ValueError, match="id collision"):
            ring.add_node("n31")


class TestLossyNetwork:
    def test_lookup_survives_moderate_drops(self):
        ring = _ring(8, drop_rate=0.1, seed=5)
        correct = sum(
            ring.lookup(f"key-{i}").node == ring.responsible_node(f"key-{i}")
            for i in range(40)
        )
        assert correct >= 35  # retries via successor fallback


class TestValidation:
    def test_ring_constructor(self):
        with pytest.raises(ValueError):
            ChordRing(m_bits=0)
        with pytest.raises(ValueError):
            ChordRing(replicas=0)

    def test_empty_ring_lookup(self):
        with pytest.raises(RuntimeError):
            ChordRing().lookup("x")
