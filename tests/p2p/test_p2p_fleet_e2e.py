"""Acceptance e2e: one trace_id links a lookup's overlay telemetry.

The ISSUE's acceptance criterion: a single Chord lookup, run under a
node scope with a live trace context, must leave ONE trace_id visible
across (a) the per-link network metrics it drove, (b) the lookup
hop-count histogram, and (c) a node-scoped flight-recorder bundle whose
events carry that trace_id.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import context as ctx_mod
from repro.obs import scope
from repro.p2p.chord import ChordRing
from repro.p2p.network import SimulatedNetwork


@pytest.fixture(autouse=True)
def _clean_scope():
    scope.reset()
    yield
    scope.reset()


class TestFleetTraceE2E:
    def test_one_trace_id_spans_links_hops_and_bundle(self, tmp_path):
        network = SimulatedNetwork(seed=3, link_metrics=True)
        ring = ChordRing(network=network, seed=3)
        for i in range(8):
            ring.add_node(f"node-{i}")

        root = ctx_mod.new_root()
        with obs.activate() as session, obs.flight_recording(
            tmp_path
        ) as recorder:
            registry = session.registry
            before = registry.snapshot()
            with ctx_mod.use(root):
                result = ring.lookup("server-42")
            after = registry.snapshot()

            origin = result.node  # owner answered; scope covered the walk
            topology = obs.topology_snapshot(ring)
            per_node, _ = obs.split_snapshot(after)

            # (a) per-link network metrics grew under node attribution
            link_entries = [
                entry
                for view in per_node.values()
                for entry in view.get("p2p.network.link.messages", [])
            ]
            assert link_entries, "lookup produced no per-link metrics"
            for entry in link_entries:
                assert set(entry["labels"]) == {"src", "dst"}

            # (b) the hop histogram recorded this lookup, on the node
            # that initiated the traced walk
            def _hops_count(snapshot):
                return sum(
                    entry["summary"]["count"]
                    for view in obs.split_snapshot(snapshot)[0].values()
                    for entry in view.get("p2p.chord.lookup_hops", [])
                )

            assert _hops_count(after) > _hops_count(before)

            # (c) the chord_lookup event carries the root's trace_id and
            # survives into the node-scoped bundle
            lookup_events = [
                event
                for event in recorder.bundle(reason="probe")["events"]
                if event["event"] == "chord_lookup"
                and event.get("trace_id") == root.trace_id
            ]
            assert len(lookup_events) == 1
            origin_node = lookup_events[0]["node"]

            bundle = obs.node_bundle(
                recorder, origin_node, topology=topology, reason="e2e"
            )
            obs.validate_postmortem_bundle(bundle)
            bundled = [
                event
                for event in bundle["events"]
                if event["event"] == "chord_lookup"
            ]
            assert len(bundled) == 1
            assert bundled[0]["trace_id"] == root.trace_id
            assert bundled[0]["node"] == origin_node
            assert bundled[0]["owner"] == origin

            # the bundle is node-scoped: every event it kept belongs to
            # the origin node, and the topology snapshot rides along
            assert all(
                event.get("node") == origin_node for event in bundle["events"]
            )
            assert bundle["info"]["topology"]["n_nodes"] == 8
            assert bundle["info"]["node"] == origin_node

    def test_bundle_excludes_other_nodes_events(self, tmp_path):
        network = SimulatedNetwork(seed=7, link_metrics=True)
        ring = ChordRing(network=network, seed=7)
        for i in range(6):
            ring.add_node(f"node-{i}")
        with obs.activate(), obs.flight_recording(tmp_path) as recorder:
            for i in range(10):
                ring.lookup(f"server-{i}")
            events = recorder.bundle(reason="probe")["events"]
            nodes = {event.get("node") for event in events}
            assert len(nodes) > 1, "expected lookups from several nodes"
            one = sorted(str(n) for n in nodes)[0]
            bundle = obs.node_bundle(recorder, one)
            assert bundle["events"], "node bundle lost its own events"
            assert {event.get("node") for event in bundle["events"]} == {one}
