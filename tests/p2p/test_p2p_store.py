"""Tests for repro.p2p.store — DHT-backed feedback storage end to end."""

import numpy as np
import pytest

from repro.core.model import generate_honest_outcomes
from repro.core.testing import SingleBehaviorTest
from repro.core.two_phase import TwoPhaseAssessor
from repro.core.verdict import AssessmentStatus
from repro.feedback.records import Feedback, Rating
from repro.p2p.chord import ChordRing
from repro.p2p.network import SimulatedNetwork
from repro.p2p.store import DistributedFeedbackStore
from repro.trust.average import AverageTrust


def _fb(t, server="shop", client=None, good=True):
    return Feedback(
        time=float(t),
        server=server,
        client=client or f"c{t % 7}",
        rating=Rating.POSITIVE if good else Rating.NEGATIVE,
    )


class TestBasics:
    def test_default_ring_construction(self):
        store = DistributedFeedbackStore(n_nodes=4)
        assert len(store.ring.nodes) == 4

    def test_record_and_retrieve_ordered(self):
        store = DistributedFeedbackStore(n_nodes=4)
        store.record(_fb(3))
        store.record(_fb(1))
        store.record(_fb(2, good=False))
        feedbacks = store.feedbacks_for_server("shop")
        assert [f.time for f in feedbacks] == [1.0, 2.0, 3.0]

    def test_servers_index(self):
        store = DistributedFeedbackStore(n_nodes=4)
        store.record(_fb(1, server="a"))
        store.record(_fb(2, server="b"))
        assert store.servers() == {"a", "b"}

    def test_history_materialization(self):
        store = DistributedFeedbackStore(n_nodes=4)
        store.record_many([_fb(t, good=(t % 4 != 0)) for t in range(40)])
        history = store.history("shop")
        assert len(history) == 40
        assert history.has_feedback_metadata

    def test_missing_server(self):
        store = DistributedFeedbackStore(n_nodes=2)
        assert store.feedbacks_for_server("ghost") == []
        with pytest.raises(KeyError):
            store.history("ghost")

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            DistributedFeedbackStore(ring=ChordRing())


class TestDistribution:
    def test_different_servers_land_on_different_nodes(self):
        store = DistributedFeedbackStore(n_nodes=8)
        owners = {store.record(_fb(1, server=f"server-{i}")) for i in range(30)}
        assert len(owners) > 1  # load is actually spread

    def test_survives_owner_crash(self):
        ring = ChordRing(replicas=3, seed=1)
        for i in range(8):
            ring.add_node(f"n{i}")
        store = DistributedFeedbackStore(ring=ring)
        for t in range(20):
            store.record(_fb(t))
        owner = ring.responsible_node("feedback/shop")
        ring.remove_node(owner, graceful=False, stabilize_rounds=4)
        assert len(store.feedbacks_for_server("shop")) == 20

    def test_deduplicates_replica_reads(self):
        store = DistributedFeedbackStore(n_nodes=4)
        fb = _fb(1)
        store.record(fb)
        # simulate an at-least-once duplicate write
        store.ring.put("feedback/shop", fb)
        assert len(store.feedbacks_for_server("shop")) == 1

    def test_lossy_network_roundtrip(self):
        ring = ChordRing(
            network=SimulatedNetwork(drop_rate=0.05, seed=2), replicas=3, seed=2
        )
        for i in range(6):
            ring.add_node(f"n{i}")
        store = DistributedFeedbackStore(ring=ring)
        for t in range(30):
            store.record(_fb(t))
        assert len(store.feedbacks_for_server("shop")) == 30


class TestTwoPhaseOverDht:
    def test_assessment_identical_to_central_ledger(
        self, paper_config, shared_calibrator
    ):
        """The paper's availability assumption, made executable: the same
        two-phase assessment over a central ledger and over the DHT."""
        outcomes = generate_honest_outcomes(300, 0.95, seed=3)
        feedbacks = [
            _fb(t, good=bool(outcome)) for t, outcome in enumerate(outcomes)
        ]

        store = DistributedFeedbackStore(n_nodes=6)
        store.record_many(feedbacks)

        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
            trust_function=AverageTrust(),
            trust_threshold=0.9,
        )
        from repro.feedback.history import TransactionHistory

        central = assessor.assess(TransactionHistory.from_feedbacks(feedbacks))
        distributed = assessor.assess(store.history("shop"))
        assert central.status == distributed.status
        assert central.trust_value == pytest.approx(distributed.trust_value)

    def test_attacker_flagged_through_dht(self, paper_config, shared_calibrator):
        trace = np.tile([0] + [1] * 9, 40)
        store = DistributedFeedbackStore(n_nodes=5)
        store.record_many(
            [_fb(t, good=bool(outcome)) for t, outcome in enumerate(trace)]
        )
        assessor = TwoPhaseAssessor(
            behavior_test=SingleBehaviorTest(paper_config, shared_calibrator),
            trust_function=AverageTrust(),
        )
        assert store.history("shop").p_hat == pytest.approx(0.9)
        assert assessor.assess(store.history("shop")).status is AssessmentStatus.SUSPICIOUS
