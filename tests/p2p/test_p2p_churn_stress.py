"""Churn stress tests for the Chord overlay.

Failure injection at the deployment level: long randomized sequences of
joins, graceful leaves and crashes, with lookup consistency and data
durability checked after every perturbation.  These are the scenarios a
real decentralized feedback store has to survive for the paper's
availability assumption to hold in practice.
"""

import numpy as np
import pytest

from repro.p2p.chord import ChordRing
from repro.p2p.network import SimulatedNetwork


def _consistent(ring, n_keys=25, prefix="probe"):
    """All lookups agree with centrally computed ownership."""
    for i in range(n_keys):
        name = f"{prefix}-{i}"
        if ring.lookup(name).node != ring.responsible_node(name):
            return False
    return True


class TestRandomizedChurn:
    def test_lookups_stay_consistent_through_churn(self):
        rng = np.random.default_rng(42)
        ring = ChordRing(seed=1)
        for i in range(10):
            ring.add_node(f"seed-{i}")
        next_id = 0
        for step in range(25):
            action = rng.random()
            names = sorted(ring.nodes)
            if action < 0.4 or len(names) <= 4:
                ring.add_node(f"churn-{next_id}")
                next_id += 1
            elif action < 0.7:
                ring.remove_node(
                    names[int(rng.integers(0, len(names)))], graceful=True
                )
            else:
                ring.remove_node(
                    names[int(rng.integers(0, len(names)))],
                    graceful=False,
                    stabilize_rounds=4,
                )
            assert _consistent(ring), f"inconsistent after churn step {step}"

    def test_data_survives_interleaved_churn(self):
        rng = np.random.default_rng(7)
        ring = ChordRing(replicas=3, seed=2)
        for i in range(10):
            ring.add_node(f"seed-{i}")
        stored = {}
        next_id = 0
        for step in range(20):
            key = f"record-{step}"
            ring.put(key, f"value-{step}")
            stored[key] = f"value-{step}"
            names = sorted(ring.nodes)
            if step % 3 == 0 and len(names) > 5:
                ring.remove_node(
                    names[int(rng.integers(0, len(names)))],
                    graceful=bool(rng.random() < 0.5),
                    stabilize_rounds=4,
                )
            else:
                ring.add_node(f"late-{next_id}")
                next_id += 1
        for key, value in stored.items():
            assert value in ring.get(key), f"lost {key}"

    def test_mass_crash_within_replication_budget(self):
        # crash replicas-1 nodes at once (sequentially, with repair in
        # between): every record must survive
        ring = ChordRing(replicas=3, seed=3)
        for i in range(12):
            ring.add_node(f"n{i}")
        for i in range(15):
            ring.put(f"k{i}", i)
        victims = sorted(ring.nodes)[:2]
        for victim in victims:
            ring.remove_node(victim, graceful=False, stabilize_rounds=5)
        for i in range(15):
            assert i in ring.get(f"k{i}")

    def test_shrink_to_single_node(self):
        ring = ChordRing(seed=4)
        for i in range(6):
            ring.add_node(f"n{i}")
        ring.put("persistent", "x")
        names = sorted(ring.nodes)
        for name in names[:-1]:
            if name in ring.nodes:
                ring.remove_node(name, graceful=True)
        assert len(ring.nodes) == 1
        assert "x" in ring.get("persistent")
        assert _consistent(ring, n_keys=10)

    def test_regrow_after_shrink(self):
        ring = ChordRing(seed=5)
        for i in range(8):
            ring.add_node(f"n{i}")
        for name in sorted(ring.nodes)[:6]:
            ring.remove_node(name, graceful=True)
        for i in range(8, 16):
            ring.add_node(f"n{i}")
        assert _consistent(ring)


class TestChurnUnderLoss:
    def test_churn_with_lossy_network(self):
        ring = ChordRing(
            network=SimulatedNetwork(drop_rate=0.05, seed=6), replicas=3, seed=6
        )
        for i in range(8):
            ring.add_node(f"n{i}")
        for i in range(10):
            ring.put(f"k{i}", i)
        ring.remove_node(sorted(ring.nodes)[0], graceful=False, stabilize_rounds=6)
        recovered = sum(i in ring.get(f"k{i}") for i in range(10))
        assert recovered >= 9  # drops may hide a value transiently
