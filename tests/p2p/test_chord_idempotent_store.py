"""Regression coverage: digest-keyed idempotent stores, deterministic fetch.

Two documented defects of the DHT store path:

* ``store_replicated`` re-sent by ``_rpc_retry`` (lost reply) applied
  the value twice — the write side now dedups on a content digest that
  travels with every store message;
* ``get``'s replica fallback depended on the caller's own successor
  list, so *which* replica answered varied by vantage point — ``fetch``
  now derives the owner's replica chain by fresh lookups and reports
  which replica served the read.
"""

from __future__ import annotations

import pytest

from repro.p2p.chord import ChordRing, value_digest
from repro.p2p.network import SimulatedNetwork


@pytest.fixture()
def ring():
    ring = ChordRing(SimulatedNetwork(), m_bits=16, replicas=3, seed=5)
    for i in range(5):
        ring.add_node(f"node-{i}")
    return ring


class TestIdempotentStore:
    def test_duplicate_delivery_stores_once(self, ring):
        """The same store message applied twice leaves one copy."""
        owner = ring.put("the-key", {"v": 1})
        node = ring.nodes[owner]
        key = next(k for k, values in node.storage.items() if {"v": 1} in values)
        payload = {"key": key, "value": {"v": 1}, "digest": value_digest({"v": 1})}
        # simulate the retry double-delivery at both store entry points
        node._handle("store_replicated", payload)
        node._handle("store", payload)
        assert node.storage[key].count({"v": 1}) == 1
        for name, other in ring.nodes.items():
            if name != owner and key in other.storage:
                assert other.storage[key].count({"v": 1}) == 1

    def test_retry_under_loss_does_not_duplicate(self):
        """End-to-end: a lossy network re-sends stores; values stay unique."""
        network = SimulatedNetwork(drop_rate=0.25, seed=99)
        ring = ChordRing(network, m_bits=16, replicas=3, seed=5)
        for i in range(5):
            ring.add_node(f"node-{i}")
        for n in range(30):
            ring.put(f"key-{n}", f"value-{n}")
        # drops force _rpc_retry re-sends; a dropped *reply* means the
        # store landed twice — exactly the duplication under test
        assert network.stats.drops > 0, "loss rate chosen to force re-sends"
        for node in ring.nodes.values():
            for values in node.storage.values():
                assert len(values) == len(set(values))

    def test_distinct_values_same_key_both_kept(self, ring):
        ring.put("shared", "first")
        ring.put("shared", "second")
        assert sorted(ring.get("shared")) == ["first", "second"]

    def test_digest_dedup_respects_external_rewind(self, ring):
        """A digest the node has seen must not block a re-store after its
        bucket was externally wiped (replication repair after a crash)."""
        owner = ring.put("rewind", "payload")
        node = ring.nodes[owner]
        key = next(k for k, values in node.storage.items() if "payload" in values)
        node.storage.pop(key)  # crash-and-restore scenario wipes the bucket
        node._handle(
            "store", {"key": key, "value": "payload", "digest": value_digest("payload")}
        )
        assert node.storage[key] == ["payload"]


class TestDeterministicFetch:
    def test_fetch_reports_owner_serving_the_read(self, ring):
        ring.put("observed", 42)
        result = ring.nodes["node-0"].fetch(
            next(
                k
                for k, values in ring.nodes[ring.put("observed", 42)].storage.items()
                if 42 in values
            )
        )
        assert result["values"].count(42) == 1
        assert result["replica"] == result["owner"]
        assert result["attempts"] == [result["owner"]]

    def test_fallback_walks_replicas_in_successor_order(self, ring):
        owner = ring.put("fallback", "v")
        owner_node = ring.nodes[owner]
        key = next(k for k, values in owner_node.storage.items() if "v" in values)
        reader = next(n for n in ring.nodes.values() if n.name != owner)
        chain = reader._replica_chain(owner)
        # the owner still routes lookups (so it stays the lookup's
        # answer) but its read path is down — fetch must walk the chain
        original = owner_node._handle

        def reads_down(message_type, payload):
            if message_type == "fetch":
                return None
            return original(message_type, payload)

        ring.network.unregister(owner)
        ring.network.register(owner, reads_down)
        result = reader.fetch(key)
        assert result["owner"] == owner
        assert result["replica"] == chain[1], "first replica in successor order"
        assert result["values"] == ["v"]
        assert result["attempts"] == [owner, chain[1]]

    def test_all_vantage_points_agree_on_the_serving_replica(self, ring):
        owner = ring.put("agreement", "v")
        key = next(
            k for k, values in ring.nodes[owner].storage.items() if "v" in values
        )
        ring.network.unregister(owner)
        served = {
            node.fetch(key)["replica"]
            for node in ring.nodes.values()
            if node.name != owner
        }
        assert len(served) == 1

    def test_fetch_with_nothing_alive_returns_empty(self, ring):
        owner = ring.put("doomed", "v")
        key = next(
            k for k, values in ring.nodes[owner].storage.items() if "v" in values
        )
        reader = next(n for n in ring.nodes.values() if n.name != owner)
        chain = reader._replica_chain(owner)
        for name in chain:
            if name != reader.name and ring.network.is_alive(name):
                ring.network.unregister(name)
        result = reader.fetch(key)
        if reader.name in chain:
            assert result["values"] == ["v"]  # the reader is a replica itself
        else:
            assert result["values"] == []
            assert result["replica"] is None
