"""Property-based chord invariants under randomized membership churn.

Hypothesis drives interleavings of join / graceful-leave / crash over a
small ring and asserts, after every step, the ownership invariants the
cluster layer (``repro.cluster``) builds on:

* **agreement** — every live node's iterative lookup for a key names the
  same owner, and that owner matches the centrally computed ground truth;
* **partition** — exactly one live node considers itself responsible for
  each key (ownership intervals tile the ring, no gaps, no overlaps);
* **durability** — a value written before the churn stays readable (and
  unduplicated) as long as at least one of its replicas survived each
  individual failure.

``m_bits=32`` keeps name-hash collisions out of the picture (the ring
refuses colliding ids loudly; at 2^32 positions a ten-name pool never
collides).
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.p2p.chord import ChordRing, key_of
from repro.p2p.network import SimulatedNetwork

M_BITS = 32
NODE_POOL = tuple(f"prop-node-{i:02d}" for i in range(10))
KEYS = tuple(f"prop-key-{i}" for i in range(6))

# an op is (kind, pick): `pick` indexes into whatever candidate list the
# kind admits at apply time, so every generated sequence is applicable
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["join", "leave", "crash"]),
        st.integers(min_value=0, max_value=9),
    ),
    max_size=8,
)


def _build_ring() -> ChordRing:
    ring = ChordRing(SimulatedNetwork(), m_bits=M_BITS, replicas=3, seed=17)
    for name in NODE_POOL[:4]:
        ring.add_node(name)
    for key in KEYS:
        ring.put(key, f"value-of-{key}")
    return ring


def _apply(ring: ChordRing, kind: str, pick: int) -> bool:
    """Apply one membership op; returns False when inapplicable."""
    if kind == "join":
        candidates = [n for n in NODE_POOL if n not in ring.nodes]
        if not candidates:
            return False
        ring.add_node(candidates[pick % len(candidates)])
        return True
    members = sorted(ring.nodes)
    if len(members) <= 1:  # never empty the ring
        return False
    victim = members[pick % len(members)]
    ring.remove_node(victim, graceful=(kind == "leave"))
    return True


def _assert_invariants(ring: ChordRing) -> None:
    for key_name in KEYS:
        key = key_of(key_name, M_BITS)
        truth = ring.responsible_node(key_name)
        # agreement: every vantage point's lookup lands on the truth
        for node in ring.nodes.values():
            assert node.find_successor(key).node == truth, (
                f"{node.name} resolves {key_name} to "
                f"{node.find_successor(key).node}, truth is {truth}"
            )
        # partition: exactly one live node claims the key
        claimants = [
            n.name for n in ring.nodes.values() if n.responsible_for(key)
        ]
        assert claimants == [truth], (
            f"{key_name} claimed by {claimants}, truth is {truth}"
        )
        # durability: the pre-churn value survived, exactly once
        values = ring.get(key_name)
        assert values.count(f"value-of-{key_name}") == 1, (
            f"{key_name} -> {values}"
        )


class TestOwnershipUnderChurn:
    @given(ops=ops_strategy)
    def test_invariants_hold_after_every_step(self, ops):
        ring = _build_ring()
        _assert_invariants(ring)
        for kind, pick in ops:
            if _apply(ring, kind, pick):
                _assert_invariants(ring)

    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=9), min_size=3, max_size=3
        )
    )
    def test_crash_only_churn_down_to_a_single_survivor(self, picks):
        """Three crashes from four nodes: the last node standing still
        owns everything and serves every pre-crash value."""
        ring = _build_ring()
        for pick in picks:
            members = sorted(ring.nodes)
            if len(members) <= 1:
                break
            ring.remove_node(members[pick % len(members)], graceful=False)
        _assert_invariants(ring)

    @given(ops=ops_strategy)
    def test_churn_never_loses_late_writes_either(self, ops):
        """A write landed mid-churn obeys the same durability bar."""
        ring = _build_ring()
        wrote_at = len(ops) // 2
        for step, (kind, pick) in enumerate(ops):
            _apply(ring, kind, pick)
            if step == wrote_at:
                ring.put("late-key", "late-value")
        if not ops:
            ring.put("late-key", "late-value")
        assert ring.get("late-key").count("late-value") == 1
