"""Tests for repro.p2p.unstructured (flooding / random-walk feedback search)."""

import pytest

from repro.feedback.records import Feedback, Rating
from repro.p2p.unstructured import UnstructuredOverlay


def _fb(t, server="srv", client="c"):
    return Feedback(
        time=float(t), server=server, client=client, rating=Rating.POSITIVE
    )


def _populated(n_peers=40, n_feedbacks=60, seed=1):
    overlay = UnstructuredOverlay(n_peers, degree=4, seed=seed)
    peers = overlay.peers
    for t in range(n_feedbacks):
        overlay.record(peers[t % n_peers], _fb(t, client=f"c{t}"))
    return overlay


class TestTopology:
    def test_connected(self):
        for seed in range(5):
            assert UnstructuredOverlay(30, degree=3, seed=seed).is_connected()

    def test_degree_reached(self):
        overlay = UnstructuredOverlay(50, degree=5, seed=2)
        degrees = [len(overlay.neighbors(p)) for p in overlay.peers]
        assert min(degrees) >= 5

    def test_neighbors_symmetric(self):
        overlay = UnstructuredOverlay(20, degree=3, seed=3)
        for peer in overlay.peers:
            for neighbor in overlay.neighbors(peer):
                assert peer in overlay.neighbors(neighbor)

    def test_no_self_loops(self):
        overlay = UnstructuredOverlay(20, degree=3, seed=4)
        for peer in overlay.peers:
            assert peer not in overlay.neighbors(peer)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnstructuredOverlay(1)
        with pytest.raises(ValueError):
            UnstructuredOverlay(10, degree=0)
        with pytest.raises(ValueError):
            UnstructuredOverlay(10, degree=10)
        with pytest.raises(KeyError):
            UnstructuredOverlay(5).neighbors("ghost")


class TestFlooding:
    def test_large_ttl_finds_everything(self):
        overlay = _populated()
        result = overlay.flood_query(overlay.peers[0], "srv", ttl=40)
        assert len(result.feedbacks) == overlay.total_feedback_about("srv")
        assert result.peers_reached == len(overlay.peers)

    def test_results_time_ordered(self):
        overlay = _populated()
        result = overlay.flood_query(overlay.peers[0], "srv", ttl=40)
        times = [fb.time for fb in result.feedbacks]
        assert times == sorted(times)

    def test_ttl_zero_is_local_only(self):
        overlay = _populated()
        result = overlay.flood_query(overlay.peers[0], "srv", ttl=0)
        assert result.peers_reached == 1
        assert result.messages == 0

    def test_coverage_grows_with_ttl(self):
        overlay = _populated(n_peers=60)
        origin = overlay.peers[0]
        reached = [
            overlay.flood_query(origin, "srv", ttl=ttl).peers_reached
            for ttl in (1, 2, 4)
        ]
        assert reached[0] < reached[1] < reached[2]

    def test_filters_by_server(self):
        overlay = UnstructuredOverlay(10, degree=3, seed=5)
        overlay.record("peer-0", _fb(1, server="a"))
        overlay.record("peer-1", _fb(2, server="b"))
        result = overlay.flood_query("peer-0", "a", ttl=10)
        assert len(result.feedbacks) == 1
        assert result.feedbacks[0].server == "a"

    def test_validation(self):
        overlay = _populated(n_peers=5)
        with pytest.raises(KeyError):
            overlay.flood_query("ghost", "srv")
        with pytest.raises(ValueError):
            overlay.flood_query("peer-0", "srv", ttl=-1)


class TestRandomWalks:
    def test_partial_but_nonzero_coverage(self):
        overlay = _populated(n_peers=60)
        result = overlay.random_walk_query(
            overlay.peers[0], "srv", walkers=4, walk_length=15, seed=6
        )
        assert 1 < result.peers_reached < len(overlay.peers)
        assert 0 < len(result.feedbacks) <= overlay.total_feedback_about("srv")

    def test_message_budget_exact(self):
        overlay = _populated(n_peers=30)
        result = overlay.random_walk_query(
            overlay.peers[0], "srv", walkers=3, walk_length=10, seed=7
        )
        assert result.messages == 30

    def test_more_walkers_more_coverage(self):
        overlay = _populated(n_peers=80)
        origin = overlay.peers[0]
        few = overlay.random_walk_query(origin, "srv", walkers=1, walk_length=10, seed=8)
        many = overlay.random_walk_query(origin, "srv", walkers=16, walk_length=10, seed=8)
        assert many.peers_reached > few.peers_reached

    def test_validation(self):
        overlay = _populated(n_peers=5)
        with pytest.raises(ValueError):
            overlay.random_walk_query("peer-0", "srv", walkers=0)
        with pytest.raises(KeyError):
            overlay.random_walk_query("ghost", "srv")


class TestCostContrast:
    def test_flooding_complete_but_costlier_than_walks(self):
        # the structured-vs-unstructured argument: full coverage via
        # flooding costs far more messages than a bounded walk budget
        overlay = _populated(n_peers=100, n_feedbacks=100)
        origin = overlay.peers[0]
        flood = overlay.flood_query(origin, "srv", ttl=100)
        walk = overlay.random_walk_query(
            origin, "srv", walkers=4, walk_length=10, seed=9
        )
        assert len(flood.feedbacks) == overlay.total_feedback_about("srv")
        assert flood.messages > 5 * walk.messages
        assert len(walk.feedbacks) < len(flood.feedbacks)

    def test_record_validation(self):
        overlay = UnstructuredOverlay(4, degree=2, seed=10)
        with pytest.raises(KeyError):
            overlay.record("ghost", _fb(1))
