"""Tests for repro.p2p.network."""

import pytest

from repro.p2p.network import NodeUnreachable, SimulatedNetwork


def _echo_handler(name):
    def handler(message_type, payload):
        return {"node": name, "type": message_type, "payload": payload}

    return handler


class TestRegistration:
    def test_register_and_send(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        reply = net.send("a", "ping", {"x": 1})
        assert reply == {"node": "a", "type": "ping", "payload": {"x": 1}}

    def test_duplicate_registration_rejected(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        with pytest.raises(ValueError):
            net.register("a", _echo_handler("a"))

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork().register("", _echo_handler(""))

    def test_unregister(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        net.unregister("a")
        assert not net.is_alive("a")
        with pytest.raises(NodeUnreachable):
            net.send("a", "ping")

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError):
            SimulatedNetwork().unregister("ghost")

    def test_node_ids(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        net.register("b", _echo_handler("b"))
        assert net.node_ids == {"a", "b"}


class TestDelivery:
    def test_unknown_destination_raises(self):
        with pytest.raises(NodeUnreachable):
            SimulatedNetwork().send("ghost", "ping")

    def test_default_payload_empty_dict(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        assert net.send("a", "ping")["payload"] == {}

    def test_drop_rate_zero_never_drops(self):
        net = SimulatedNetwork(drop_rate=0.0, seed=1)
        net.register("a", _echo_handler("a"))
        assert all(net.send("a", "ping") is not None for _ in range(100))
        assert net.stats.drops == 0

    def test_drop_rate_approximated(self):
        net = SimulatedNetwork(drop_rate=0.3, seed=2)
        net.register("a", _echo_handler("a"))
        results = [net.send("a", "ping") for _ in range(2000)]
        drop_fraction = sum(r is None for r in results) / 2000
        assert 0.25 <= drop_fraction <= 0.35
        assert net.stats.drops == sum(r is None for r in results)

    def test_invalid_drop_rate(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(drop_rate=1.0)


class TestStats:
    def test_message_accounting(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        net.send("a", "ping")
        net.send("a", "ping")
        net.send("a", "store")
        assert net.stats.messages == 3
        assert net.stats.by_type == {"ping": 2, "store": 1}


class TestSendReliable:
    def test_lossless_network_sends_once(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        reply = net.send_reliable("a", "ping")
        assert reply["node"] == "a"
        assert net.stats.messages == 1
        assert net.stats.retries == 0

    def test_retries_absorb_drops(self):
        net = SimulatedNetwork(drop_rate=0.4, seed=3)
        net.register("a", _echo_handler("a"))
        replies = [net.send_reliable("a", "ping", max_attempts=5) for _ in range(200)]
        delivered = sum(r is not None for r in replies)
        # per-attempt loss 0.4 => per-call loss 0.4^5 ~ 1%
        assert delivered >= 190
        assert net.stats.retries > 0
        assert net.stats.messages == 200 + net.stats.retries

    def test_exhausted_retries_return_none(self):
        net = SimulatedNetwork(drop_rate=0.99, seed=4)
        net.register("a", _echo_handler("a"))
        assert net.send_reliable("a", "ping", max_attempts=2) is None
        assert net.stats.retries == 1

    def test_unreachable_node_propagates_without_retrying(self):
        net = SimulatedNetwork(drop_rate=0.5, seed=5)
        with pytest.raises(NodeUnreachable):
            net.send_reliable("ghost", "ping", max_attempts=5)
        assert net.stats.retries == 0

    def test_max_attempts_validated(self):
        net = SimulatedNetwork()
        net.register("a", _echo_handler("a"))
        with pytest.raises(ValueError, match="max_attempts"):
            net.send_reliable("a", "ping", max_attempts=0)
