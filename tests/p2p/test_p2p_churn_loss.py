"""Satellite: Chord churn under message loss pins ring repair.

A node leaving and rejoining on a lossy network must (a) fire
successor-list rebuild telemetry, (b) lose no keys thanks to K-way
replication, and (c) leave the ring structurally consistent — the same
property the fleet CLI gates on in CI.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.obs import scope
from repro.p2p.chord import ChordRing
from repro.p2p.network import SimulatedNetwork
from repro.resilience import runtime as res_runtime


@pytest.fixture(autouse=True)
def _clean_scope():
    scope.reset()
    yield
    scope.reset()


def _get_with_retry(ring, key, attempts=4):
    """Read like a real client: drops may hide a value transiently."""
    values = []
    for _ in range(attempts):
        values = ring.get(key)
        if values:
            return values
    return values


def _build_ring(drop_rate, seed, n_nodes=10, replicas=3):
    network = SimulatedNetwork(drop_rate=drop_rate, seed=seed)
    ring = ChordRing(network=network, replicas=replicas, seed=seed)
    for i in range(n_nodes):
        ring.add_node(f"n{i}")
    return ring


class TestChurnUnderLoss:
    def test_leave_rejoin_under_loss_repairs_ring(self, tmp_path):
        ring = _build_ring(drop_rate=0.05, seed=13)
        stored = {f"rec-{i}": f"val-{i}" for i in range(20)}
        for key, value in stored.items():
            ring.put(key, value)

        events_path = tmp_path / "events.jsonl"
        log = obs.EventLog(events_path)
        with obs.activate() as session, res_runtime.activate(None, log):
            ring.remove_node("n3", graceful=True, stabilize_rounds=4)
            ring.add_node("n3")
            ring.stabilize_all(rounds=4)
            ring.repair_replication()
            snapshot = session.registry.snapshot()
        log.close()

        # (a) repair telemetry: successor-list rebuilds were counted
        # per node and the structural events hit the emit funnel
        per_node, _ = obs.split_snapshot(snapshot)
        rebuilds = sum(
            entry["value"]
            for view in per_node.values()
            for entry in view.get("p2p.chord.successor_rebuilds", [])
        )
        assert rebuilds > 0
        names = [event["event"] for event in obs.read_events(events_path)]
        assert "chord_node_leave" in names
        assert "chord_successor_rebuild" in names
        assert "chord_key_handover" in names

        # (b) no lost keys: every record retrievable after the churn
        for key, value in stored.items():
            assert value in _get_with_retry(ring, key), f"lost {key}"

        # (c) the ring is structurally consistent again — the same
        # check the fleet CLI exit code gates on
        report = obs.check_ring(ring)
        assert report["successor_errors"] == []
        assert report["predecessor_errors"] == []
        assert report["orphaned_keys"] == []

    def test_crash_rejoin_under_loss_keeps_data(self):
        ring = _build_ring(drop_rate=0.05, seed=29)
        stored = {f"doc-{i}": f"val-{i}" for i in range(15)}
        for key, value in stored.items():
            ring.put(key, value)
        ring.remove_node("n7", graceful=False, stabilize_rounds=4)
        ring.add_node("n7")
        ring.stabilize_all(rounds=4)
        ring.repair_replication()
        for key, value in stored.items():
            assert value in _get_with_retry(ring, key), f"lost {key}"
        for key in stored:
            assert ring.lookup(key).node == ring.responsible_node(key)

    def test_rebuild_counter_quiet_without_churn(self):
        # a stable ring settles: once converged, further stabilize
        # rounds must not report successor-list rebuilds
        ring = _build_ring(drop_rate=0.0, seed=5)
        ring.stabilize_all(rounds=2)
        with obs.activate() as session:
            ring.stabilize_all(rounds=2)
            snapshot = session.registry.snapshot()
        per_node, _ = obs.split_snapshot(snapshot)
        rebuilds = sum(
            entry["value"]
            for view in per_node.values()
            for entry in view.get("p2p.chord.successor_rebuilds", [])
        )
        assert rebuilds == 0
