"""Tests for repro.p2p.gossip."""

import numpy as np
import pytest

from repro.p2p.gossip import GossipAggregator, ReputationGossip, push_pull_round


class TestPushPullRound:
    def test_mean_invariant(self):
        rng = np.random.default_rng(1)
        values = rng.random(101)  # odd count: one peer idles
        updated = push_pull_round(values, rng)
        assert updated.mean() == pytest.approx(values.mean())

    def test_variance_decreases(self):
        rng = np.random.default_rng(2)
        values = rng.random(100)
        updated = push_pull_round(values, rng)
        assert updated.var() < values.var()

    def test_input_not_mutated(self):
        rng = np.random.default_rng(3)
        values = np.array([0.0, 1.0])
        push_pull_round(values, rng)
        np.testing.assert_array_equal(values, [0.0, 1.0])


class TestGossipAggregator:
    def test_converges_to_mean(self):
        agg = GossipAggregator([0.0] * 50 + [1.0] * 50, seed=4)
        rounds = agg.run_until(tolerance=0.01)
        assert rounds < 60
        assert agg.max_error() <= 0.01
        assert agg.true_mean == pytest.approx(0.5)

    def test_exponential_convergence(self):
        agg = GossipAggregator(np.random.default_rng(5).random(128), seed=5)
        errors = []
        for _ in range(20):
            errors.append(agg.max_error())
            agg.run_round()
        # error after 20 rounds is a small fraction of the initial error
        assert agg.max_error() < errors[0] / 10

    def test_uniform_values_converged_immediately(self):
        agg = GossipAggregator([0.7] * 10, seed=6)
        assert agg.run_until(tolerance=1e-9) == 0

    def test_non_convergence_raises(self):
        agg = GossipAggregator([0.0, 1.0, 0.5], seed=7)
        with pytest.raises(RuntimeError):
            agg.run_until(tolerance=1e-15, max_rounds=3)

    def test_validation(self):
        with pytest.raises(ValueError):
            GossipAggregator([])
        agg = GossipAggregator([1.0, 2.0])
        with pytest.raises(ValueError):
            agg.run_until(tolerance=0.0)


class TestReputationGossip:
    def _populated(self, seed=8):
        rng = np.random.default_rng(seed)
        gossip = ReputationGossip(n_peers=40, seed=seed)
        # each peer reports a few transactions with the 0.9-quality server
        for peer in range(40):
            for _ in range(5):
                gossip.record_feedback(peer, "srv", int(rng.random() < 0.9))
        return gossip

    def test_global_reputation_is_average(self):
        gossip = ReputationGossip(n_peers=4, seed=9)
        gossip.record_feedback(0, "s", 1)
        gossip.record_feedback(1, "s", 1)
        gossip.record_feedback(2, "s", 0)
        gossip.record_feedback(3, "s", 0)
        assert gossip.global_reputation("s") == pytest.approx(0.5)

    def test_estimates_converge_to_global(self):
        gossip = self._populated()
        gossip.run_rounds(30)
        assert gossip.estimation_spread("srv") < 0.02

    def test_rounds_reduce_spread(self):
        gossip = self._populated(seed=10)
        before = gossip.estimation_spread("srv")
        gossip.run_rounds(15)
        assert gossip.estimation_spread("srv") < before

    def test_matches_average_trust_function(self):
        from repro.trust.average import AverageTrust

        rng = np.random.default_rng(11)
        gossip = ReputationGossip(n_peers=20, seed=11)
        outcomes = []
        for t in range(200):
            outcome = int(rng.random() < 0.85)
            outcomes.append(outcome)
            gossip.record_feedback(t % 20, "srv", outcome)
        gossip.run_rounds(40)
        centralized = AverageTrust().score(outcomes)
        assert gossip.global_reputation("srv") == pytest.approx(centralized)
        assert gossip.estimate(0, "srv") == pytest.approx(centralized, abs=0.02)

    def test_multiple_servers_tracked_independently(self):
        gossip = ReputationGossip(n_peers=10, seed=12)
        for peer in range(10):
            gossip.record_feedback(peer, "good", 1)
            gossip.record_feedback(peer, "bad", 0)
        assert gossip.servers() == ["bad", "good"]
        assert gossip.global_reputation("good") == 1.0
        assert gossip.global_reputation("bad") == 0.0

    def test_unknown_server_raises(self):
        with pytest.raises(KeyError):
            ReputationGossip(n_peers=2).estimate(0, "nope")
        with pytest.raises(KeyError):
            ReputationGossip(n_peers=2).global_reputation("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            ReputationGossip(n_peers=1)
        gossip = ReputationGossip(n_peers=3)
        with pytest.raises(ValueError):
            gossip.record_feedback(5, "s", 1)
        with pytest.raises(ValueError):
            gossip.record_feedback(0, "s", 2)
        with pytest.raises(ValueError):
            gossip.run_rounds(-1)


class TestGossipUnderMessageLoss:
    """Regression: push-pull averaging still converges when every exchange
    travels a lossy SimulatedNetwork at drop_rate=0.2, provided exchanges
    go through the bounded-retry send wrapper."""

    @staticmethod
    def _run_networked_gossip(drop_rate, *, use_retries, rounds=40, n_peers=32):
        from repro.p2p.network import SimulatedNetwork

        net = SimulatedNetwork(drop_rate=drop_rate, seed=11)
        values = list(np.random.default_rng(12).random(n_peers))

        def make_handler(index):
            def handler(message_type, payload):
                assert message_type == "pushpull"
                mine = values[index]
                values[index] = (mine + payload["value"]) / 2.0
                return {"value": mine}

            return handler

        for i in range(n_peers):
            net.register(f"peer-{i}", make_handler(i))

        pair_rng = np.random.default_rng(13)
        for _ in range(rounds):
            order = pair_rng.permutation(n_peers)
            for a, b in zip(order[0::2], order[1::2]):
                if use_retries:
                    reply = net.send_reliable(
                        f"peer-{b}", "pushpull", {"value": values[a]},
                        max_attempts=4,
                    )
                else:
                    reply = net.send(
                        f"peer-{b}", "pushpull", {"value": values[a]}
                    )
                if reply is not None:
                    values[a] = (values[a] + reply["value"]) / 2.0
        return np.asarray(values), net.stats

    def test_converges_at_drop_rate_0_2_with_retries(self):
        values, stats = self._run_networked_gossip(0.2, use_retries=True)
        spread = values.max() - values.min()
        assert spread < 1e-3
        assert stats.retries > 0
        assert stats.drops > 0

    def test_mean_is_preserved_under_loss(self):
        """A dropped request updates neither side, so the global mean is
        invariant even on a lossy network."""
        baseline = np.random.default_rng(12).random(32).mean()
        values, _ = self._run_networked_gossip(0.2, use_retries=True)
        assert values.mean() == pytest.approx(baseline)

    def test_retries_beat_bare_sends_at_equal_rounds(self):
        """The wrapper's value: strictly tighter convergence than bare
        lossy sends over the same number of rounds."""
        with_retries, _ = self._run_networked_gossip(0.2, use_retries=True, rounds=15)
        without, _ = self._run_networked_gossip(0.2, use_retries=False, rounds=15)
        spread_with = with_retries.max() - with_retries.min()
        spread_without = without.max() - without.min()
        assert spread_with < spread_without
