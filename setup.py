"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline evaluation environment has setuptools but not `wheel`, so the
PEP 660 editable path is unavailable; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
