#!/usr/bin/env python
"""Trust-function shootout inside a live reputation ecosystem.

Runs the same mixed population (honest servers + a hibernating and a
periodic attacker, both entering with an established 500-transaction
reputation) under four different phase-2 trust functions, with and
without the phase-1 behavior screen, using the full simulation engine:
clients arrive per the paper's probabilistic model, assess servers, and
transact only on a TRUSTED verdict.

The quantities of interest are the attacker harm that reached clients
(bad transactions served by the two attackers) and the honest servers'
throughput — a good screen cuts the former without collapsing the
latter.  Because every client request triggers a fresh assessment, the
screen here runs multi-testing at 99% confidence with a coarse suffix
schedule; the paper's default (95%, step 50) maximizes one-shot
detection instead (see examples/detection_tuning.py for the trade-off).

Run:  python examples/trust_function_shootout.py   (takes ~a minute)
"""

from repro import BehaviorTestConfig, MultiBehaviorTest, TwoPhaseAssessor, make_trust_function
from repro.simulation import ScenarioConfig, build_simulation

SCREEN_CONFIG = BehaviorTestConfig(confidence=0.99, multi_step=200, min_windows=10)


def run_ecosystem(trust_name: str, screened: bool, seed: int = 11) -> dict:
    trust_kwargs = {"lam": 0.5} if trust_name == "weighted" else {}
    assessor = TwoPhaseAssessor(
        behavior_test=MultiBehaviorTest(SCREEN_CONFIG) if screened else None,
        trust_function=make_trust_function(trust_name, **trust_kwargs),
        trust_threshold=0.9,
    )
    config = ScenarioConfig(
        n_honest_servers=4,
        n_hibernating=1,
        n_periodic=1,
        n_clients=30,
        attack_prep=500,
        attack_bads=80,
        periodic_window=20,
        prior_history_size=300,
        bootstrap_transactions=0,
        exploration=0.02,
    )
    simulation = build_simulation(config, assessor, seed=seed)
    metrics = simulation.run(80)
    attacker_bad = honest_txns = 0
    for server_id, server_metrics in metrics.per_server.items():
        if server_id.startswith(("hibernating", "periodic")):
            attacker_bad += server_metrics.bad_transactions
        else:
            honest_txns += server_metrics.transactions
    return {
        "attacker_bad": attacker_bad,
        "honest_txns": honest_txns,
        "suspicious_refusals": int(metrics.summary()["refusals_suspicious"]),
    }


def main() -> None:
    print(f"{'trust function':15s} {'screen':>7s} {'attacker bad txns':>18s} "
          f"{'honest txns':>12s} {'refusals':>9s}")
    print("-" * 66)
    for trust_name in ("average", "weighted", "beta", "decay"):
        for screened in (False, True):
            stats = run_ecosystem(trust_name, screened)
            print(
                f"{trust_name:15s} {'yes' if screened else 'no':>7s} "
                f"{stats['attacker_bad']:>18d} {stats['honest_txns']:>12d} "
                f"{stats['suspicious_refusals']:>9d}"
            )
    print()
    print("'attacker bad txns' is the harm that reached clients from the two")
    print("attackers; 'refusals' counts requests the behavior screen rejected.")
    print("The screen cuts attacker harm for every trust function while the")
    print("honest servers keep transacting — the paper's composition claim:")
    print("phase 1 complements, rather than replaces, phase 2.")


if __name__ == "__main__":
    main()
