#!/usr/bin/env python
"""Fully decentralized deployment: DHT feedback storage + gossip reputation.

The paper assumes a server's complete feedback record is retrievable
even without a central server.  This example runs the whole pipeline
with no central component:

1. feedback about two servers (one honest, one hibernating attacker) is
   written into a Chord ring of 12 storage nodes, replicated 3x;
2. a storage node is *crashed* mid-way; nothing is lost;
3. the two-phase assessment runs over histories materialized from the
   DHT, flagging the attacker;
4. independently, 30 peers gossip their local feedback summaries and
   every peer converges to the same average reputation — the phase-2
   signal, decentralized.

Run:  python examples/dht_reputation.py
"""

import numpy as np

from repro import (
    AverageTrust,
    Feedback,
    MultiBehaviorTest,
    Rating,
    TwoPhaseAssessor,
    generate_honest_outcomes,
)
from repro.p2p import ChordRing, DistributedFeedbackStore, ReputationGossip


def build_traces(seed=17):
    honest = generate_honest_outcomes(600, 0.95, seed=seed)
    attacker = np.concatenate(
        [np.ones(560, dtype=np.int8), np.zeros(40, dtype=np.int8)]
    )
    return {"tidy-mirrors": honest, "trapdoor-cdn": attacker}


def main() -> None:
    ring = ChordRing(replicas=3, seed=1)
    for i in range(12):
        ring.add_node(f"storage-{i}")
    store = DistributedFeedbackStore(ring=ring)

    traces = build_traces()
    for server, outcomes in traces.items():
        for t, outcome in enumerate(outcomes):
            store.record(
                Feedback(
                    time=float(t),
                    server=server,
                    client=f"peer-{t % 30}",
                    rating=Rating.POSITIVE if outcome else Rating.NEGATIVE,
                )
            )
    print(f"stored {sum(len(v) for v in traces.values())} feedbacks "
          f"across {len(ring.nodes)} nodes "
          f"({ring.network.stats.messages} messages)")

    # crash the node responsible for the attacker's feedback
    victim = ring.responsible_node("feedback/trapdoor-cdn")
    ring.remove_node(victim, graceful=False)
    print(f"crashed {victim}; replicas keep the data available\n")

    assessor = TwoPhaseAssessor(
        behavior_test=MultiBehaviorTest(),
        trust_function=AverageTrust(),
        trust_threshold=0.9,
    )
    for server in traces:
        history = store.history(server)
        result = assessor.assess(history)
        print(f"{server:15s} n={len(history):4d}  -> {result.status.value}")

    # gossip: every peer learns the average reputation without the DHT
    print("\npush-pull gossip (30 peers, no central aggregation):")
    gossip = ReputationGossip(n_peers=30, seed=2)
    for server, outcomes in traces.items():
        for t, outcome in enumerate(outcomes):
            gossip.record_feedback(t % 30, server, int(outcome))
    gossip.run_rounds(30)
    for server in traces:
        truth = gossip.global_reputation(server)
        spread = gossip.estimation_spread(server)
        print(f"  {server:15s} global={truth:.3f}  max peer error={spread:.4f}")
    print("\nNote the two servers are indistinguishable by reputation alone —")
    print("both ratios are ~0.93-0.95 — which is exactly why phase 1 above")
    print("had to screen the transaction *pattern*, not the ratio.")


if __name__ == "__main__":
    main()
