#!/usr/bin/env python
"""Tuning the behavior test: detection power vs. false alarms.

The test has two central knobs — the window size ``m`` and the confidence
level behind the threshold ε.  This example sweeps both and measures, on
synthetic populations:

* the false-positive rate on genuinely honest players (should track
  ``1 - confidence``), and
* the detection rate on randomized periodic attackers (Fig. 7's
  hardest-to-catch workload).

Run:  python examples/detection_tuning.py
"""

import numpy as np

from repro import BehaviorTestConfig, SingleBehaviorTest, generate_honest_outcomes
from repro.adversary import periodic_attack_history


def rates(test: SingleBehaviorTest, trials: int, seed: int):
    rng = np.random.default_rng(seed)
    false_positives = 0
    detections = 0
    for _ in range(trials):
        honest = generate_honest_outcomes(800, 0.95, seed=rng)
        if not test.test(honest).passed:
            false_positives += 1
        attack = periodic_attack_history(800, 40, attack_rate=0.1, seed=rng)
        if not test.test(attack).passed:
            detections += 1
    return false_positives / trials, detections / trials


def main() -> None:
    trials = 150
    print(f"{'window m':>8s} {'confidence':>10s} {'false-pos':>10s} {'detection':>10s}")
    print("-" * 44)
    for m in (5, 10, 20):
        for confidence in (0.90, 0.95, 0.99):
            config = BehaviorTestConfig(window_size=m, confidence=confidence)
            test = SingleBehaviorTest(config)
            fp, det = rates(test, trials, seed=3)
            print(f"{m:>8d} {confidence:>10.2f} {fp:>10.3f} {det:>10.3f}")
    print()
    print("Lower confidence -> tighter ε -> more detections but more false")
    print("alarms on honest players; the window size trades sensitivity to")
    print("short bursts (small m) against distributional resolution (large m).")
    print("The paper's settings (m=10, 95%) sit at the balanced corner.")


if __name__ == "__main__":
    main()
