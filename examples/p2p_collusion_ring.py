#!/usr/bin/env python
"""Collusion ring: how much does a fake-feedback ring really save?

Reproduces the Sec. 5.2 setting interactively: an attacker with a
five-member colluder ring (out of 100 potential clients) wants to cheat
20 victims while keeping its reputation above 0.9.  We run the campaign
under three defenses and report the attacker's *real* cost — good
services delivered to non-colluders — plus how large a genuine supporter
base each defense forces it to build.

Run:  python examples/p2p_collusion_ring.py
"""

from repro import (
    AverageTrust,
    CollusionResilientMultiTest,
    CollusionResilientTest,
)
from repro.adversary import ColludingStrategicAttacker


def main() -> None:
    prep_size = 400
    defenses = [
        ("average trust only", None),
        ("+ collusion-resilient single test", CollusionResilientTest()),
        ("+ collusion-resilient multi test", CollusionResilientMultiTest()),
    ]

    print(f"attacker prep: {prep_size} colluder-backed transactions; goal: 20 cheats")
    print(f"{'defense':36s} {'real goods':>10s} {'fake fb':>8s} "
          f"{'supporters':>10s} {'goal?':>6s}")
    print("-" * 76)
    for name, test in defenses:
        attacker = ColludingStrategicAttacker(
            AverageTrust(),
            test,
            trust_threshold=0.9,
            n_clients=100,
            n_colluders=5,
            target_bads=20,
        )
        result = attacker.run(prep_size, seed=2008)
        print(
            f"{name:36s} {result.good_transactions:>10d} "
            f"{result.colluder_feedbacks:>8d} "
            f"{int(result.extra['supporter_base']):>10d} "
            f"{'yes' if result.reached_goal else 'NO':>6s}"
        )

    print()
    print("Without behavior testing the ring makes the campaign free: every")
    print("trust-value dip is patched with a fabricated positive.  The")
    print("collusion-resilient tests group feedback by issuer before testing,")
    print("so fabricated positives pile into a few huge groups and stop")
    print("covering for the victims' negatives — the attacker is forced to")
    print("serve real clients, i.e. to behave like an honest player.")


if __name__ == "__main__":
    main()
