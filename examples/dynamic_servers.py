#!/usr/bin/env python
"""Dynamic honest players: when the static model raises false alarms.

Sec. 3.1 of the paper assumes a static success probability "for
simplicity" and sketches the extensions this library implements:

* an honest file server whose quality drops after a datacenter
  migration (piecewise-stationary p) — handled by change-point
  **segmented** testing;
* an honest media server congested on weekends (time-dependent p) —
  handled by **temporal** testing with a weekday/weekend bucket.

The example shows the static test flagging both honest servers (false
alarms), the matching extension clearing them, and a genuinely
manipulative server still being caught by every variant.

Run:  python examples/dynamic_servers.py
"""

import numpy as np

from repro import (
    Feedback,
    Rating,
    SegmentedBehaviorTest,
    SingleBehaviorTest,
    TemporalBehaviorTest,
    TransactionHistory,
    generate_honest_outcomes,
)
from repro.core import weekday_weekend_bucket


def migrated_server():
    """Honest; quality shifted 0.97 -> 0.80 after transaction 700."""
    return np.concatenate(
        [
            generate_honest_outcomes(700, 0.97, seed=31),
            generate_honest_outcomes(700, 0.80, seed=32),
        ]
    )


def weekend_congested_server():
    """Honest; 0.97 on weekdays, 0.65 on weekends (time in hours)."""
    rng = np.random.default_rng(33)
    feedbacks = []
    for t in range(1400):
        hours = float(t)
        p = 0.97 if weekday_weekend_bucket(hours) == "weekday" else 0.65
        feedbacks.append(
            Feedback(
                time=hours,
                server="weekend-woes",
                client=f"c{t % 13}",
                rating=Rating.POSITIVE if rng.random() < p else Rating.NEGATIVE,
            )
        )
    return TransactionHistory.from_feedbacks(feedbacks)


def manipulative_server():
    """Strategic periodic cheating: one bad per 10, like clockwork."""
    return np.tile([0] + [1] * 9, 140)


def show(name, static_ok, extension_name, extension_ok):
    print(f"{name:18s} static: {'ok' if static_ok else 'FLAG':4s}   "
          f"{extension_name}: {'ok' if extension_ok else 'FLAG'}")


def main() -> None:
    static = SingleBehaviorTest()
    segmented = SegmentedBehaviorTest()
    temporal = TemporalBehaviorTest(weekday_weekend_bucket)

    migrated = migrated_server()
    report = segmented.test(migrated)
    show("migrated-mirror", static.test(migrated).passed, "segmented", report.passed)
    print(f"{'':18s} detected regimes: "
          + ", ".join(f"[{s.start}:{s.end}) p={s.p_hat:.2f}" for s in report.segments))

    weekend = weekend_congested_server()
    t_report = temporal.test(weekend)
    show("weekend-woes", static.test(weekend.outcomes()).passed, "temporal", t_report.passed)
    for bucket, verdict in t_report.by_bucket:
        print(f"{'':18s} {bucket}: p_hat={verdict.p_hat:.2f} "
              f"distance={verdict.distance:.3f} (eps={verdict.threshold:.3f})")

    cheat = manipulative_server()
    show("clockwork-cheat", static.test(cheat).passed, "segmented", segmented.test(cheat).passed)

    print()
    print("Both honest-but-dynamic servers trip the static model and are")
    print("cleared by the matching extension; the manipulator is caught by")
    print("both — segmentation cannot explain away a within-regime pattern.")


if __name__ == "__main__":
    main()
