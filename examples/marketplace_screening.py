#!/usr/bin/env python
"""Marketplace screening: audit a population of sellers.

Models the paper's motivating setting — an online-auction community where
buyers must assess stranger sellers.  A mixed population of sellers is
generated (honest players of varying quality, hibernating and periodic
attackers) and every seller is screened with the two-phase assessment.
The report shows, per seller, the bare reputation a buyer would see and
what the behavior tests conclude.

Run:  python examples/marketplace_screening.py
"""

import numpy as np

from repro import (
    AverageTrust,
    MultiBehaviorTest,
    SingleBehaviorTest,
    TransactionHistory,
    generate_honest_outcomes,
)
from repro.adversary import hibernating_attack_history, periodic_attack_history


def build_sellers(seed: int = 7):
    """A marketplace of eight sellers with known ground truth."""
    rng = np.random.default_rng(seed)
    sellers = {}

    # Honest sellers: quality varies, behavior is consistent.
    for name, quality in [
        ("antiques-by-anna", 0.98),
        ("bobs-books", 0.95),
        ("carols-cameras", 0.90),
        ("dans-discounts", 0.80),  # mediocre but honest
    ]:
        outcomes = generate_honest_outcomes(800, quality, seed=rng)
        sellers[name] = ("honest", TransactionHistory.from_outcomes(outcomes, name))

    # Hibernating attackers: flawless cover, then a burst of fraud.
    for name, prep, burst in [("eves-electronics", 700, 40), ("pop-up-phones", 300, 25)]:
        trace = hibernating_attack_history(prep, burst, seed=rng)
        sellers[name] = ("hibernating", TransactionHistory.from_outcomes(trace, name))

    # Periodic attackers: steady trickle of fraud, rebuilt in between.
    for name, window in [("flaky-fashion", 20), ("gadget-grifter", 40)]:
        trace = periodic_attack_history(800, window, seed=rng)
        sellers[name] = ("periodic", TransactionHistory.from_outcomes(trace, name))

    return sellers


def main() -> None:
    sellers = build_sellers()
    trust = AverageTrust()
    single = SingleBehaviorTest()
    multi = MultiBehaviorTest()

    print(f"{'seller':18s} {'ground truth':12s} {'reputation':>10s} "
          f"{'scheme1':>8s} {'scheme2':>8s}")
    print("-" * 62)
    flagged, missed, false_alarms = [], [], []
    for name, (truth, history) in sorted(sellers.items()):
        reputation = trust.score(history)
        s1 = "ok" if single.test(history).passed else "FLAG"
        s2 = "ok" if multi.test(history).passed else "FLAG"
        print(f"{name:18s} {truth:12s} {reputation:10.3f} {s1:>8s} {s2:>8s}")
        if truth != "honest" and s2 == "FLAG":
            flagged.append(name)
        if truth != "honest" and s2 == "ok":
            missed.append(name)
        if truth == "honest" and s2 == "FLAG":
            false_alarms.append(name)

    print()
    print(f"attackers flagged by multi-testing: {len(flagged)} "
          f"({', '.join(flagged) if flagged else 'none'})")
    if missed:
        print(f"attackers that slipped through:     {', '.join(missed)}")
    if false_alarms:
        print(f"honest sellers flagged (false alarms): {', '.join(false_alarms)}")
        print("  multi-testing runs many 95%-confidence rounds, so occasional")
        print("  false alarms on honest players are expected; the paper treats")
        print("  flags as 'prompt the user for further examination'.")
    print("\nNote how 'dans-discounts' keeps a LOW reputation but passes the")
    print("behavior tests: honest-but-mediocre is consistent behavior, and the")
    print("trust threshold (phase 2), not the screen (phase 1), rejects it.")


if __name__ == "__main__":
    main()
