#!/usr/bin/env python
"""Quickstart: screen a server's history before trusting its reputation.

Builds two servers with the *same* 95% positive-feedback ratio — one
honest, one a hibernating attacker saving all its bad transactions for
the end — and shows why a trust function alone cannot tell them apart,
while the paper's two-phase assessment can.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AverageTrust,
    MultiBehaviorTest,
    SingleBehaviorTest,
    TransactionHistory,
    TwoPhaseAssessor,
    generate_honest_outcomes,
)


def main() -> None:
    rng_seed = 42
    n = 1000

    # An honest player: outcomes are iid Bernoulli(0.95) — the bad ones
    # are scattered, caused by factors outside the server's control.
    honest = TransactionHistory.from_outcomes(
        generate_honest_outcomes(n, 0.95, seed=rng_seed), server="alice"
    )

    # A hibernating attacker with the *same* overall ratio: it behaved
    # perfectly for 950 transactions, then cheated 50 clients in a row.
    attack_trace = np.concatenate(
        [np.ones(n - 50, dtype=np.int8), np.zeros(50, dtype=np.int8)]
    )
    attacker = TransactionHistory.from_outcomes(attack_trace, server="mallory")

    trust = AverageTrust()
    print("Phase-2-only view (what a bare trust function sees):")
    print(f"  alice   trust = {trust.score(honest):.3f}")
    print(f"  mallory trust = {trust.score(attacker):.3f}")
    print("  -> indistinguishable.\n")

    for name, test in [
        ("single behavior test (Scheme 1)", SingleBehaviorTest()),
        ("multi behavior testing (Scheme 2)", MultiBehaviorTest()),
    ]:
        assessor = TwoPhaseAssessor(
            behavior_test=test, trust_function=trust, trust_threshold=0.9
        )
        print(f"Two-phase assessment with {name}:")
        for history in (honest, attacker):
            verdict = assessor.assess(history)
            trust_str = (
                f"trust={verdict.trust_value:.3f}"
                if verdict.trust_value is not None
                else "trust not computed"
            )
            print(f"  {history.server:8s} -> {verdict.status.value:10s} ({trust_str})")
        print()


if __name__ == "__main__":
    main()
