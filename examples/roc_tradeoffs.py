#!/usr/bin/env python
"""Operating-point analysis: choosing the confidence level for a deployment.

The paper fixes 95% confidence; a deployment should pick its own point.
This example sweeps the confidence knob against two workloads — honest
0.95-quality players vs. randomized periodic attackers (Fig. 7's
hardest) — and prints the ROC points, AUC, and the Youden-optimal
confidence for the single and multi tests.

It then asks the complementary question the paper's conclusion raises:
how much can a *perfectly camouflaged* attacker (iid cheating, no
pattern at all) get away with?  Answer: exactly up to the trust
threshold — camouflage defeats any pattern test, and that residual is
phase 2's job.  The behavior tests' value is forcing attackers into
that camouflaged regime.

Run:  python examples/roc_tradeoffs.py   (takes ~a minute)
"""

from repro import MultiBehaviorTest, SingleBehaviorTest, generate_honest_outcomes
from repro.adversary import periodic_attack_history
from repro.analysis import auc, max_sustainable_cheat_rate, roc_curve


def honest_gen(rng):
    return generate_honest_outcomes(800, 0.95, seed=rng)


def attack_gen(rng):
    return periodic_attack_history(800, 30, attack_rate=0.1, seed=rng)


def main() -> None:
    confidences = (0.5, 0.7, 0.8, 0.9, 0.95, 0.99)
    factories = {
        "single": lambda cfg: SingleBehaviorTest(cfg),
        "multi": lambda cfg: MultiBehaviorTest(cfg),
    }
    for name, factory in factories.items():
        points = roc_curve(
            honest_gen,
            attack_gen,
            test_factory=factory,
            confidences=confidences,
            trials=80,
            seed=9,
        )
        print(f"{name} behavior test:")
        print(f"  {'confidence':>10s} {'FPR':>6s} {'TPR':>6s} {'Youden J':>9s}")
        for p in points:
            print(
                f"  {p.confidence:>10.3f} {p.false_positive_rate:>6.3f} "
                f"{p.detection_rate:>6.3f} {p.youden_j:>9.3f}"
            )
        best = max(points, key=lambda p: p.youden_j)
        print(f"  AUC = {auc(points):.3f}; Youden-optimal confidence = "
              f"{best.confidence}\n")

    print("camouflaged (iid) attacker — max sustainable cheat rate:")
    for name, test in [("single", SingleBehaviorTest()), ("multi", MultiBehaviorTest())]:
        rate = max_sustainable_cheat_rate(test, history_length=800, trials=25, seed=10)
        print(f"  {name:6s}: {rate:.2f}  (trust threshold caps it at 0.10)")
    print()
    print("Both tests tolerate iid cheating right up to the trust cap: a")
    print("statistically honest pattern IS honest-player behavior.  What the")
    print("tests buy is that every OTHER strategy — bursts, periodicity,")
    print("collusion recycling — costs more than camouflage, which bounds the")
    print("attacker's damage rate at (1 - threshold) per transaction.")


if __name__ == "__main__":
    main()
