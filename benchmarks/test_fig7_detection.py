"""Benchmark: regenerate Fig. 7 (detection rate vs. attack window size)."""

from conftest import run_once

from repro.experiments import run_fig7

WINDOWS = (10, 20, 40, 80)


def test_fig7_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark,
        run_fig7,
        attack_windows=WINDOWS,
        trials=120,
        base_seed=2008,
    )
    attach_table(benchmark, result)

    rates = dict(zip(result.column("attack_window"), result.column("single_detection_rate")))
    # tight attack windows force an under-dispersed pattern: caught
    assert rates[10] >= 0.9
    # detection decays monotonically (modulo sampling noise) toward the
    # binomial limit as the window grows — the paper's headline curve
    assert rates[10] > rates[40] > rates[80] - 0.05
    assert rates[80] < 0.5
