"""Benchmark: regenerate Fig. 7 (detection rate vs. attack window size).

Set ``BENCH_DIR`` to also emit a machine-readable ``BENCH_fig7.json``
artifact (schema in ``repro.obs.bench``) from a quick fig7 run.
"""

import os

from conftest import run_once

from repro.experiments import run_fig7

WINDOWS = (10, 20, 40, 80)


def test_fig7_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark,
        run_fig7,
        attack_windows=WINDOWS,
        trials=120,
        base_seed=2008,
    )
    attach_table(benchmark, result)

    rates = dict(zip(result.column("attack_window"), result.column("single_detection_rate")))
    # tight attack windows force an under-dispersed pattern: caught
    assert rates[10] >= 0.9
    # detection decays monotonically (modulo sampling noise) toward the
    # binomial limit as the window grows — the paper's headline curve
    assert rates[10] > rates[40] > rates[80] - 0.05
    assert rates[80] < 0.5


def test_fig7_bench_artifact(tmp_path):
    """A quick fig7 run leaves a schema-valid BENCH_fig7.json behind.

    Writes into ``$BENCH_DIR`` when set (CI uploads it as an artifact
    and diffs it against the committed baseline), otherwise into the
    test's tmp dir.
    """
    from repro import obs

    bench_dir = os.environ.get("BENCH_DIR") or str(tmp_path)
    bench_path = os.path.join(bench_dir, "BENCH_fig7.json")
    run_fig7(
        attack_windows=(10, 40),
        trials=20,
        base_seed=2008,
        bench_path=bench_path,
    )
    payload = obs.read_bench_json(bench_path)  # raises if schema-invalid
    assert payload["bench"] == "fig7"
    for row in payload["results"]:
        assert row["stats"]["min_s"] > 0
        assert row["params"]["attack_window"] in (10, 40)
