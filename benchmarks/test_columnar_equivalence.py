"""Columnar-path equivalence smoke: cheap enough for the default CI job.

The heavyweight throughput acceptance lives in ``test_ingest_scale.py``;
this file is the fast correctness companion that every CI run executes:
a small population recorded once, then checked end-to-end — backend
state (histories, feedback graph) and verdicts (vectorized kernel vs
the scalar tester, vectorized service vs the scalar service) must be
identical across the memory, columnar, and mmap backends.
"""

import numpy as np
import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.vectorized import fold_cold_batch
from repro.feedback.ledger import FeedbackLedger
from repro.feedback.records import Feedback, Rating
from repro.serve import AssessmentService

CONFIG = BehaviorTestConfig(calibration_sets=50)
SEED = 97


def _stream(n_servers=40, seed=SEED):
    rng = np.random.default_rng(seed)
    events = []
    for i in range(n_servers):
        sid = f"server-{i:03d}"
        rate = 0.5 + 0.49 * rng.random()
        for t in range(int(rng.integers(30, 150))):
            events.append(
                Feedback(
                    time=float(t),
                    server=sid,
                    client=f"client-{rng.integers(0, 12)}",
                    rating=Rating.POSITIVE if rng.random() < rate else Rating.NEGATIVE,
                )
            )
    return events


@pytest.fixture(scope="module")
def events():
    return _stream()


def _ledger(backend, tmp_path, events):
    kwargs = {"path": str(tmp_path / "led.bin")} if backend == "mmap" else {}
    led = FeedbackLedger(backend=backend, **kwargs)
    led.record_many(events)
    return led


@pytest.mark.parametrize("backend", ["columnar", "mmap"])
def test_backend_state_matches_memory(backend, tmp_path, events):
    reference = _ledger("memory", tmp_path, events)
    led = _ledger(backend, tmp_path, events)
    assert led.servers() == reference.servers()
    assert led.feedback_graph() == reference.feedback_graph()
    for sid in sorted(reference.servers()):
        assert np.array_equal(
            led.history(sid).outcomes(), reference.history(sid).outcomes()
        )


@pytest.mark.parametrize("backend", ["columnar", "mmap"])
def test_kernel_verdicts_match_scalar(backend, tmp_path, events):
    led = _ledger(backend, tmp_path, events)
    servers = sorted(led.servers())

    def tester():
        return MultiBehaviorTest(
            CONFIG,
            ThresholdCalibrator(
                confidence=CONFIG.confidence,
                n_sets=CONFIG.calibration_sets,
                distance=CONFIG.distance,
                p_quantum=CONFIG.p_quantum,
                seed=31,
            ),
        )

    scalar = tester()
    histories = [led.history(sid) for sid in servers]
    expected = [scalar.test(h) for h in histories]
    folded = fold_cold_batch([h.outcomes() for h in histories], tester())
    assert [report for report, _ in folded] == expected


@pytest.mark.parametrize("backend", ["memory", "columnar", "mmap"])
def test_vectorized_service_matches_scalar(backend, tmp_path, events):
    config = AssessorConfig(test_config=CONFIG)
    vector = AssessmentService(config=config, vectorized=True)
    scalar = AssessmentService(config=config, vectorized=False)
    vector.attach_ledger(_ledger(backend, tmp_path, events))
    scalar.attach_ledger(_ledger("memory", tmp_path / "ref", events))
    ids = sorted(f"server-{i:03d}" for i in range(40))
    assert vector.assess_many(ids) == scalar.assess_many(ids)
    assert vector.n_vector_prefolds == 1
