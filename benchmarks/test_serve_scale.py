"""Serving-layer acceptance: batched incremental sweeps beat per-call 5x.

The serving contract (docs/SERVING.md): on a p2p_scale-style population
of 10k servers in steady state — every sweep re-asks about all servers
after ~1% received new feedback — ``AssessmentService.assess_many`` must
be at least 5x faster than a per-call ``TwoPhaseAssessor.assess`` sweep
while returning *identical* assessments for every server.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are min-of-repeats so scheduler
noise cancels out of the comparison.  Set ``BENCH_DIR`` to also emit the
machine-readable ``BENCH_serve.json`` artifact from a quick run.
"""

import os
import time

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.core.two_phase import Assessor
from repro.experiments.common import make_shared_calibrator
from repro.experiments.serve_scale import _build_population
from repro.serve import AssessmentService
from repro.stats.rng import make_rng

N_SERVERS = 10_000
TOUCH_FRACTION = 0.01
REPEATS = 3
SEED = 2008


def _make_assessor():
    config = BehaviorTestConfig()
    return Assessor.from_config(
        AssessorConfig(
            trust_function="average", behavior_test="multi", test_config=config
        ),
        calibrator=make_shared_calibrator(config),
    )


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_assess_many_5x_faster_than_percall_at_10k_servers(benchmark):
    """The ISSUE's acceptance bar: >=5x at 10k servers, identical verdicts."""
    assessor = _make_assessor()
    histories = _build_population(N_SERVERS, base_seed=SEED)
    service = AssessmentService(assessor)
    for history in histories:
        service.add_server(history)
    for history in histories:  # warm the ε-threshold cache
        assessor.assess(history)
    service.assess_many()  # cold sweep fills the per-server caches

    touch_rng = make_rng(SEED)
    n_touch = max(int(N_SERVERS * TOUCH_FRACTION), 1)

    def warm_sweep():
        for idx in touch_rng.choice(N_SERVERS, size=n_touch, replace=False):
            history = histories[int(idx)]
            service.observe_outcome(
                history.server, int(touch_rng.random() < 0.95)
            )
        return service.assess_many()

    serve_s, batched = _min_of(warm_sweep)

    def percall_sweep():
        return {
            history.server: assessor.assess(history) for history in histories
        }

    percall_s, percall = _min_of(percall_sweep)

    mismatched = [
        server
        for server, assessment in percall.items()
        if batched[server] != assessment
    ]
    assert not mismatched, (
        f"engines disagree on {len(mismatched)} of {N_SERVERS} servers "
        f"(first: {mismatched[0]})"
    )

    speedup = percall_s / serve_s
    benchmark.extra_info["percall_s"] = percall_s
    benchmark.extra_info["serve_warm_s"] = serve_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["serve_stats"] = service.stats()
    benchmark.pedantic(warm_sweep, iterations=1, rounds=1)
    assert speedup >= 5.0, (
        f"assess_many sweep ({serve_s:.4f}s) not 5x faster than per-call "
        f"sweep ({percall_s:.4f}s) at {N_SERVERS} servers: {speedup:.1f}x"
    )


def test_serve_bench_artifact(tmp_path):
    """A quick serving run leaves a schema-valid BENCH_serve.json behind.

    Writes into ``$BENCH_DIR`` when set (CI uploads it as an artifact
    and diffs it against the committed baseline), otherwise into the
    test's tmp dir.
    """
    from repro import obs
    from repro.experiments.serve_scale import run_serve_scale

    bench_dir = os.environ.get("BENCH_DIR") or str(tmp_path)
    bench_path = os.path.join(bench_dir, "BENCH_serve.json")
    result = run_serve_scale(quick=True, base_seed=SEED, bench_path=bench_path)
    payload = obs.read_bench_json(bench_path)  # raises if schema-invalid
    assert payload["bench"] == "serve"
    names = {(row["name"], row["params"]["n_servers"]) for row in payload["results"]}
    assert names == {
        (mode, n)
        for mode in ("percall", "serve_cold", "serve_warm")
        for n in (200, 500)
    }
    # every warm sweep must beat its per-call sweep even in quick mode
    for row in result.rows:
        assert row["serve_warm_s"] < row["percall_s"]
