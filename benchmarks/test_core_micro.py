"""Micro-benchmarks of the hot paths behind every experiment.

These are not figures from the paper; they guard the constants that make
the strategic-attacker loops tractable (one behavior test per simulated
transaction, plus a look-ahead).
"""

import numpy as np
import pytest

from repro.core.calibration import ThresholdCalibrator
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.feedback.history import TransactionHistory
from repro.stats.binomial import binomial_pmf
from repro.trust.weighted import WeightedTrust

CONFIG = BehaviorTestConfig()
CALIBRATOR = ThresholdCalibrator(seed=2008)
HISTORY_N = 1000


@pytest.fixture(scope="module")
def outcomes():
    return generate_honest_outcomes(HISTORY_N, 0.95, seed=1)


def test_single_behavior_test_1k(benchmark, outcomes):
    test_ = SingleBehaviorTest(CONFIG, CALIBRATOR)
    test_.test(outcomes)
    benchmark(test_.test, outcomes)


def test_multi_behavior_test_1k(benchmark, outcomes):
    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR)
    test_.test(outcomes)
    benchmark(test_.test, outcomes)


def test_threshold_calibration_cold(benchmark):
    """One uncached Monte-Carlo calibration (400 sample sets)."""

    def calibrate():
        calibrator = ThresholdCalibrator(n_sets=400, seed=3)
        return calibrator.threshold(10, 100, 0.95)

    benchmark(calibrate)


def test_threshold_calibration_cached(benchmark):
    CALIBRATOR.threshold(10, 100, 0.95)
    benchmark(CALIBRATOR.threshold, 10, 100, 0.95)


def test_binomial_pmf(benchmark):
    benchmark(binomial_pmf, 10, 0.95)


def test_history_append_and_speculate(benchmark):
    history = TransactionHistory.from_outcomes([1] * 100)

    def step():
        with history.speculate(0):
            pass
        history.append_outcome(1)

    benchmark(step)


def test_trust_tracker_update(benchmark):
    tracker = WeightedTrust(0.5).tracker()
    benchmark(tracker.update, 1)


def test_collusion_reorder_10k_feedbacks(benchmark):
    """The issuer-grouped reordering dominates collusion-resilient testing."""
    from repro.core.collusion import reordered_outcomes
    from repro.feedback.records import Feedback, Rating

    rng = np.random.default_rng(4)
    feedbacks = [
        Feedback(
            time=float(t),
            server="s",
            client=f"c{int(rng.integers(0, 200))}",
            rating=Rating.POSITIVE if rng.random() < 0.95 else Rating.NEGATIVE,
        )
        for t in range(10_000)
    ]
    outcomes = benchmark(reordered_outcomes, feedbacks)
    assert outcomes.size == 10_000


def test_changepoint_detection_100k(benchmark):
    """Binary segmentation must stay linear-ish for ecosystem-scale histories."""
    from repro.stats.changepoint import detect_change_points

    trace = np.concatenate(
        [
            generate_honest_outcomes(50_000, 0.95, seed=5),
            generate_honest_outcomes(50_000, 0.8, seed=6),
        ]
    )
    splits = benchmark(detect_change_points, trace)
    assert len(splits) >= 1
    assert abs(splits[0] - 50_000) < 2_000


def test_multi_testing_audit_disabled_overhead(outcomes):
    """Auditing off must cost one module-attribute read on the hot path.

    Guard the bound directly: timed side-by-side, the audit-gated test
    must stay within noise of itself (the gate is a single ``if`` on a
    module global), and the audit module must allocate nothing.
    """
    import time
    import tracemalloc

    from repro.obs import audit

    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR)
    test_.test(outcomes)  # warm calibration + pmf buffers
    assert not audit.enabled

    tracemalloc.start()
    for _ in range(100):
        test_.test(outcomes)
    snapshot = tracemalloc.take_snapshot()
    tracemalloc.stop()
    audit_allocs = [
        stat
        for stat in snapshot.statistics("filename")
        if stat.traceback[0].filename.endswith("obs/audit.py")
    ]
    assert not audit_allocs, f"disabled audit allocated: {audit_allocs}"

    def timed(repeats=60):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            test_.test(outcomes)
            best = min(best, time.perf_counter() - start)
        return best

    baseline = timed()
    disabled_again = timed()
    # identical code path twice: bounds the timing noise of this machine;
    # a real regression (record building while disabled) is >2x
    ratio = disabled_again / baseline
    assert 0.25 < ratio < 4.0, f"timing too unstable to trust: {ratio:.2f}x"


def test_multi_testing_sampled_audit_overhead(outcomes):
    """1-in-N sampling keeps audit cost bounded on the multi-testing path."""
    import time

    from repro.obs import audit

    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR)
    test_.test(outcomes)

    def timed(repeats=60):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            test_.test(outcomes)
            best = min(best, time.perf_counter() - start)
        return best

    disabled = timed()
    with audit.audit_session(sample_every=64, include_pmfs=False) as trail:
        sampled = timed()
    assert trail.decisions_seen == 60
    assert len(trail.records) <= 1
    # best-of-60 with 1-in-64 sampling: nearly every timed run skips
    # record building, so the floor must stay close to the disabled floor
    assert sampled < disabled * 3.0, (
        f"sampled auditing too slow: {sampled:.6f}s vs {disabled:.6f}s disabled"
    )
