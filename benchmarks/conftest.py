"""Shared helpers for the benchmark suite.

Each figure benchmark regenerates its figure's data (reduced sweep sizes
so the suite finishes in minutes) and attaches the rendered table to the
benchmark record via ``extra_info`` — run with ``--benchmark-verbose`` or
inspect the JSON export to see the reproduced series.  Full-size sweeps:
``python -m repro.experiments all``.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an expensive end-to-end runner with a single round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=1)


@pytest.fixture(scope="session")
def attach_table():
    """Store a rendered experiment table on the benchmark record."""

    def _attach(benchmark, result):
        benchmark.extra_info["experiment"] = result.experiment
        benchmark.extra_info["table"] = result.render()
        return result

    return _attach
