"""Scraper cost: per-request maybe_scrape stays under 5%.

Acceptance criteria for the TSDB layer (see docs/OBSERVABILITY.md
"Metric history"):

* the serving loop drives the scraper by calling ``maybe_scrape()``
  once per request — with the wall-anchored slot unchanged that call
  must cost one clock read and a compare, and a workload doing it per
  request must stay within 5% of the same workload without a scraper;
* the no-scraper path is untouched: ``runtime.scraper`` stays ``None``
  and the serving loop's guard is a single global read.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are measured as a min-of-repeats so
scheduler noise cancels out of the comparison.
"""

import time

from repro import obs
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.experiments.common import make_shared_calibrator
from repro.obs import runtime
from repro.obs.tsdb import MetricsScraper, scraping_session

CONFIG = BehaviorTestConfig(multi_step=1000)
CALIBRATOR = make_shared_calibrator(CONFIG)
HISTORY = 100_000
REPEATS = 15


def _workload():
    """One serve-request-like measurement: an optimized multi test."""
    test_ = MultiBehaviorTest(
        CONFIG, CALIBRATOR, strategy="optimized", collect_all=True
    )
    outcomes = generate_honest_outcomes(HISTORY, 0.95, seed=2008)
    test_.test(outcomes)  # warm the threshold cache
    return test_, outcomes


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_scraper_enabled_workload_overhead_under_five_percent():
    """A per-request maybe_scrape keeps the request inside the <5% budget."""
    test_, outcomes = _workload()

    def run():
        # the serving loop's shape: do the work, then offer the scraper
        # one wall-clock slot check (scrapes only on rollover)
        with runtime.span("bench.tsdb_overhead"):
            test_.test(outcomes)
        if runtime.scraper is not None:
            runtime.scraper.maybe_scrape()

    with obs.activate():
        baseline = _min_of(run)

    with obs.activate():
        scraper = MetricsScraper(obs.get_registry(), interval_s=0.05)
        with scraping_session(scraper):
            scraped = _min_of(run)

    # the scraped run really did scrape: history made it into the store
    assert scraper.store.n_scrapes >= 1
    assert scraper.store.series()

    ratio = scraped / baseline
    assert ratio < 1.05, (
        f"scraper overhead {100 * (ratio - 1):.1f}% "
        f"(baseline {baseline * 1e3:.3f}ms, scraped {scraped * 1e3:.3f}ms)"
    )


def test_maybe_scrape_same_slot_cost_is_a_clock_read():
    """Inside one slot, maybe_scrape must not approach microbenchmark
    visibility — a snapshot on the no-rollover path would show up here."""
    with obs.activate():
        registry = obs.get_registry()
        registry.inc("bench.counter", 3)
        scraper = MetricsScraper(registry, interval_s=3600.0)
        scraper.scrape()  # pin the slot: nothing below should scrape

        def burst(n):
            for _ in range(n):
                scraper.maybe_scrape()

        burst(1_000)  # warm
        best = _min_of(lambda: burst(5_000), repeats=7)
    assert scraper.store.n_scrapes == 1
    per_call = best / 5_000
    assert per_call < 5e-6, f"maybe_scrape cost {per_call * 1e6:.2f}µs"
