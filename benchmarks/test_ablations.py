"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation regenerates a small slice of the evaluation under a
modified design and asserts the direction of the effect:

* window size m (sensitivity vs. resolution),
* multi-testing step k (cost of extra rounds),
* calibration sample count (ε stability),
* distance function choice (L1 vs. KS),
* window alignment ("recent" vs. the literal "oldest" reading).
"""

import numpy as np
import pytest

from conftest import run_once

from repro.adversary.periodic import periodic_attack_history
from repro.core.calibration import ThresholdCalibrator
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest


def _detection_rate(test_, window, trials=80, seed=0):
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        trace = periodic_attack_history(800, window, seed=rng)
        hits += not test_.test(trace).passed
    return hits / trials


def _false_positive_rate(test_, trials=80, seed=1):
    rng = np.random.default_rng(seed)
    hits = 0
    for _ in range(trials):
        honest = generate_honest_outcomes(800, 0.95, seed=rng)
        hits += not test_.test(honest).passed
    return hits / trials


def test_ablation_window_size(benchmark):
    """Larger windows resolve the distribution better: more detections."""

    def sweep():
        rates = {}
        for m in (5, 10, 20):
            test_ = SingleBehaviorTest(BehaviorTestConfig(window_size=m))
            rates[m] = _detection_rate(test_, window=40)
        return rates

    rates = run_once(benchmark, sweep)
    benchmark.extra_info["detection_by_window_size"] = rates
    assert rates[20] >= rates[5]


def test_ablation_multi_step(benchmark):
    """A finer multi-testing step tests more suffixes: more work."""
    import time

    outcomes = generate_honest_outcomes(20_000, 0.95, seed=2)

    def sweep():
        timings = {}
        for step in (50, 200, 1000):
            test_ = MultiBehaviorTest(BehaviorTestConfig(multi_step=step))
            test_.test(outcomes)  # warm calibration
            start = time.perf_counter()
            test_.test(outcomes)
            timings[step] = time.perf_counter() - start
        return timings

    timings = run_once(benchmark, sweep)
    benchmark.extra_info["seconds_by_step"] = timings
    assert timings[50] > timings[1000]


def test_ablation_calibration_sets(benchmark):
    """More Monte-Carlo sets stabilize ε (spread across reseeds shrinks)."""

    def spread(n_sets):
        values = [
            ThresholdCalibrator(n_sets=n_sets, seed=s).threshold(10, 50, 0.95)
            for s in range(8)
        ]
        return max(values) - min(values)

    def sweep():
        return {n: spread(n) for n in (50, 400, 3200)}

    spreads = run_once(benchmark, sweep)
    benchmark.extra_info["epsilon_spread_by_sets"] = spreads
    assert spreads[3200] < spreads[50]


def test_ablation_distance_choice(benchmark):
    """The scheme works under other distances too; L1 is the paper's pick."""

    def sweep():
        rates = {}
        for distance in ("l1", "ks", "l2"):
            test_ = SingleBehaviorTest(BehaviorTestConfig(distance=distance))
            rates[distance] = {
                "detection": _detection_rate(test_, window=20, trials=60),
                "false_positive": _false_positive_rate(test_, trials=60),
            }
        return rates

    rates = run_once(benchmark, sweep)
    benchmark.extra_info["rates_by_distance"] = rates
    for distance, r in rates.items():
        assert r["false_positive"] <= 0.2, distance
        assert r["detection"] >= 0.3, distance


def test_ablation_window_alignment(benchmark):
    """'recent' vs 'oldest' alignment: same honest pass rates, but only
    'recent' guarantees the newest transactions are always inside a
    window — measurably better at catching a fresh burst in a history
    whose length is not a window multiple."""

    def sweep():
        rates = {}
        rng = np.random.default_rng(9)
        for align in ("recent", "oldest"):
            test_ = SingleBehaviorTest(BehaviorTestConfig(align=align))
            detected = 0
            for _ in range(60):
                # 395 honest + 9 trailing bads: with m=10 the 'oldest'
                # alignment drops 4 of the bads out of the windowed region
                trace = np.concatenate(
                    [
                        generate_honest_outcomes(395, 0.95, seed=rng),
                        np.zeros(9, dtype=np.int8),
                    ]
                )
                detected += not test_.test(trace).passed
            rates[align] = detected / 60
        return rates

    rates = run_once(benchmark, sweep)
    benchmark.extra_info["detection_by_alignment"] = rates
    assert rates["recent"] >= rates["oldest"]


def test_ablation_segmented_screen_vs_strategic_attacker(benchmark):
    """The flexibility/strength trade-off of the dynamic-p extension.

    Segmented testing clears honest drift (see the dynamic-extension
    tests) but, against a *strategic* attacker, its willingness to treat
    a rate change as a new regime costs adversarial strength: the imposed
    attack cost lands near the single test's, well below multi-testing's.
    """
    from repro.adversary.strategic import StrategicAttacker
    from repro.core.calibration import ThresholdCalibrator
    from repro.core.segmented import SegmentedBehaviorTest
    from repro.trust.average import AverageTrust

    def sweep():
        calibrator = ThresholdCalibrator(seed=2008)
        costs = {}
        for name, make in [
            ("single", lambda: SingleBehaviorTest(calibrator=calibrator)),
            ("multi", lambda: MultiBehaviorTest(calibrator=calibrator)),
            ("segmented", lambda: SegmentedBehaviorTest(calibrator=calibrator)),
        ]:
            attacker = StrategicAttacker(AverageTrust(), make(), max_steps=8000)
            costs[name] = float(
                np.mean([attacker.run(800, seed=s).cost for s in range(3)])
            )
        return costs

    costs = run_once(benchmark, sweep)
    benchmark.extra_info["attack_cost_by_screen"] = costs
    assert costs["multi"] > costs["segmented"]
    assert costs["multi"] > costs["single"]


def test_ablation_refit_gap(benchmark):
    """Calibrating against B(m, p) without refitting p_hat (the paper's
    construction) is conservative: observed distances of honest players
    sit well below ε because the test refits p_hat to the sample."""

    test_ = SingleBehaviorTest(BehaviorTestConfig())

    def measure():
        margins = []
        rng = np.random.default_rng(5)
        for _ in range(60):
            verdict = test_.test(generate_honest_outcomes(800, 0.95, seed=rng))
            margins.append(verdict.distance / verdict.threshold)
        return float(np.mean(margins))

    mean_ratio = run_once(benchmark, measure)
    benchmark.extra_info["mean_distance_over_threshold"] = mean_ratio
    assert mean_ratio < 0.8  # honest players pass with a comfortable margin
