"""Benchmark: regenerate Fig. 5 (collusion, average trust function)."""

from conftest import run_once

from repro.experiments import run_fig5

PREPS = (100, 400, 800)


def test_fig5_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark, run_fig5, prep_sizes=PREPS, n_seeds=2, base_seed=2008
    )
    attach_table(benchmark, result)

    rows = {r["prep_size"]: r for r in result.rows}
    for prep in PREPS:
        # without behavior testing, colluders cover the whole campaign
        assert rows[prep]["none"] == 0.0
        # collusion-resilient testing forces real service to real clients
        assert rows[prep]["scheme2"] > 0
    # multi-testing keeps the attacker expensive even with a long prep
    assert rows[800]["scheme2"] > rows[800]["none"]
