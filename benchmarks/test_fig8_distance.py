"""Benchmark: regenerate Fig. 8 (ε threshold vs. history size)."""

from conftest import run_once

from repro.experiments import run_fig8

SIZES = (100, 200, 400, 800, 1600, 3200)


def test_fig8_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark,
        run_fig8,
        history_sizes=SIZES,
        calibration_sets=1500,
        base_seed=2008,
    )
    attach_table(benchmark, result)

    eps = result.column("epsilon_p0.95")
    # strictly decreasing across a 32x history range
    assert all(a > b for a, b in zip(eps, eps[1:]))
    # fast convergence: the paper's observation — by a few thousand
    # transactions the threshold is a fraction of its small-history value
    assert eps[-1] < eps[0] / 3
