"""Resilience layer cost: the disarmed path adds <5% to the serve sweep.

Acceptance criterion for :mod:`repro.resilience` (see
docs/RESILIENCE.md): every injection site compiles down to one
module-attribute read (``if _res.armed``) when nothing is armed, so a
fully disabled resilience layer must cost less than 5% wall time on the
serve-scale ``assess_many`` path.  Two comparisons pin that down:

* **armed=False** (the production default) versus the pre-resilience
  behavior — measured against itself as min-of-repeats, the bound here
  is that a scoped-but-empty plan (``activate(FaultPlan())`` with *no*
  specs armed) stays within 5% of the disarmed sweep.  An empty plan
  pays the ``plan.decide`` dict-miss per site, which bounds the armed
  bookkeeping from above; the disarmed path is strictly cheaper.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are min-of-repeats so scheduler
noise cancels out of the comparison.
"""

from __future__ import annotations

import random
import time

from repro.core.config import AssessorConfig, BehaviorTestConfig
from repro.feedback.records import Feedback, Rating
from repro.resilience import FaultPlan
from repro.resilience import runtime as res
from repro.serve import AssessmentService

REPEATS = 11
N_SERVERS = 150
N_FEEDBACKS = 60
MAX_OVERHEAD = 1.05  # <5%

CONFIG = AssessorConfig(
    trust_function="average",
    behavior_test="single",
    trust_threshold=0.7,
    test_config=BehaviorTestConfig(
        window_size=10, min_windows=2, calibration_sets=100
    ),
)


def _service() -> AssessmentService:
    service = AssessmentService(config=CONFIG)
    stream = random.Random(2024)
    t = 0.0
    for s in range(N_SERVERS):
        sid = f"srv-{s:04d}"
        service.add_server(sid)
        p_good = 0.95 - 0.3 * (s % 5) / 5
        for _ in range(N_FEEDBACKS):
            t += 1.0
            service.observe(
                Feedback(
                    time=t,
                    server=sid,
                    client=f"cli-{s % 7}",
                    rating=(
                        Rating.POSITIVE
                        if stream.random() < p_good
                        else Rating.NEGATIVE
                    ),
                )
            )
    return service


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disarmed_resilience_layer_under_five_percent():
    service = _service()

    def sweep():
        # invalidate the whole-assessment memo so every repeat walks the
        # instrumented path instead of returning cached Assessments
        for sid in service.servers():
            service.invalidate(sid)
        service.assess_many(executor="serial")

    sweep()  # warm calibration thresholds outside the window
    assert res.armed is False
    disarmed = _min_of(sweep)

    empty_plan = FaultPlan(seed=0)  # activated but nothing armed
    with res.activate(empty_plan):
        assert res.armed is True
        armed_empty = _min_of(sweep)

    ratio = armed_empty / disarmed
    assert ratio < MAX_OVERHEAD, (
        f"empty fault plan costs {ratio:.3f}x the disarmed sweep "
        f"(budget {MAX_OVERHEAD}x); disarmed={disarmed:.4f}s "
        f"armed_empty={armed_empty:.4f}s"
    )
    assert empty_plan.log == []  # nothing armed => nothing decided


def test_retry_policy_wrapper_cost_is_negligible():
    """The per-sweep RetryPolicy.call wrapper (one try/except frame) is
    noise next to the work it wraps."""
    service = _service()

    def sweep():
        for sid in service.servers():
            service.invalidate(sid)
        service.assess_many(executor="serial")

    sweep()
    wrapped = _min_of(sweep)

    def bare():
        for sid in service.servers():
            service.invalidate(sid)
        for sid in service.servers():
            service.assess(sid)

    bare_time = _min_of(bare)
    # the ladder + retry + span machinery around the serial sweep stays
    # within 10% of iterating assess() by hand
    assert wrapped / bare_time < 1.10, (
        f"assess_many wrapper costs {wrapped / bare_time:.3f}x the bare "
        f"loop (wrapped={wrapped:.4f}s bare={bare_time:.4f}s)"
    )
