"""Feedback-plane acceptance: columnar ingest and vectorized cold starts.

The feedback-plane contract (docs/LEDGER.md): batched columnar ingest
must beat the per-object fold comfortably, and a cold service start from
a persisted binary ledger must be multiples faster through the mmap +
vectorized-kernel path than through object materialization — while both
paths return identical assessments (asserted inside the experiment).

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; the floors below are far under the measured
headroom (14x cold speedup, 3-6x ingest at the full sweep point) so
noisy CI runners do not flake.  Set ``BENCH_DIR`` to also emit the
machine-readable ``BENCH_ingest.json`` artifact from a quick run.
"""

import os

from repro import obs
from repro.experiments.ingest_scale import QUICK_POINTS, run_ingest_scale

SEED = 2008

#: conservative quick-size floors (measured: ~2.9x cold, ~5x ingest)
MIN_COLD_SPEEDUP = 1.5
MIN_INGEST_RATIO = 2.0


def test_ingest_bench_artifact_and_floors(tmp_path):
    """A quick ingest run leaves a schema-valid BENCH_ingest.json behind
    and clears the (deliberately loose) quick-size performance floors."""
    bench_dir = os.environ.get("BENCH_DIR") or str(tmp_path)
    bench_path = os.path.join(bench_dir, "BENCH_ingest.json")
    result = run_ingest_scale(quick=True, base_seed=SEED, bench_path=bench_path)

    payload = obs.read_bench_json(bench_path)  # raises if schema-invalid
    assert payload["bench"] == "ingest"
    names = {row["name"] for row in payload["results"]}
    assert names == {
        "ingest_object",
        "ingest_columnar",
        "ingest_mmap",
        "assess_cold_vector",
        "assess_cold_object",
    }
    for row in payload["results"]:
        assert row["stats"]["min_s"] > 0

    assert [row["n_servers"] for row in result.rows] == [n for n, _ in QUICK_POINTS]
    for row in result.rows:
        assert row["cold_speedup"] >= MIN_COLD_SPEEDUP, (
            f"cold vectorized start only {row['cold_speedup']}x faster at "
            f"{row['n_servers']} servers (floor {MIN_COLD_SPEEDUP}x)"
        )
        for backend in ("columnar", "mmap"):
            ratio = row[f"{backend}_evps"] / row["object_evps"]
            assert ratio >= MIN_INGEST_RATIO, (
                f"{backend} ingest only {ratio:.1f}x the per-object fold at "
                f"{row['n_events']} events (floor {MIN_INGEST_RATIO}x)"
            )
