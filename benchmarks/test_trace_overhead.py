"""Tracing cost: context propagation + span sink stay under 10%.

Acceptance criteria for the causal-tracing layer (see
docs/OBSERVABILITY.md "Tracing & SLOs"):

* with tracing *inactive* (obs enabled, no trace context, no sink) the
  span path must behave exactly as before this layer existed — one
  contextvar read is the only addition;
* a fully traced workload — root context attached, every span deriving
  a child context and writing a JSONL line to the span sink — must add
  less than 10% wall time to a fig9-smoke-like workload.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are measured as a min-of-repeats so
scheduler noise cancels out of the comparison.
"""

import time

from repro import obs
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.experiments.common import make_shared_calibrator
from repro.obs import context as trace_ctx
from repro.obs import runtime

CONFIG = BehaviorTestConfig(multi_step=1000)
CALIBRATOR = make_shared_calibrator(CONFIG)
HISTORY = 100_000
REPEATS = 15


def _workload():
    """One fig9-smoke-like measurement: an optimized multi test."""
    test_ = MultiBehaviorTest(
        CONFIG, CALIBRATOR, strategy="optimized", collect_all=True
    )
    outcomes = generate_honest_outcomes(HISTORY, 0.95, seed=2008)
    test_.test(outcomes)  # warm the threshold cache
    return test_, outcomes


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_traced_workload_overhead_under_ten_percent(tmp_path):
    """Context + sink on every span stays inside the <10% budget."""
    test_, outcomes = _workload()

    def run():
        with runtime.span("bench.trace_overhead"):
            test_.test(outcomes)

    with obs.activate():
        baseline = _min_of(run)

    spans_path = tmp_path / "spans.jsonl"
    with obs.activate(), trace_ctx.tracing_session(spans_path):
        with trace_ctx.use(trace_ctx.new_root(bench="trace_overhead")):
            traced = _min_of(run)

    # the traced run really did trace: one line per span per repeat
    spans = trace_ctx.read_span_jsonl(spans_path)
    assert len(spans) >= REPEATS
    assert len({s["trace_id"] for s in spans}) == 1

    ratio = traced / baseline
    assert ratio < 1.10, (
        f"tracing overhead {100 * (ratio - 1):.1f}% "
        f"(baseline {baseline * 1e3:.3f}ms, traced {traced * 1e3:.3f}ms)"
    )


def test_untraced_span_path_unchanged():
    """Without a context or sink, span cost is one contextvar read.

    Measured against the pure span loop: attaching the tracing layer
    must not regress the *untraced* enabled path beyond noise (the
    disabled path stays pinned allocation-free by the tracing tests).
    """
    def burst(n):
        for _ in range(n):
            with runtime.span("hot.loop"):
                pass

    with obs.activate():
        burst(1_000)  # warm
        untraced = _min_of(lambda: burst(5_000), repeats=7)
    # sanity bound, generous against CI noise: ~tens of µs per span
    # would indicate an accidental serialization on the untraced path
    per_span = untraced / 5_000
    assert per_span < 50e-6, f"untraced span cost {per_span * 1e6:.1f}µs"
