"""Benchmarks for the decentralized substrate: lookup cost and gossip convergence.

Not figures from the paper — these quantify the substrate the paper's
availability assumption rests on: O(log n) DHT lookups and exponential
gossip convergence, so assessing a server stays cheap at P2P scale.

Set ``BENCH_DIR`` to also emit a machine-readable ``BENCH_p2p_scale.json``
artifact (schema in ``repro.obs.bench``) from a quick scaling run.
"""

import os

import numpy as np
import pytest

from repro.p2p.chord import ChordRing
from repro.p2p.gossip import GossipAggregator


@pytest.fixture(scope="module")
def ring_64():
    ring = ChordRing(seed=3)
    for i in range(64):
        ring.add_node(f"node-{i}")
    return ring


def test_chord_lookup_64_nodes(benchmark, ring_64):
    keys = [f"server-{i}" for i in range(50)]

    def lookups():
        return [ring_64.lookup(k).hops for k in keys]

    hops = benchmark(lookups)
    mean_hops = float(np.mean(hops))
    benchmark.extra_info["mean_hops"] = mean_hops
    # O(log n): 64 nodes -> ~log2(64) = 6 expected, generous bound
    assert mean_hops <= 8


def test_chord_put_get_roundtrip(benchmark, ring_64):
    counter = iter(range(10_000_000))

    def roundtrip():
        key = f"rt-{next(counter)}"
        ring_64.put(key, "value")
        return ring_64.get(key)

    values = benchmark(roundtrip)
    assert "value" in values


def test_chord_ring_construction(benchmark):
    def build():
        ring = ChordRing(seed=4)
        for i in range(24):
            ring.add_node(f"n{i}")
        return ring

    ring = benchmark.pedantic(build, iterations=1, rounds=1)
    assert len(ring.nodes) == 24


def test_gossip_convergence_rounds(benchmark):
    """Rounds to 1% agreement for 256 peers — should be ~tens, not hundreds."""

    def converge():
        agg = GossipAggregator(np.random.default_rng(5).random(256), seed=5)
        return agg.run_until(tolerance=0.01, max_rounds=500)

    rounds = benchmark.pedantic(converge, iterations=1, rounds=3)
    benchmark.extra_info["rounds_to_1pct"] = rounds
    assert rounds < 100


def test_p2p_scale_bench_artifact(tmp_path):
    """A quick scaling run leaves a schema-valid BENCH_p2p_scale.json behind.

    Writes into ``$BENCH_DIR`` when set (CI uploads it as an artifact
    and diffs it against the committed baseline), otherwise into the
    test's tmp dir.
    """
    from repro import obs
    from repro.experiments.p2p_scale import run_p2p_scale

    bench_dir = os.environ.get("BENCH_DIR") or str(tmp_path)
    bench_path = os.path.join(bench_dir, "BENCH_p2p_scale.json")
    run_p2p_scale(quick=True, base_seed=2008, bench_path=bench_path)
    payload = obs.read_bench_json(bench_path)  # raises if schema-invalid
    assert payload["bench"] == "p2p_scale"
    names = {(row["name"], row["params"]["n_nodes"]) for row in payload["results"]}
    assert names == {
        ("chord_lookup", 8),
        ("chord_lookup", 16),
        ("gossip_round", 8),
        ("gossip_round", 16),
    }
