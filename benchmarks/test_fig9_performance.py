"""Benchmark: regenerate Fig. 9 (behavior-testing running time).

This is the paper's performance figure, so here the pytest-benchmark
timings *are* the result: single testing and optimized multi-testing are
timed directly on large histories, and the naive O(n^2) multi-testing
scheme on a smaller one for the scaling contrast.

Set ``BENCH_DIR`` to also emit a machine-readable ``BENCH_fig9.json``
artifact (schema in ``repro.obs.bench``) from a quick fig9 sweep.
"""

import os

import pytest

from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest
from repro.experiments.common import make_shared_calibrator

CONFIG = BehaviorTestConfig(multi_step=1000)
CALIBRATOR = make_shared_calibrator(CONFIG)
LARGE = 400_000
SMALL = 40_000


@pytest.fixture(scope="module")
def large_history():
    return generate_honest_outcomes(LARGE, 0.95, seed=2008)


@pytest.fixture(scope="module")
def small_history():
    return generate_honest_outcomes(SMALL, 0.95, seed=2008)


def test_fig9_single_testing_large_history(benchmark, large_history):
    test_ = SingleBehaviorTest(CONFIG, CALIBRATOR)
    test_.test(large_history)  # warm the threshold cache
    verdict = benchmark(test_.test, large_history)
    assert verdict.passed


def test_fig9_multi_testing_optimized_large_history(benchmark, large_history):
    # NOTE: multi-testing runs ~n/k 95%-confidence rounds, so an honest
    # history of this length legitimately fails a round now and then; the
    # benches assert the work was done, not the (chance-dependent) verdict.
    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR, strategy="optimized", collect_all=True)
    test_.test(large_history)
    report = benchmark(test_.test, large_history)
    assert report.n_rounds >= 1


def test_fig9_multi_testing_naive_small_history(benchmark, small_history):
    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR, strategy="naive", collect_all=True)
    test_.test(small_history)
    report = benchmark(test_.test, small_history)
    assert report.n_rounds >= 1


def test_fig9_multi_testing_optimized_small_history(benchmark, small_history):
    # same size as the naive bench: the head-to-head the paper's O(n)
    # optimization claims to win
    test_ = MultiBehaviorTest(CONFIG, CALIBRATOR, strategy="optimized", collect_all=True)
    test_.test(small_history)
    report = benchmark(test_.test, small_history)
    assert report.n_rounds >= 1


def test_fig9_bench_artifact(tmp_path):
    """A quick fig9 sweep leaves a schema-valid BENCH_fig9.json behind.

    Writes into ``$BENCH_DIR`` when set (CI uploads it as an artifact),
    otherwise into the test's tmp dir.
    """
    from repro import obs
    from repro.experiments.fig9_performance import run_fig9

    bench_dir = os.environ.get("BENCH_DIR") or str(tmp_path)
    bench_path = os.path.join(bench_dir, "BENCH_fig9.json")
    run_fig9(
        history_sizes=(2_000,),
        naive_sizes=(2_000,),
        multi_step=500,
        quick=True,
        bench_path=bench_path,
    )
    payload = obs.read_bench_json(bench_path)  # raises if schema-invalid
    assert payload["bench"] == "fig9"
    assert {row["name"] for row in payload["results"]} == {
        "single",
        "multi_optimized",
        "multi_naive",
    }
