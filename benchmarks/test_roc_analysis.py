"""Benchmark: ROC sweep of the behavior tests + camouflage residual.

Quantifies the scheme-selection question the paper leaves to the
deployment: multi-testing buys detection power (higher AUC on the
periodic workload) at the cost of more false alarms per assessment, and
no scheme constrains a perfectly camouflaged attacker below the trust
threshold — the paper's conclusion, asserted.
"""

from conftest import run_once

from repro.adversary.periodic import periodic_attack_history
from repro.analysis import auc, max_sustainable_cheat_rate, roc_curve
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.core.testing import SingleBehaviorTest


def _honest(rng):
    return generate_honest_outcomes(800, 0.95, seed=rng)


def _attack(rng):
    return periodic_attack_history(800, 30, seed=rng)


def test_roc_single_vs_multi(benchmark):
    def sweep():
        scores = {}
        for name, factory in [
            ("single", lambda cfg: SingleBehaviorTest(cfg)),
            ("multi", lambda cfg: MultiBehaviorTest(cfg)),
        ]:
            points = roc_curve(
                _honest,
                _attack,
                test_factory=factory,
                confidences=(0.7, 0.9, 0.95, 0.99),
                trials=50,
                seed=11,
            )
            scores[name] = auc(points)
        return scores

    scores = run_once(benchmark, sweep)
    benchmark.extra_info["auc"] = scores
    assert scores["single"] > 0.55  # far better than chance
    assert scores["multi"] >= scores["single"] - 0.05


def test_camouflage_saturates_trust_cap(benchmark):
    def measure():
        test = MultiBehaviorTest()
        return max_sustainable_cheat_rate(
            test, history_length=800, trials=20, precision=0.02, seed=12
        )

    rate = run_once(benchmark, measure)
    benchmark.extra_info["max_cheat_rate"] = rate
    # the paper's conclusion: an iid attacker is statistically honest; the
    # binding constraint is the trust threshold (0.9 -> 0.1 cheat cap)
    assert rate >= 0.07
