"""Node-scope attribution cost: the p2p hot path stays under 5%.

Acceptance criteria for fleet-scope observability (see
docs/OBSERVABILITY.md "Fleet view"):

* with obs enabled, running the Chord lookup hot path inside
  ``node_scope`` must stay within 5% of the same workload run without
  any scope — the per-metric cost is one module-attr read plus, only
  when a scope is open, one contextvar get and a set lookup;
* with obs disabled, the registry is never touched, so scoping costs
  nothing and ``scope.active`` stays exactly where the workload left
  it — the disabled path is one attribute read, same as every other
  obs guard.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are measured as a min-of-repeats so
scheduler noise cancels out of the comparison.
"""

import time

from repro import obs
from repro.obs import scope
from repro.p2p.chord import ChordRing
from repro.p2p.network import SimulatedNetwork

N_NODES = 32
LOOKUPS = 200
REPEATS = 15


def _build_ring(seed=2008):
    ring = ChordRing(network=SimulatedNetwork(seed=seed), seed=seed)
    for i in range(N_NODES):
        ring.add_node(f"node-{i}")
    return ring


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_node_scope_overhead_under_five_percent():
    """Scoped lookups stay within 5% of unscoped lookups, obs on."""
    ring = _build_ring()
    node = ring.nodes["node-0"]

    def unscoped():
        for i in range(LOOKUPS):
            node.find_successor(i * 7919 % (1 << ring._m))

    def scoped():
        with scope.node_scope("bench-node"):
            for i in range(LOOKUPS):
                node.find_successor(i * 7919 % (1 << ring._m))

    with obs.activate():
        unscoped()  # warm caches and metric families on both sides
        scoped()
        base = _min_of(unscoped)
        overhead = _min_of(scoped)
    scope.reset()
    ratio = overhead / base
    assert ratio < 1.05, (
        f"node-scoped lookups cost {ratio:.3f}x the unscoped path "
        f"({overhead:.6f}s vs {base:.6f}s) — over the 5% budget"
    )


def test_obs_disabled_scope_costs_nothing_and_stays_clean():
    """Obs off: the hot path never consults the scope or the registry."""
    ring = _build_ring(seed=7)
    node = ring.nodes["node-0"]
    assert not obs.is_enabled()
    before = len(obs.get_registry())
    with scope.node_scope("idle-node"):
        for i in range(50):
            node.find_successor(i * 104729 % (1 << ring._m))
        # nothing created a registry metric: attribution never ran
        assert len(obs.get_registry()) == before
    assert scope.active is False
    assert scope.dropped_nodes == 0
    scope.reset()
