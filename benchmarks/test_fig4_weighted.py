"""Benchmark: regenerate Fig. 4 (attacker cost sweep, weighted trust function)."""

from conftest import run_once

from repro.experiments import run_fig4

PREPS = (100, 400, 800)


def test_fig4_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark, run_fig4, prep_sizes=PREPS, n_seeds=2, base_seed=2008
    )
    attach_table(benchmark, result)

    rows = {r["prep_size"]: r for r in result.rows}
    # bare EWMA(0.5): a periodic attack at ~2-3 goods per bad, flat in prep
    assert 40 <= rows[100]["none"] <= 75
    assert 40 <= rows[800]["none"] <= 75
    # the behavior tests never make attacks cheaper, and multi-testing
    # imposes the highest cost on long preparation histories
    assert rows[800]["scheme2"] >= rows[800]["none"]
    assert rows[800]["scheme2"] >= rows[800]["scheme1"] - 5
