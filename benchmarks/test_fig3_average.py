"""Benchmark: regenerate Fig. 3 (attacker cost sweep, average trust function).

Also asserts the figure's qualitative shape so a regression in any layer
(test, calibrator, attacker) fails the bench rather than silently
producing a wrong figure.
"""

from conftest import run_once

from repro.experiments import run_fig3

PREPS = (100, 400, 800)


def test_fig3_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark, run_fig3, prep_sizes=PREPS, n_seeds=2, base_seed=2008
    )
    attach_table(benchmark, result)

    rows = {r["prep_size"]: r for r in result.rows}
    # bare average trust: hibernating attacks become free with long preps
    assert rows[800]["none"] == 0.0
    # both schemes impose positive cost where the bare function charges none
    assert rows[800]["scheme1"] > 0
    assert rows[800]["scheme2"] > 0
    # multi-testing dominates single testing on long preparation histories
    assert rows[800]["scheme2"] >= rows[800]["scheme1"]
