"""Profiler cost: the disabled path allocates nothing, the enabled one <10%.

Acceptance criteria for the phase profiler (see docs/OBSERVABILITY.md):

* with no profiler installed the span fast path must not allocate —
  pinned with tracemalloc exactly like the tracing zero-cost tests;
* the enabled sampling profiler in the ``profile_path=`` fig9
  configuration (periodic out-of-band sampling, ``sample_hz=97``,
  ``track_memory=False``) must add less than 10% wall time to a
  fig9-smoke-like workload.  The per-call-event ``sample_interval``
  mode is deliberately *not* under this bound: a python-level
  ``sys.setprofile`` hook costs interpreter dispatch on every call
  (measured ~1.5x even with a no-op hook on this workload), which is
  why it is reserved for tests and the runners default to ``sample_hz``.

Timing assertions live here rather than in ``tests/`` (tier-1) because
they are load-sensitive; both sides are measured as a min-of-repeats so
scheduler noise cancels out of the comparison.
"""

import time
import tracemalloc

from repro import obs
from repro.core.config import BehaviorTestConfig
from repro.core.model import generate_honest_outcomes
from repro.core.multi_testing import MultiBehaviorTest
from repro.experiments.common import make_shared_calibrator
from repro.obs import runtime

CONFIG = BehaviorTestConfig(multi_step=1000)
CALIBRATOR = make_shared_calibrator(CONFIG)
HISTORY = 100_000
REPEATS = 15
SAMPLE_HZ = 97.0  # the fig9 profile_path default (out-of-band sampler)
SAMPLE_INTERVAL = 997  # per-call-event mode, used where determinism matters


def _workload():
    """One fig9-smoke-like measurement: an optimized multi test."""
    test_ = MultiBehaviorTest(
        CONFIG, CALIBRATOR, strategy="optimized", collect_all=True
    )
    outcomes = generate_honest_outcomes(HISTORY, 0.95, seed=2008)
    test_.test(outcomes)  # warm the threshold cache
    return test_, outcomes


def _min_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_profiling_path_allocates_nothing():
    """No profiler installed: the span path stays allocation-free."""
    assert not runtime.is_enabled()
    assert runtime.profiler is None

    def burst(n):
        for _ in range(n):
            with runtime.span("hot.loop"):
                pass

    burst(100)  # warm up outside the measurement window
    tracemalloc.start()
    try:
        burst(10_000)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak < 16 * 1024, f"disabled span path allocated {peak} bytes"


def test_sampling_profiler_overhead_under_ten_percent():
    """The fig9 profiling configuration stays inside the <10% budget."""
    test_, outcomes = _workload()

    def run():
        with runtime.span("bench.profile_overhead"):
            test_.test(outcomes)

    with obs.activate():
        baseline = _min_of(run)
    with obs.profile_session(sample_hz=SAMPLE_HZ, track_memory=False) as profiler:
        profiled = _min_of(run)
    assert profiler.phase("bench.profile_overhead") is not None
    ratio = profiled / baseline
    assert ratio < 1.10, (
        f"sampling profiler overhead {100 * (ratio - 1):.1f}% "
        f"(baseline {baseline * 1e3:.3f}ms, profiled {profiled * 1e3:.3f}ms)"
    )


def test_profiler_attributes_the_workload_it_rode(tmp_path):
    """The profile written for the overhead run is a valid artifact."""
    test_, outcomes = _workload()
    with obs.profile_session(sample_interval=SAMPLE_INTERVAL) as profiler:
        with runtime.span("bench.profile_overhead"):
            test_.test(outcomes)
    path = tmp_path / "PROFILE_overhead.json"
    payload = obs.write_profile_json(path, "profile_overhead", profiler)
    assert payload["phases"][0]["path"] == "bench.profile_overhead"
    assert payload["folded_samples"], "sampling captured no stacks"
    obs.write_folded(obs.folded_path_for(path), profiler)
    assert obs.folded_path_for(path).read_text().startswith("bench.profile_overhead")
