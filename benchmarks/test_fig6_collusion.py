"""Benchmark: regenerate Fig. 6 (collusion, weighted trust function)."""

from conftest import run_once

from repro.experiments import run_fig6

PREPS = (100, 400, 800)


def test_fig6_regeneration(benchmark, attach_table):
    result = run_once(
        benchmark, run_fig6, prep_sizes=PREPS, n_seeds=2, base_seed=2008
    )
    attach_table(benchmark, result)

    rows = {r["prep_size"]: r for r in result.rows}
    for prep in PREPS:
        # fake positives rebuild the EWMA for free after each cheat
        assert rows[prep]["none"] == 0.0
        assert rows[prep]["scheme1"] > 0
        assert rows[prep]["scheme2"] > 0
