"""Distribution distances over a shared finite support.

The paper uses the L1 norm between the empirical window-count
distribution and the theoretical binomial as its test statistic
(Sec. 3.2).  We implement L1 plus a few companions (total variation, L2,
Kolmogorov–Smirnov, chi-square) so the distance is a pluggable choice in
the test configuration and ablations can compare them.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from ..obs import runtime as _obs

__all__ = [
    "l1_distance",
    "total_variation",
    "l2_distance",
    "ks_distance",
    "chi_square_statistic",
    "DISTANCES",
    "get_distance",
]

DistanceFn = Callable[[np.ndarray, np.ndarray], float]


def _check(p: np.ndarray, q: np.ndarray) -> None:
    p = np.asarray(p)
    q = np.asarray(q)
    if p.shape != q.shape:
        raise ValueError(f"distributions must share a support: {p.shape} vs {q.shape}")
    if p.ndim != 1:
        raise ValueError("distributions must be 1-D pmf vectors")


def l1_distance(p: np.ndarray, q: np.ndarray) -> float:
    """``sum_i |p_i - q_i|`` — the paper's test statistic.

    Ranges over [0, 2]; 0 means identical, 2 means disjoint supports.
    """
    _check(p, q)
    if _obs.enabled:
        _obs.registry.inc("stats.distances.evaluations", distance="l1")
    return float(np.abs(np.asarray(p) - np.asarray(q)).sum())


def total_variation(p: np.ndarray, q: np.ndarray) -> float:
    """Total-variation distance, i.e. half the L1 distance."""
    return 0.5 * l1_distance(p, q)


def l2_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between pmf vectors."""
    _check(p, q)
    if _obs.enabled:
        _obs.registry.inc("stats.distances.evaluations", distance="l2")
    diff = np.asarray(p) - np.asarray(q)
    return float(np.sqrt((diff * diff).sum()))


def ks_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Kolmogorov–Smirnov distance: max absolute cdf gap."""
    _check(p, q)
    if _obs.enabled:
        _obs.registry.inc("stats.distances.evaluations", distance="ks")
    return float(np.abs(np.cumsum(p) - np.cumsum(q)).max())


def chi_square_statistic(p: np.ndarray, q: np.ndarray) -> float:
    """Pearson chi-square divergence of ``p`` from reference ``q``.

    Support points where the reference has (numerically) zero mass but
    the empirical distribution does not would make the statistic infinite;
    we clamp the reference at a tiny floor so the statistic stays finite
    and very large instead, which is what a threshold test needs.
    """
    _check(p, q)
    if _obs.enabled:
        _obs.registry.inc("stats.distances.evaluations", distance="chi2")
    q_safe = np.maximum(np.asarray(q, dtype=np.float64), 1e-12)
    diff = np.asarray(p) - q_safe
    return float((diff * diff / q_safe).sum())


DISTANCES: Dict[str, DistanceFn] = {
    "l1": l1_distance,
    "tv": total_variation,
    "l2": l2_distance,
    "ks": ks_distance,
    "chi2": chi_square_statistic,
}


def get_distance(name: str) -> DistanceFn:
    """Look up a distance function by name (``l1`` is the paper's choice)."""
    try:
        return DISTANCES[name]
    except KeyError:
        raise KeyError(
            f"unknown distance {name!r}; available: {sorted(DISTANCES)}"
        ) from None
