"""Change-point detection on Bernoulli outcome sequences.

Sec. 3.1 assumes a *static* success probability "for simplicity" and
notes the techniques "can be easily extended to handle dynamic cases".
The extension needs one new primitive: locating the points where an
honest player's uncontrollable quality factor shifted (a new ISP, a
hardware upgrade), so each stationary segment can be tested against its
own binomial.

We implement the standard likelihood-based **binary segmentation**: the
cost of a segment is its Bernoulli negative log-likelihood under the
segment's MLE rate; a split is accepted when the likelihood gain exceeds
a BIC-style penalty ``penalty_scale * log(n)``.  Cumulative sums make
each scan O(n), and recursion depth is bounded by the number of detected
changes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

__all__ = ["Segment", "bernoulli_segment_cost", "detect_change_points", "segment_sequence"]


@dataclass(frozen=True)
class Segment:
    """A maximal stationary stretch ``[start, end)`` with its MLE rate."""

    start: int
    end: int
    p_hat: float

    @property
    def length(self) -> int:
        return self.end - self.start


def bernoulli_segment_cost(n_good: int, n_total: int) -> float:
    """Negative log-likelihood of a Bernoulli segment at its MLE.

    ``-(k ln(k/n) + (n-k) ln((n-k)/n))``; degenerate all-good/all-bad
    segments cost 0 (a perfectly explained segment).
    """
    if n_total < 0 or not 0 <= n_good <= n_total:
        raise ValueError(f"need 0 <= n_good <= n_total, got {n_good}/{n_total}")
    if n_total == 0 or n_good == 0 or n_good == n_total:
        return 0.0
    k = float(n_good)
    n = float(n_total)
    return -(k * np.log(k / n) + (n - k) * np.log((n - k) / n))


def detect_change_points(
    outcomes: np.ndarray,
    *,
    min_segment: int = 50,
    penalty_scale: float = 3.0,
) -> List[int]:
    """Indices where the underlying Bernoulli rate changes.

    Returns a sorted list of split positions (each in ``(0, n)``); an
    empty list means the sequence looks stationary.  ``min_segment``
    stops the recursion from chasing noise in short stretches;
    ``penalty_scale`` trades sensitivity against false splits (BIC uses
    ~0.5 per parameter — the default 3.0 is deliberately conservative so
    honest noise is not segmented).
    """
    arr = np.asarray(outcomes)
    if arr.ndim != 1:
        raise ValueError("outcomes must be 1-D")
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError("outcomes must be binary (0/1)")
    if min_segment < 2:
        raise ValueError(f"min_segment must be >= 2, got {min_segment}")
    if penalty_scale <= 0:
        raise ValueError(f"penalty_scale must be positive, got {penalty_scale}")
    n = arr.size
    if n < 2 * min_segment:
        return []
    prefix = np.concatenate(([0], np.cumsum(arr, dtype=np.int64)))
    penalty = penalty_scale * np.log(n)
    splits: List[int] = []
    _bisect(prefix, 0, n, min_segment, penalty, splits)
    return sorted(splits)


def segment_sequence(
    outcomes: np.ndarray,
    *,
    min_segment: int = 50,
    penalty_scale: float = 3.0,
) -> List[Segment]:
    """Stationary segments of ``outcomes`` with their MLE rates."""
    arr = np.asarray(outcomes)
    boundaries = detect_change_points(
        arr, min_segment=min_segment, penalty_scale=penalty_scale
    )
    edges = [0] + boundaries + [arr.size]
    segments = []
    for start, end in zip(edges, edges[1:]):
        if end > start:
            chunk = arr[start:end]
            segments.append(
                Segment(start=start, end=end, p_hat=float(chunk.mean()))
            )
    return segments


def _bisect(
    prefix: np.ndarray,
    lo: int,
    hi: int,
    min_segment: int,
    penalty: float,
    splits: List[int],
) -> None:
    """Recursively split ``[lo, hi)`` where the likelihood gain warrants it."""
    n = hi - lo
    if n < 2 * min_segment:
        return
    total_good = int(prefix[hi] - prefix[lo])
    whole_cost = bernoulli_segment_cost(total_good, n)

    candidates = np.arange(lo + min_segment, hi - min_segment + 1)
    if candidates.size == 0:
        return
    left_good = prefix[candidates] - prefix[lo]
    left_n = candidates - lo
    right_good = total_good - left_good
    right_n = hi - candidates
    left_cost = _vector_cost(left_good, left_n)
    right_cost = _vector_cost(right_good, right_n)
    gains = whole_cost - (left_cost + right_cost)
    best = int(np.argmax(gains))
    if gains[best] <= penalty:
        return
    split = int(candidates[best])
    splits.append(split)
    _bisect(prefix, lo, split, min_segment, penalty, splits)
    _bisect(prefix, split, hi, min_segment, penalty, splits)


def _vector_cost(good: np.ndarray, total: np.ndarray) -> np.ndarray:
    """Vectorized :func:`bernoulli_segment_cost` over candidate splits."""
    good = good.astype(np.float64)
    total = total.astype(np.float64)
    bad = total - good
    with np.errstate(divide="ignore", invalid="ignore"):
        term_good = np.where(good > 0, good * np.log(good / total), 0.0)
        term_bad = np.where(bad > 0, bad * np.log(bad / total), 0.0)
    return -(term_good + term_bad)
