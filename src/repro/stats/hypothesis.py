"""Classical hypothesis tests on binary transaction sequences.

The paper contrasts its distribution-distance test with textbook
hypothesis testing (Sec. 6): most classical tests assume the distribution
parameters are known, which does not hold here.  We implement the
classical alternatives anyway — they serve as comparison baselines in the
ablation benchmarks and as sanity checks in the test suite:

* exact binomial test (known ``p``),
* chi-square goodness-of-fit of window counts against ``B(m, p)``,
* Wald–Wolfowitz runs test (order sensitivity with unknown ``p``),
* NIST SP 800-22-style block-frequency test (the pseudo-random-sequence
  testing the paper cites as related work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from .binomial import binomial_pmf

__all__ = [
    "TestOutcome",
    "exact_binomial_test",
    "chi_square_gof_test",
    "runs_test",
    "block_frequency_test",
]


@dataclass(frozen=True)
class TestOutcome:
    """Result of a classical hypothesis test.

    ``passed`` is True when the null hypothesis ("the sequence is
    consistent with an honest player") is *not* rejected at ``alpha``.
    """

    # not a pytest test class, despite the Test* name
    __test__ = False

    statistic: float
    p_value: float
    alpha: float

    @property
    def passed(self) -> bool:
        return self.p_value >= self.alpha


def exact_binomial_test(
    n_good: int, n_total: int, p: float, *, alpha: float = 0.05
) -> TestOutcome:
    """Two-sided exact binomial test of ``n_good`` successes in ``n_total``.

    Requires the true ``p`` — exactly the knowledge the paper points out
    is unavailable in practice, which is why this test cannot replace the
    distribution-distance scheme.  Kept as a baseline.
    """
    if not 0 <= n_good <= n_total:
        raise ValueError(f"need 0 <= n_good <= n_total, got {n_good}/{n_total}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    result = _sps.binomtest(n_good, n_total, p, alternative="two-sided")
    return TestOutcome(statistic=float(n_good), p_value=float(result.pvalue), alpha=alpha)


def chi_square_gof_test(
    window_counts: np.ndarray, m: int, p: float, *, alpha: float = 0.05
) -> TestOutcome:
    """Chi-square goodness of fit of window counts against ``B(m, p)``.

    Bins with expected count below 1 are pooled into their neighbor to
    keep the chi-square approximation usable on small samples.
    """
    counts = np.asarray(window_counts, dtype=np.int64)
    if counts.size == 0:
        raise ValueError("need at least one window count")
    k = counts.size
    observed = np.bincount(counts, minlength=m + 1).astype(np.float64)
    expected = binomial_pmf(m, p) * k

    # Pool sparse bins from both tails toward the center.
    obs_pooled, exp_pooled = _pool_bins(observed, expected, min_expected=1.0)
    dof = max(len(obs_pooled) - 1, 1)
    with np.errstate(divide="ignore", invalid="ignore"):
        stat = float(((obs_pooled - exp_pooled) ** 2 / exp_pooled).sum())
    p_value = float(_sps.chi2.sf(stat, dof))
    return TestOutcome(statistic=stat, p_value=p_value, alpha=alpha)


def runs_test(outcomes: np.ndarray, *, alpha: float = 0.05) -> TestOutcome:
    """Wald–Wolfowitz runs test for randomness of a binary sequence.

    Unlike the binomial tests this is order-sensitive and does not need
    ``p``: under H0 the number of runs given ``n1`` ones and ``n0`` zeros
    is asymptotically normal.  Periodic attacks produce too *few* runs
    (bad transactions clumped together), which this test picks up.
    """
    seq = np.asarray(outcomes).astype(np.int64)
    if seq.size < 2:
        raise ValueError("runs test needs at least two outcomes")
    if not np.isin(seq, (0, 1)).all():
        raise ValueError("outcomes must be binary (0/1)")
    n1 = int(seq.sum())
    n0 = int(seq.size - n1)
    if n1 == 0 or n0 == 0:
        # Degenerate: a constant sequence has exactly one run and carries
        # no evidence against randomness of a (degenerate) coin.
        return TestOutcome(statistic=1.0, p_value=1.0, alpha=alpha)
    runs = int(1 + np.count_nonzero(seq[1:] != seq[:-1]))
    n = n0 + n1
    mean = 2.0 * n0 * n1 / n + 1.0
    var = 2.0 * n0 * n1 * (2.0 * n0 * n1 - n) / (n * n * (n - 1.0))
    if var <= 0:
        return TestOutcome(statistic=float(runs), p_value=1.0, alpha=alpha)
    z = (runs - mean) / np.sqrt(var)
    p_value = float(2.0 * _sps.norm.sf(abs(z)))
    return TestOutcome(statistic=float(z), p_value=p_value, alpha=alpha)


def block_frequency_test(
    outcomes: np.ndarray, block_size: int, *, alpha: float = 0.05
) -> TestOutcome:
    """NIST SP 800-22-style block-frequency test generalized to bias ``p``.

    The NIST suite assumes p = 0.5; reputations are heavily biased toward
    good transactions, so we use the plug-in estimate ``p_hat`` and a
    chi-square statistic over per-block success proportions.  This is the
    closest classical analogue to the paper's windowed scheme.
    """
    seq = np.asarray(outcomes).astype(np.float64)
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    n_blocks = seq.size // block_size
    if n_blocks < 1:
        raise ValueError("sequence shorter than a single block")
    trimmed = seq[: n_blocks * block_size]
    p_hat = float(trimmed.mean())
    if p_hat in (0.0, 1.0):
        return TestOutcome(statistic=0.0, p_value=1.0, alpha=alpha)
    block_means = trimmed.reshape(n_blocks, block_size).mean(axis=1)
    stat = float(
        block_size * ((block_means - p_hat) ** 2).sum() / (p_hat * (1.0 - p_hat))
    )
    p_value = float(_sps.chi2.sf(stat, n_blocks - 1))
    return TestOutcome(statistic=stat, p_value=p_value, alpha=alpha)


def _pool_bins(observed: np.ndarray, expected: np.ndarray, min_expected: float):
    """Pool sparse leading/trailing bins until all expectations are usable."""
    obs = list(observed)
    exp = list(expected)
    # pool from the left
    while len(exp) > 1 and exp[0] < min_expected:
        exp[1] += exp[0]
        obs[1] += obs[0]
        del exp[0], obs[0]
    # pool from the right
    while len(exp) > 1 and exp[-1] < min_expected:
        exp[-2] += exp[-1]
        obs[-2] += obs[-1]
        del exp[-1], obs[-1]
    return np.asarray(obs, dtype=np.float64), np.asarray(exp, dtype=np.float64)
