"""Empirical distributions over a finite integer support.

The behavior tests compare the *empirical* distribution of per-window
good-transaction counts ``{G_1, ..., G_k}`` against the theoretical
binomial ``B(m, p_hat)``.  This module provides the histogram /
normalization plumbing, including an incremental variant used by the
optimized multi-testing scheme (adding one window at a time must be O(1)).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["empirical_pmf", "counts_histogram", "IncrementalHistogram"]


def counts_histogram(samples: Sequence[int], support_size: int) -> np.ndarray:
    """Histogram of integer ``samples`` over support ``0..support_size-1``.

    Raises if any sample falls outside the support — a window can never
    contain more good transactions than its size.
    """
    arr = np.asarray(samples, dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= support_size):
        raise ValueError(
            f"samples must lie in [0, {support_size - 1}], "
            f"got range [{arr.min()}, {arr.max()}]"
        )
    return np.bincount(arr, minlength=support_size).astype(np.float64)


def empirical_pmf(samples: Sequence[int], support_size: int) -> np.ndarray:
    """Normalized empirical pmf of ``samples`` over ``0..support_size-1``."""
    hist = counts_histogram(samples, support_size)
    total = hist.sum()
    if total == 0:
        raise ValueError("cannot form an empirical pmf from zero samples")
    return hist / total


class IncrementalHistogram:
    """A histogram over ``0..support_size-1`` supporting O(1) updates.

    The optimized multi-testing algorithm of Sec. 5.5 walks from the most
    recent suffix of the history toward the full history, reusing the
    statistics already accumulated for shorter suffixes.  Each step adds a
    handful of windows; this class makes that addition constant-time per
    window while exposing the normalized pmf and total-successes count the
    distance computation needs.
    """

    def __init__(self, support_size: int):
        if support_size <= 0:
            raise ValueError(f"support_size must be positive, got {support_size}")
        self._support_size = support_size
        self._counts = np.zeros(support_size, dtype=np.float64)
        self._n_samples = 0
        self._total_value = 0

    @property
    def support_size(self) -> int:
        return self._support_size

    @property
    def n_samples(self) -> int:
        """Number of window counts accumulated so far."""
        return self._n_samples

    @property
    def total_value(self) -> int:
        """Sum of all accumulated window counts (= total good transactions)."""
        return self._total_value

    def add(self, value: int) -> None:
        """Add a single window count."""
        if not 0 <= value < self._support_size:
            raise ValueError(
                f"value {value} outside support [0, {self._support_size - 1}]"
            )
        self._counts[value] += 1.0
        self._n_samples += 1
        self._total_value += int(value)

    def add_many(self, values: Iterable[int]) -> None:
        """Add window counts one by one (see ``add_block`` for the fast path)."""
        for value in values:
            self.add(int(value))

    def add_block(self, values: np.ndarray) -> None:
        """Vectorized bulk add (one ``bincount`` per block).

        This is what makes the optimized multi-testing walk O(n) with
        numpy constants instead of per-window Python-call constants.
        """
        arr = np.asarray(values, dtype=np.int64)
        if arr.size == 0:
            return
        if arr.min() < 0 or arr.max() >= self._support_size:
            raise ValueError(
                f"values must lie in [0, {self._support_size - 1}], "
                f"got range [{arr.min()}, {arr.max()}]"
            )
        self._counts += np.bincount(arr, minlength=self._support_size)
        self._n_samples += int(arr.size)
        self._total_value += int(arr.sum())

    def histogram(self) -> np.ndarray:
        """A *copy* of the raw count vector."""
        return self._counts.copy()

    def pmf(self) -> np.ndarray:
        """Normalized empirical pmf of everything accumulated so far."""
        if self._n_samples == 0:
            raise ValueError("cannot form a pmf from zero samples")
        return self._counts / self._n_samples

    def mean_rate(self, window_size: int) -> float:
        """``p_hat`` implied by the accumulated windows of ``window_size``."""
        if self._n_samples == 0:
            raise ValueError("no samples accumulated")
        return self._total_value / (self._n_samples * window_size)
