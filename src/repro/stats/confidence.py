"""Confidence intervals for trust values.

A trust value is an estimate of the server's success probability; a
client comparing it to a threshold should know how much evidence backs
it.  Two standard binomial-proportion intervals are provided:

* :func:`wilson_interval` — the Wilson score interval, well-behaved for
  the extreme proportions reputations live at (p̂ near 1);
* :func:`clopper_pearson_interval` — the exact (conservative) interval.

:func:`trust_with_confidence` applies them to a transaction history and
also answers the client's actual question: *is the trust value above my
threshold at this confidence?* — i.e., compare the interval's lower
bound, not the point estimate, against the threshold (a server with 10/10
good transactions is not "0.95-confidently above 0.9").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats as _sps

__all__ = ["TrustEstimate", "wilson_interval", "clopper_pearson_interval", "trust_with_confidence"]


def _validate(n_good: int, n_total: int, confidence: float) -> None:
    if n_total <= 0:
        raise ValueError(f"n_total must be positive, got {n_total}")
    if not 0 <= n_good <= n_total:
        raise ValueError(f"need 0 <= n_good <= n_total, got {n_good}/{n_total}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")


def wilson_interval(
    n_good: int, n_total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    _validate(n_good, n_total, confidence)
    z = float(_sps.norm.ppf(0.5 + confidence / 2.0))
    p_hat = n_good / n_total
    denom = 1.0 + z * z / n_total
    center = (p_hat + z * z / (2 * n_total)) / denom
    margin = (
        z
        * np.sqrt(p_hat * (1 - p_hat) / n_total + z * z / (4 * n_total * n_total))
        / denom
    )
    return (max(center - margin, 0.0), min(center + margin, 1.0))


def clopper_pearson_interval(
    n_good: int, n_total: int, confidence: float = 0.95
) -> Tuple[float, float]:
    """Exact (Clopper–Pearson) interval for a binomial proportion."""
    _validate(n_good, n_total, confidence)
    alpha = 1.0 - confidence
    lower = (
        0.0
        if n_good == 0
        else float(_sps.beta.ppf(alpha / 2, n_good, n_total - n_good + 1))
    )
    upper = (
        1.0
        if n_good == n_total
        else float(_sps.beta.ppf(1 - alpha / 2, n_good + 1, n_total - n_good))
    )
    return (lower, upper)


@dataclass(frozen=True)
class TrustEstimate:
    """A trust value with its evidence-backed interval."""

    point: float
    lower: float
    upper: float
    n: int
    confidence: float

    def confidently_above(self, threshold: float) -> bool:
        """Is the *lower bound* above the client's threshold?"""
        return self.lower >= threshold

    @property
    def width(self) -> float:
        return self.upper - self.lower


def trust_with_confidence(
    history,
    confidence: float = 0.95,
    method: str = "wilson",
) -> TrustEstimate:
    """Average-trust estimate of a history with its interval.

    ``history`` is a :class:`~repro.feedback.history.TransactionHistory`
    or a 0/1 sequence; ``method`` is ``"wilson"`` or ``"clopper-pearson"``.
    """
    outcomes = (
        history.outcomes() if hasattr(history, "outcomes") else np.asarray(history)
    )
    n = int(outcomes.size)
    if n == 0:
        raise ValueError("cannot estimate trust from an empty history")
    good = int(np.sum(outcomes))
    if method == "wilson":
        lower, upper = wilson_interval(good, n, confidence)
    elif method == "clopper-pearson":
        lower, upper = clopper_pearson_interval(good, n, confidence)
    else:
        raise ValueError(
            f"method must be 'wilson' or 'clopper-pearson', got {method!r}"
        )
    return TrustEstimate(
        point=good / n, lower=lower, upper=upper, n=n, confidence=confidence
    )
