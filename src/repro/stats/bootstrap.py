"""Monte-Carlo / bootstrap helpers for null-distribution estimation.

The paper calibrates the distribution-distance threshold empirically
(Sec. 3.2): generate many sample sets under the null binomial model,
measure each set's L1 distance, and take the 95th percentile.  This
module holds the generic, fully vectorized machinery; the behavior-test
layer (``repro.core.calibration``) adds caching and policy.
"""

from __future__ import annotations

import numpy as np

from .rng import SeedLike, make_rng

__all__ = ["null_l1_distances", "percentile_threshold", "batch_histograms"]


def batch_histograms(samples: np.ndarray, support_size: int) -> np.ndarray:
    """Row-wise histograms of an integer matrix.

    ``samples`` has shape ``(n_sets, k)`` with entries in
    ``[0, support_size)``; the result has shape ``(n_sets, support_size)``.
    Implemented with a single flat ``bincount`` (no Python loop) because
    calibration dominates the cost of the strategic-attacker experiments.
    """
    samples = np.asarray(samples, dtype=np.int64)
    if samples.ndim != 2:
        raise ValueError("samples must be 2-D (sets x draws)")
    n_sets, k = samples.shape
    if k == 0:
        raise ValueError("each sample set must contain at least one draw")
    if samples.min() < 0 or samples.max() >= support_size:
        raise ValueError(f"sample values must lie in [0, {support_size - 1}]")
    flat = samples + (np.arange(n_sets)[:, None] * support_size)
    hist = np.bincount(flat.ravel(), minlength=n_sets * support_size)
    return hist.reshape(n_sets, support_size).astype(np.float64)


def null_l1_distances(
    pmf: np.ndarray,
    k: int,
    n_sets: int,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample the null distribution of the L1 test statistic.

    Draws ``n_sets`` independent sets of ``k`` window counts from the
    categorical distribution ``pmf`` (support ``0..m``), and returns each
    set's L1 distance between its empirical pmf and ``pmf`` itself.
    """
    pmf = np.asarray(pmf, dtype=np.float64)
    if pmf.ndim != 1 or pmf.size < 2:
        raise ValueError("pmf must be a 1-D vector over a support of size >= 2")
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    if n_sets <= 0:
        raise ValueError(f"n_sets must be positive, got {n_sets}")
    rng = make_rng(seed)
    # Multinomial sampling of the whole set at once is equivalent to (and
    # much faster than) drawing k categorical values and histogramming.
    counts = rng.multinomial(k, pmf, size=n_sets).astype(np.float64)
    empirical = counts / k
    return np.abs(empirical - pmf[None, :]).sum(axis=1)


def percentile_threshold(distances: np.ndarray, confidence: float) -> float:
    """Threshold below which ``confidence`` of null distances fall.

    ``confidence`` is expressed as a fraction (the paper uses 0.95).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must lie in (0, 1), got {confidence}")
    distances = np.asarray(distances, dtype=np.float64)
    if distances.size == 0:
        raise ValueError("need at least one null distance")
    return float(np.quantile(distances, confidence))
