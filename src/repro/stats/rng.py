"""Seeded random-number-generator plumbing.

Every stochastic component in this library (simulators, attackers,
calibrators) takes an explicit random source so that experiments are
reproducible end to end.  This module centralizes the conventions:

* the canonical generator type is :class:`numpy.random.Generator`;
* any function that accepts a ``seed`` argument accepts an ``int``, an
  existing ``Generator`` (returned unchanged), or ``None`` (fresh
  OS-entropy generator);
* independent sub-streams are derived with :func:`spawn` so that two
  components seeded from the same experiment seed never share a stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]

__all__ = ["SeedLike", "make_rng", "spawn", "derive_seed"]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic stream), an existing
    ``Generator`` (returned as-is, so callers can thread one generator
    through a pipeline), or ``None`` (non-deterministic).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list:
    """Derive ``count`` statistically independent child generators.

    Uses the bit-generator's ``spawn`` support when available and falls
    back to seeding children from fresh 64-bit draws otherwise.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    try:
        return [np.random.Generator(bg) for bg in rng.bit_generator.spawn(count)]
    except AttributeError:  # very old numpy without SeedSequence spawning
        return [np.random.default_rng(int(rng.integers(0, 2**63))) for _ in range(count)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit integer seed from ``rng``.

    Useful when a deterministic integer must be stored (e.g. in a
    scenario record) and later replayed.
    """
    return int(rng.integers(0, 2**63))
