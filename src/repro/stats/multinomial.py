"""Multinomial window model for multi-valued feedback.

Sec. 3.1 of the paper notes that non-binary feedback ("positive /
neutral / negative", star ratings, ...) is handled by replacing the
binomial window distribution with a multinomial one.  This module
implements that extension: a window of ``m`` transactions with
per-category probabilities ``p_1..p_c`` yields a category-count vector
distributed ``Multinomial(m, p)``.

Comparing a full joint multinomial empirically is data-hungry, so —
mirroring the paper's per-dimension suggestion — the behavior test
compares each category's *marginal* count distribution, which is
``B(m, p_j)``, and aggregates the per-category L1 distances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from .binomial import binomial_pmf
from .rng import SeedLike, make_rng

__all__ = ["MultinomialModel", "category_marginals", "estimate_category_probs"]


@dataclass(frozen=True)
class MultinomialModel:
    """``Multinomial(m, probs)`` over window category counts."""

    m: int
    probs: Tuple[float, ...]

    def __post_init__(self) -> None:
        if self.m <= 0:
            raise ValueError(f"window size m must be positive, got {self.m}")
        p = np.asarray(self.probs, dtype=np.float64)
        if p.ndim != 1 or p.size < 2:
            raise ValueError("need at least two category probabilities")
        if (p < 0).any() or not np.isclose(p.sum(), 1.0, atol=1e-9):
            raise ValueError(f"probs must be non-negative and sum to 1, got {self.probs}")

    @property
    def n_categories(self) -> int:
        return len(self.probs)

    def marginal_pmfs(self) -> np.ndarray:
        """Stack of per-category marginal pmfs, shape ``(c, m + 1)``.

        The marginal count of category ``j`` in a multinomial window is
        binomial ``B(m, p_j)``.
        """
        return np.stack([binomial_pmf(self.m, pj) for pj in self.probs])

    def sample(self, k: int, *, seed: SeedLike = None) -> np.ndarray:
        """Draw ``k`` window count vectors, shape ``(k, c)``."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        rng = make_rng(seed)
        return rng.multinomial(self.m, np.asarray(self.probs), size=k)


def category_marginals(window_counts: np.ndarray, m: int) -> np.ndarray:
    """Per-category empirical marginal pmfs from count vectors.

    ``window_counts`` has shape ``(k, c)`` — one row per window, one
    column per feedback category; each row sums to ``m``.  Returns shape
    ``(c, m + 1)``.
    """
    counts = np.asarray(window_counts, dtype=np.int64)
    if counts.ndim != 2:
        raise ValueError("window_counts must be 2-D (windows x categories)")
    if (counts.sum(axis=1) != m).any():
        raise ValueError(f"every window row must sum to the window size {m}")
    k, c = counts.shape
    marginals = np.empty((c, m + 1), dtype=np.float64)
    for j in range(c):
        marginals[j] = np.bincount(counts[:, j], minlength=m + 1) / k
    return marginals


def estimate_category_probs(window_counts: np.ndarray, m: int) -> np.ndarray:
    """MLE of category probabilities: pooled counts over pooled trials."""
    counts = np.asarray(window_counts, dtype=np.int64)
    if counts.ndim != 2 or counts.size == 0:
        raise ValueError("window_counts must be a non-empty 2-D array")
    totals = counts.sum(axis=0).astype(np.float64)
    return totals / (m * counts.shape[0])
