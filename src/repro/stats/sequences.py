"""NIST SP 800-22-style randomness tests on binary transaction sequences.

The paper (Sec. 3.1) notes that testing whether a transaction sequence
is "random enough" shares structure with pseudo-random sequence testing
and cites the NIST statistical test suite — but that suite assumes a
known bias (p = 0.5 for cryptographic bits), which reputations do not
have.  This module adapts the suite's classic order-sensitive tests to a
plug-in bias ``p_hat``:

* :func:`serial_test` — over-/under-representation of length-2 patterns;
* :func:`approximate_entropy_test` — regularity of m-bit patterns;
* :func:`cusum_test` — maximal excursion of the centered random walk
  (detects drifts and bursts regardless of windowing).

They complement the paper's windowed distribution test as baselines: the
test suite and the ablation benches compare which manipulation patterns
each statistic notices.
"""

from __future__ import annotations

import numpy as np
from scipy import stats as _sps

from .hypothesis import TestOutcome

__all__ = ["serial_test", "approximate_entropy_test", "cusum_test"]


def _validate_binary(outcomes: np.ndarray, minimum: int) -> np.ndarray:
    seq = np.asarray(outcomes)
    if seq.ndim != 1:
        raise ValueError("outcomes must be 1-D")
    if seq.size < minimum:
        raise ValueError(f"need at least {minimum} outcomes, got {seq.size}")
    if not np.isin(seq, (0, 1)).all():
        raise ValueError("outcomes must be binary (0/1)")
    return seq.astype(np.int64)


def _pattern_counts(seq: np.ndarray, m: int) -> np.ndarray:
    """Counts of all 2^m overlapping patterns (with wraparound, as NIST)."""
    n = seq.size
    extended = np.concatenate([seq, seq[: m - 1]]) if m > 1 else seq
    index = np.zeros(n, dtype=np.int64)
    for j in range(m):
        index = (index << 1) | extended[j : j + n]
    return np.bincount(index, minlength=1 << m).astype(np.float64)


def serial_test(outcomes: np.ndarray, *, alpha: float = 0.05) -> TestOutcome:
    """Generalized serial test on overlapping pairs.

    Under iid Bernoulli(p) the four patterns 00/01/10/11 occur with
    probabilities (1-p)^2, p(1-p), p(1-p), p^2; the chi-square statistic
    compares observed pattern counts against those expectations with the
    plug-in ``p_hat``.  One degree of freedom is spent on estimating p,
    leaving 2.
    """
    seq = _validate_binary(outcomes, minimum=16)
    n = seq.size
    p_hat = float(seq.mean())
    if p_hat in (0.0, 1.0):
        return TestOutcome(statistic=0.0, p_value=1.0, alpha=alpha)
    counts = _pattern_counts(seq, 2)
    q = 1.0 - p_hat
    expected = np.array([q * q, q * p_hat, p_hat * q, p_hat * p_hat]) * n
    stat = float(((counts - expected) ** 2 / expected).sum())
    p_value = float(_sps.chi2.sf(stat, df=2))
    return TestOutcome(statistic=stat, p_value=p_value, alpha=alpha)


def approximate_entropy_test(
    outcomes: np.ndarray, m: int = 2, *, alpha: float = 0.05
) -> TestOutcome:
    """Approximate-entropy test (ApEn), bias-generalized.

    Compares the empirical entropy rate of (m+1)-patterns given
    m-patterns against the maximum possible for the observed bias; too
    *regular* sequences (periodic manipulation) have low ApEn.  The
    statistic ``2n(ln-max-entropy - ApEn)`` is approximately chi-square
    with ``2^m`` degrees of freedom.
    """
    if m < 1 or m > 8:
        raise ValueError(f"pattern length m must lie in [1, 8], got {m}")
    seq = _validate_binary(outcomes, minimum=max(64, 1 << (m + 3)))
    n = seq.size
    p_hat = float(seq.mean())
    if p_hat in (0.0, 1.0):
        return TestOutcome(statistic=0.0, p_value=1.0, alpha=alpha)

    def phi(block: int) -> float:
        counts = _pattern_counts(seq, block)
        freqs = counts[counts > 0] / n
        return float((freqs * np.log(freqs)).sum())

    ap_en = phi(m) - phi(m + 1)  # estimated conditional entropy
    # maximal conditional entropy for an iid source with this bias
    max_entropy = -(p_hat * np.log(p_hat) + (1 - p_hat) * np.log(1 - p_hat))
    stat = max(2.0 * n * (max_entropy - ap_en), 0.0)
    p_value = float(_sps.chi2.sf(stat, df=1 << m))
    return TestOutcome(statistic=stat, p_value=p_value, alpha=alpha)


def cusum_test(outcomes: np.ndarray, *, alpha: float = 0.05) -> TestOutcome:
    """Cumulative-sums test: maximal excursion of the centered walk.

    Center each outcome by the plug-in mean and normalize by the sample
    standard deviation; under iid behavior the maximal partial-sum
    excursion follows the NIST cusum distribution.  Hibernating attacks
    (all bads clumped at one end) produce extreme excursions even when
    the overall ratio is unremarkable.
    """
    seq = _validate_binary(outcomes, minimum=32)
    n = seq.size
    p_hat = float(seq.mean())
    sigma = np.sqrt(p_hat * (1.0 - p_hat))
    if sigma == 0.0:
        return TestOutcome(statistic=0.0, p_value=1.0, alpha=alpha)
    walk = np.cumsum(seq - p_hat) / sigma
    z = float(np.abs(walk).max())
    # NIST SP 800-22 cusum p-value (series truncated at |k| <= 25)
    sqrt_n = np.sqrt(n)
    ks = np.arange(-25, 26)
    term1 = _sps.norm.cdf((4 * ks + 1) * z / sqrt_n) - _sps.norm.cdf(
        (4 * ks - 1) * z / sqrt_n
    )
    term2 = _sps.norm.cdf((4 * ks + 3) * z / sqrt_n) - _sps.norm.cdf(
        (4 * ks + 1) * z / sqrt_n
    )
    p_value = float(min(max(1.0 - term1.sum() + term2.sum(), 0.0), 1.0))
    return TestOutcome(statistic=z, p_value=p_value, alpha=alpha)
