"""Statistics substrate: distributions, distances and hypothesis tests.

Everything in this package is application-agnostic; the reputation-
specific policy lives in :mod:`repro.core`.
"""

from .binomial import (
    BinomialDistribution,
    binomial_cdf,
    binomial_pmf,
    estimate_p,
    sample_window_counts,
)
from .confidence import (
    TrustEstimate,
    clopper_pearson_interval,
    trust_with_confidence,
    wilson_interval,
)
from .changepoint import (
    Segment,
    bernoulli_segment_cost,
    detect_change_points,
    segment_sequence,
)
from .bootstrap import batch_histograms, null_l1_distances, percentile_threshold
from .distances import (
    DISTANCES,
    chi_square_statistic,
    get_distance,
    ks_distance,
    l1_distance,
    l2_distance,
    total_variation,
)
from .empirical import IncrementalHistogram, counts_histogram, empirical_pmf
from .hypothesis import (
    TestOutcome,
    block_frequency_test,
    chi_square_gof_test,
    exact_binomial_test,
    runs_test,
)
from .multinomial import MultinomialModel, category_marginals, estimate_category_probs
from .rng import SeedLike, derive_seed, make_rng, spawn
from .sequences import approximate_entropy_test, cusum_test, serial_test

__all__ = [
    "BinomialDistribution",
    "binomial_cdf",
    "binomial_pmf",
    "estimate_p",
    "sample_window_counts",
    "TrustEstimate",
    "clopper_pearson_interval",
    "trust_with_confidence",
    "wilson_interval",
    "Segment",
    "bernoulli_segment_cost",
    "detect_change_points",
    "segment_sequence",
    "batch_histograms",
    "null_l1_distances",
    "percentile_threshold",
    "DISTANCES",
    "chi_square_statistic",
    "get_distance",
    "ks_distance",
    "l1_distance",
    "l2_distance",
    "total_variation",
    "IncrementalHistogram",
    "counts_histogram",
    "empirical_pmf",
    "TestOutcome",
    "block_frequency_test",
    "chi_square_gof_test",
    "exact_binomial_test",
    "runs_test",
    "MultinomialModel",
    "category_marginals",
    "estimate_category_probs",
    "approximate_entropy_test",
    "cusum_test",
    "serial_test",
    "SeedLike",
    "derive_seed",
    "make_rng",
    "spawn",
]
