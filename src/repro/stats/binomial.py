"""Binomial distribution utilities.

The honest-player model of the paper states that the number of good
transactions inside a window of ``m`` transactions conducted by an honest
server with trustworthiness ``p`` follows a binomial distribution
``B(m, p)``.  This module provides the pmf/cdf machinery, sampling and
maximum-likelihood estimation used throughout the behavior tests.

All pmf computations are done in plain numpy (stable for the small ``m``
used by the paper, m <= a few hundred) with a scipy fallback for large
``m``; sampling uses :class:`numpy.random.Generator`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from .rng import SeedLike, make_rng

__all__ = [
    "BinomialDistribution",
    "binomial_pmf",
    "binomial_pmf_many",
    "binomial_cdf",
    "sample_window_counts",
    "estimate_p",
]

# Above this number of trials the explicit log-factorial accumulation is
# no longer worth it and we defer to scipy's implementation.
_SCIPY_THRESHOLD = 512


def binomial_pmf(m: int, p: float) -> np.ndarray:
    """Return the full pmf vector of ``B(m, p)`` over support ``0..m``.

    The vector has length ``m + 1`` and sums to 1 (up to floating point).
    Degenerate probabilities ``p in {0, 1}`` yield point masses.
    """
    _validate_m(m)
    _validate_p(p)
    support = np.arange(m + 1)
    if p == 0.0:
        pmf = np.zeros(m + 1)
        pmf[0] = 1.0
        return pmf
    if p == 1.0:
        pmf = np.zeros(m + 1)
        pmf[m] = 1.0
        return pmf
    if m > _SCIPY_THRESHOLD:
        return _sps.binom.pmf(support, m, p)
    # log C(m, g) + g log p + (m - g) log(1 - p), computed via cumulative
    # log-factorials so a single vectorized expression covers the support.
    log_fact = np.concatenate(([0.0], np.cumsum(np.log(np.arange(1, m + 1)))))
    log_comb = log_fact[m] - log_fact[support] - log_fact[m - support]
    log_pmf = log_comb + support * np.log(p) + (m - support) * np.log1p(-p)
    pmf = np.exp(log_pmf)
    return pmf / pmf.sum()


def binomial_pmf_many(m: int, ps: np.ndarray) -> np.ndarray:
    """Pmf vectors of ``B(m, p)`` for many ``p`` at once; shape ``(len(ps), m+1)``.

    Row ``i`` is bit-identical to ``binomial_pmf(m, ps[i])`` — the same
    elementwise log-space expression evaluated in the same order, just
    broadcast over a batch — so vectorized callers (the cold-path fold
    kernel) agree with scalar callers to the last ulp.  For ``m`` beyond
    the scipy threshold it defers to per-``p`` scalar calls.
    """
    _validate_m(m)
    ps = np.asarray(ps, dtype=np.float64)
    for p in ps:
        _validate_p(float(p))
    if m > _SCIPY_THRESHOLD:
        return np.stack([binomial_pmf(m, float(p)) for p in ps])
    out = np.empty((ps.size, m + 1), dtype=np.float64)
    degenerate = (ps == 0.0) | (ps == 1.0)
    for i in np.nonzero(degenerate)[0]:
        out[i] = binomial_pmf(m, float(ps[i]))
    interior = ~degenerate
    if interior.any():
        p_in = ps[interior][:, None]
        support = np.arange(m + 1)
        log_fact = np.concatenate(([0.0], np.cumsum(np.log(np.arange(1, m + 1)))))
        log_comb = log_fact[m] - log_fact[support] - log_fact[m - support]
        log_pmf = (
            log_comb[None, :]
            + support[None, :] * np.log(p_in)
            + (m - support)[None, :] * np.log1p(-p_in)
        )
        pmf = np.exp(log_pmf)
        out[interior] = pmf / pmf.sum(axis=1, keepdims=True)
    return out


def binomial_cdf(m: int, p: float) -> np.ndarray:
    """Return the cdf vector of ``B(m, p)`` over support ``0..m``."""
    cdf = np.cumsum(binomial_pmf(m, p))
    cdf[-1] = 1.0
    return cdf


def sample_window_counts(
    m: int, p: float, k: int, *, seed: SeedLike = None
) -> np.ndarray:
    """Draw ``k`` window counts from ``B(m, p)``.

    This simulates the per-window good-transaction counts of an honest
    player with trust value ``p`` across ``k`` windows of size ``m``.
    """
    _validate_m(m)
    _validate_p(p)
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    rng = make_rng(seed)
    return rng.binomial(m, p, size=k)


def estimate_p(counts: np.ndarray, m: int) -> float:
    """Maximum-likelihood estimate of ``p`` from window counts.

    For iid ``B(m, p)`` samples the MLE is the total number of successes
    divided by the total number of trials — exactly the paper's
    ``p_hat = sum(G_i) / n``.
    """
    _validate_m(m)
    counts = np.asarray(counts)
    if counts.size == 0:
        raise ValueError("cannot estimate p from an empty sample")
    if counts.min() < 0 or counts.max() > m:
        raise ValueError(f"window counts must lie in [0, {m}]")
    return float(counts.sum()) / (m * counts.size)


@dataclass(frozen=True)
class BinomialDistribution:
    """An immutable ``B(m, p)`` with cached pmf access.

    A lightweight value object passed between the model, the calibrator
    and the tests; hashable so it can key caches.
    """

    m: int
    p: float

    def __post_init__(self) -> None:
        _validate_m(self.m)
        _validate_p(self.p)

    @property
    def mean(self) -> float:
        return self.m * self.p

    @property
    def variance(self) -> float:
        return self.m * self.p * (1.0 - self.p)

    def pmf(self) -> np.ndarray:
        """Full pmf vector over ``0..m`` (computed on demand)."""
        return binomial_pmf(self.m, self.p)

    def cdf(self) -> np.ndarray:
        """Full cdf vector over ``0..m``."""
        return binomial_cdf(self.m, self.p)

    def sample(self, k: int, *, seed: SeedLike = None) -> np.ndarray:
        """Draw ``k`` window counts from this distribution."""
        return sample_window_counts(self.m, self.p, k, seed=seed)


def _validate_m(m: int) -> None:
    if not isinstance(m, (int, np.integer)) or m <= 0:
        raise ValueError(f"window size m must be a positive integer, got {m!r}")


def _validate_p(p: float) -> None:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability p must lie in [0, 1], got {p!r}")
