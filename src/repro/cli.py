"""``repro-assess`` — two-phase trust assessment from the command line.

Reads a feedback file (CSV or JSONL, see :mod:`repro.feedback.io`),
groups it by server, runs the configured behavior test plus trust
function on each, and prints one line per server:

    $ repro-assess feedback.csv --test multi --trust average --threshold 0.9
    server           n     trust  verdict
    alice          612     0.953  trusted
    mallory        540     0.950  SUSPICIOUS (distance 1.13 > eps 0.34)

Exit code is 0 when no server is flagged, 2 when at least one is — so
the tool drops into shell pipelines and CI checks.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional

from .core.config import BehaviorTestConfig
from .core.registry import make_behavior_test
from .core.two_phase import TwoPhaseAssessor
from .core.verdict import AssessmentStatus, BehaviorVerdict, MultiTestReport
from .feedback.history import TransactionHistory
from .feedback.io import read
from .feedback.records import Feedback
from .trust.registry import available_trust_functions, make_trust_function

__all__ = ["main", "build_parser"]

_TEST_CHOICES = ("none", "single", "multi", "collusion", "collusion-multi")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-assess",
        description="Two-phase trust assessment of servers in a feedback log",
    )
    parser.add_argument("feedback_file", type=Path, help="CSV or JSONL feedback log")
    parser.add_argument(
        "--test",
        choices=_TEST_CHOICES,
        default="multi",
        help="phase-1 behavior test (default: multi)",
    )
    parser.add_argument(
        "--trust",
        choices=[n for n in available_trust_functions() if n not in ("peertrust", "eigentrust", "htrust")],
        default="average",
        help="phase-2 trust function (default: average)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.9, help="client trust threshold"
    )
    parser.add_argument(
        "--window", type=int, default=10, help="behavior-test window size m"
    )
    parser.add_argument(
        "--confidence", type=float, default=0.95, help="threshold confidence level"
    )
    parser.add_argument(
        "--server",
        action="append",
        default=None,
        help="assess only this server (repeatable)",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )
    parser.add_argument(
        "--log-level",
        type=str,
        default=None,
        help=(
            "enable repro.* logging at this level (DEBUG, INFO, ...); "
            "defaults to $REPRO_LOG_LEVEL"
        ),
    )
    parser.add_argument(
        "--audit-out",
        type=Path,
        default=None,
        help="write per-assessment audit records (JSONL) to this path; "
        "inspect them with `repro explain <server> <path>`",
    )
    parser.add_argument(
        "--audit-sample",
        type=int,
        default=1,
        help="record every Nth assessment decision (default: 1 = all)",
    )
    return parser


def _load(path: Path) -> List[Feedback]:
    return read(path)  # format resolved by extension, then content


def _make_test(name: str, config: BehaviorTestConfig):
    # The CLI's historical "collusion" means the single-test wrapper; the
    # core registry's "collusion" alias points at the multi-test one.
    registry_name = "collusion-single" if name == "collusion" else name
    return make_behavior_test(registry_name, config=config)


def _maybe_audit(args):
    """Audit session writing to ``--audit-out``, or a no-op context."""
    if args.audit_out is None:
        import contextlib

        return contextlib.nullcontext()
    from .obs import audit

    if args.audit_sample < 1:
        raise SystemExit("error: --audit-sample must be >= 1")
    return audit.audit_session(
        sample_every=args.audit_sample,
        path=args.audit_out,
        run_meta={"tool": "repro-assess", "feedback_file": str(args.feedback_file)},
    )


def _failure_detail(behavior) -> str:
    # Most specific first: MultiTestReport is itself a BehaviorVerdict.
    if isinstance(behavior, MultiTestReport) and behavior.first_failure:
        length, verdict = behavior.first_failure
        return (
            f"(suffix {length}: distance {verdict.distance:.2f} > "
            f"eps {verdict.threshold:.2f})"
        )
    if isinstance(behavior, BehaviorVerdict):
        return f"(distance {behavior.distance:.2f} > eps {behavior.threshold:.2f})"
    return ""


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _run(argv)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`): exit quietly
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 0


def _run(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    log_level = args.log_level or os.environ.get("REPRO_LOG_LEVEL")
    if log_level:
        from . import obs

        obs.configure_logging(log_level)
    try:
        feedbacks = _load(args.feedback_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if not feedbacks:
        print("error: no feedback records found", file=sys.stderr)
        return 1

    by_server: Dict[str, List[Feedback]] = defaultdict(list)
    for fb in feedbacks:
        by_server[fb.server].append(fb)
    servers = args.server if args.server else sorted(by_server)
    unknown = [s for s in servers if s not in by_server]
    if unknown:
        print(f"error: no feedback for server(s) {unknown}", file=sys.stderr)
        return 1

    config = BehaviorTestConfig(window_size=args.window, confidence=args.confidence)
    assessor = TwoPhaseAssessor(
        behavior_test=_make_test(args.test, config),
        trust_function=make_trust_function(args.trust),
        trust_threshold=args.threshold,
    )

    rows = []
    any_suspicious = False
    with _maybe_audit(args):
        for server in servers:
            history = TransactionHistory.from_feedbacks(by_server[server])
            result = assessor.assess(history)
            any_suspicious = (
                any_suspicious or result.status is AssessmentStatus.SUSPICIOUS
            )
            rows.append((server, len(history), result))
    if args.audit_out is not None:
        print(f"audit records written to {args.audit_out}", file=sys.stderr)

    if args.format == "json":
        import json

        payload = [
            {
                "server": server,
                "transactions": n,
                "status": result.status.value,
                "trust": result.trust_value,
                "detail": (
                    _failure_detail(result.behavior)
                    if result.status is AssessmentStatus.SUSPICIOUS
                    else ""
                ),
            }
            for server, n, result in rows
        ]
        print(json.dumps(payload, indent=2))
        return 2 if any_suspicious else 0

    width = max(len("server"), *(len(s) for s in servers))
    print(f"{'server':{width}s}  {'n':>6s}  {'trust':>7s}  verdict")
    for server, n, result in rows:
        if result.status is AssessmentStatus.SUSPICIOUS:
            verdict = f"SUSPICIOUS {_failure_detail(result.behavior)}".rstrip()
            trust_text = "-"
        else:
            verdict = result.status.value
            trust_text = f"{result.trust_value:.3f}"
        print(f"{server:{width}s}  {n:>6d}  {trust_text:>7s}  {verdict}")

    return 2 if any_suspicious else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())
