"""TrustGuard-style PID trust (Srivatsa, Xiong & Liu, WWW 2005).

The paper cites TrustGuard as the representative attempt to harden trust
*functions* against strategic oscillation — the same attacks the
honest-player screen targets, approached from inside phase 2.  Its core
is a PID controller over the reputation signal: the trust value combines
the current behavior (proportional), the long-term history (integral)
and the recent trend (derivative), so oscillating attackers are
penalized for the downswings that a plain average forgives.

    T_t = alpha * R_t + beta * avg(R_1..R_t) + gamma * max(-dR_t, 0)-penalty

where ``R_t`` is the fraction of good transactions in reporting period
``t``.  We implement the standard discrete form with the derivative term
*subtracting* on downward trends only (an upswing should not be
rewarded faster than the average builds).  With ``beta = 1`` and
``alpha = gamma = 0`` this reduces to the average trust function over
period summaries.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from .base import TrustFunction, TrustTracker

__all__ = ["TrustGuardTrust", "TrustGuardTracker"]


class TrustGuardTracker(TrustTracker):
    """PID accumulator over fixed-size reporting periods."""

    __slots__ = (
        "_alpha",
        "_beta",
        "_gamma",
        "_period",
        "_current_good",
        "_current_n",
        "_sum_rates",
        "_n_periods",
        "_last_rate",
        "_prior",
    )

    def __init__(self, alpha: float, beta: float, gamma: float, period: int, prior: float):
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._period = period
        self._current_good = 0
        self._current_n = 0
        self._sum_rates = 0.0
        self._n_periods = 0
        self._last_rate = prior
        self._prior = prior

    # -- the PID combination ------------------------------------------- #

    def _value_from(self, current_good, current_n, sum_rates, n_periods, last_rate):
        # proportional: the (possibly partial) current period
        if current_n > 0:
            proportional = current_good / current_n
        elif n_periods > 0:
            proportional = last_rate
        else:
            proportional = self._prior
        # integral: average over completed periods (prior before any)
        integral = sum_rates / n_periods if n_periods > 0 else self._prior
        # derivative: penalize only downward movement of the rate
        derivative_penalty = max(last_rate - proportional, 0.0)
        value = (
            self._alpha * proportional
            + self._beta * integral
            - self._gamma * derivative_penalty
        )
        return min(max(value, 0.0), 1.0)

    @property
    def value(self) -> float:
        return self._value_from(
            self._current_good,
            self._current_n,
            self._sum_rates,
            self._n_periods,
            self._last_rate,
        )

    def update(self, outcome: int) -> None:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._current_good += outcome
        self._current_n += 1
        if self._current_n == self._period:
            rate = self._current_good / self._period
            self._sum_rates += rate
            self._n_periods += 1
            self._last_rate = rate
            self._current_good = 0
            self._current_n = 0

    def peek(self, outcome: int) -> float:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        good = self._current_good + outcome
        n = self._current_n + 1
        if n == self._period:
            rate = good / self._period
            return self._value_from(
                0, 0, self._sum_rates + rate, self._n_periods + 1, rate
            )
        return self._value_from(
            good, n, self._sum_rates, self._n_periods, self._last_rate
        )

    def copy(self) -> "TrustGuardTracker":
        clone = TrustGuardTracker(
            self._alpha, self._beta, self._gamma, self._period, self._prior
        )
        clone._current_good = self._current_good
        clone._current_n = self._current_n
        clone._sum_rates = self._sum_rates
        clone._n_periods = self._n_periods
        clone._last_rate = self._last_rate
        return clone


class TrustGuardTrust(TrustFunction):
    """PID-controlled trust over reporting periods of ``period`` transactions.

    ``alpha + beta`` should be ~1 so the steady-state range stays [0, 1];
    ``gamma`` scales the penalty for downward reputation swings — the
    anti-oscillation knob.
    """

    name = "trustguard"

    def __init__(
        self,
        alpha: float = 0.4,
        beta: float = 0.6,
        gamma: float = 0.4,
        period: int = 10,
        prior: float = 0.5,
    ):
        for label, value in (("alpha", alpha), ("beta", beta), ("gamma", gamma)):
            if value < 0:
                raise ValueError(f"{label} must be non-negative, got {value}")
        if alpha + beta <= 0:
            raise ValueError("alpha + beta must be positive")
        if alpha + beta > 1.0 + 1e-9:
            raise ValueError(
                f"alpha + beta must not exceed 1 (keeps trust in [0, 1]), "
                f"got {alpha + beta}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must lie in [0, 1], got {prior}")
        self._alpha = alpha
        self._beta = beta
        self._gamma = gamma
        self._period = period
        self._prior = prior

    def tracker(self) -> TrustGuardTracker:
        return TrustGuardTracker(
            self._alpha, self._beta, self._gamma, self._period, self._prior
        )

    def __repr__(self) -> str:
        return (
            f"TrustGuardTrust(alpha={self._alpha}, beta={self._beta}, "
            f"gamma={self._gamma}, period={self._period})"
        )
