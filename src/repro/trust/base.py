"""Trust-function interface.

The paper defines a trust function as a mapping from feedback sets to a
trust value in ``T = [0, 1]``, interpreted as the predicted probability
that the next transaction with the server is satisfactory (Sec. 2).

Two evaluation modes are provided:

* :meth:`TrustFunction.score` — compute the trust value of a whole
  :class:`~repro.feedback.history.TransactionHistory` (or a bare outcome
  vector) from scratch; and
* :meth:`TrustFunction.tracker` — an incremental accumulator with O(1)
  :meth:`TrustTracker.update` per transaction and a constant-time
  :meth:`TrustTracker.peek`, which the strategic attacker uses to ask
  "what would my trust be after one more good/bad transaction?" tens of
  thousands of times without rescoring the history.

Some reputation schemes (PeerTrust, EigenTrust) need more than the
server's own history; they implement :class:`LedgerTrustFunction` and are
scored against the system-wide :class:`~repro.feedback.ledger.FeedbackLedger`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import ClassVar, Union

import numpy as np

from ..feedback.history import TransactionHistory
from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId

__all__ = ["HistoryLike", "TrustFunction", "TrustTracker", "LedgerTrustFunction"]

HistoryLike = Union[TransactionHistory, np.ndarray, list, tuple]


def _as_outcomes(history: HistoryLike) -> np.ndarray:
    if isinstance(history, TransactionHistory):
        return history.outcomes()
    arr = np.asarray(history)
    if arr.ndim != 1:
        raise ValueError("history must be 1-D outcomes or a TransactionHistory")
    if arr.size and not np.isin(arr, (0, 1)).all():
        raise ValueError("outcomes must be binary (0/1)")
    return arr.astype(np.int8)


class TrustTracker(ABC):
    """Incremental trust accumulator for one server."""

    @property
    @abstractmethod
    def value(self) -> float:
        """Current trust value in [0, 1]."""

    @abstractmethod
    def update(self, outcome: int) -> None:
        """Fold in the outcome (1 good / 0 bad) of one more transaction."""

    @abstractmethod
    def peek(self, outcome: int) -> float:
        """Trust value *if* ``outcome`` were appended, without mutating."""

    @abstractmethod
    def copy(self) -> "TrustTracker":
        """Independent copy (for branching what-if explorations)."""

    def update_many(self, outcomes) -> None:
        """Fold in a whole outcome sequence, oldest first."""
        for outcome in np.asarray(outcomes).ravel():
            self.update(int(outcome))


class TrustFunction(ABC):
    """A trust function over a single server's transaction history."""

    #: short identifier used by the registry and experiment configs
    name: ClassVar[str] = "abstract"

    @abstractmethod
    def tracker(self) -> TrustTracker:
        """Fresh incremental accumulator (empty history)."""

    def score(self, history: HistoryLike) -> float:
        """Trust value of the full history (replays it through a tracker).

        Subclasses with a closed form override this for speed.
        """
        tracker = self.tracker()
        tracker.update_many(_as_outcomes(history))
        return tracker.value

    def provenance(self) -> dict:
        """Identity of this trust scheme for audit records.

        Subclasses with tunable parameters should extend the dict with
        whatever a reader needs to reproduce the score (decay factors,
        priors, window lengths, ...).
        """
        return {"name": self.name, "class": type(self).__name__, "mode": "history"}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class LedgerTrustFunction(ABC):
    """A reputation scheme that scores a server against the whole ledger."""

    name: ClassVar[str] = "abstract-ledger"

    @abstractmethod
    def score_server(self, server: EntityId, ledger: FeedbackLedger) -> float:
        """Trust value of ``server`` given every feedback in the system."""

    def provenance(self) -> dict:
        """Identity of this trust scheme for audit records."""
        return {"name": self.name, "class": type(self).__name__, "mode": "ledger"}
