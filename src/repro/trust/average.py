"""The average trust function — the paper's first baseline.

Trust is the ratio of good transactions to all transactions.  Despite its
simplicity, the paper notes (citing Liang & Shi) that in systems with
heavy dynamics the average function is often the most cost-effective
choice, which is why it anchors the Fig. 3/Fig. 5 experiments.
"""

from __future__ import annotations

from .base import HistoryLike, TrustFunction, TrustTracker, _as_outcomes

__all__ = ["AverageTrust", "AverageTracker"]


class AverageTracker(TrustTracker):
    """Counting accumulator: trust = good / total."""

    __slots__ = ("_n", "_n_good", "_prior")

    def __init__(self, prior: float):
        self._n = 0
        self._n_good = 0
        self._prior = prior

    @property
    def value(self) -> float:
        if self._n == 0:
            return self._prior
        return self._n_good / self._n

    def update(self, outcome: int) -> None:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._n += 1
        self._n_good += outcome

    def peek(self, outcome: int) -> float:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        return (self._n_good + outcome) / (self._n + 1)

    def copy(self) -> "AverageTracker":
        clone = AverageTracker(self._prior)
        clone._n = self._n
        clone._n_good = self._n_good
        return clone


class AverageTrust(TrustFunction):
    """``trust = n_good / n``; ``prior`` is returned for empty histories."""

    name = "average"

    def __init__(self, prior: float = 0.5):
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must lie in [0, 1], got {prior}")
        self._prior = prior

    def tracker(self) -> AverageTracker:
        return AverageTracker(self._prior)

    def score(self, history: HistoryLike) -> float:
        outcomes = _as_outcomes(history)
        if outcomes.size == 0:
            return self._prior
        return float(outcomes.sum()) / outcomes.size

    def __repr__(self) -> str:
        return f"AverageTrust(prior={self._prior})"
