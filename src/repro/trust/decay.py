"""Time-decay-weighted trust.

Sec. 6 of the paper surveys schemes that assign time-based weights
``w_i`` to each feedback with ``sum(w_i) = 1`` so recent feedback counts
more (Ray & Chakraborty; Huynh et al.; Selçuk et al.).  This module
implements the canonical geometric-weight member of that family over
transaction *indices* (ages), which subsumes the EWMA as the special case
where the normalization is dropped.

    trust = sum_i gamma^{n-1-i} f_i / sum_i gamma^{n-1-i}
"""

from __future__ import annotations

import numpy as np

from .base import HistoryLike, TrustFunction, TrustTracker, _as_outcomes

__all__ = ["DecayTrust", "DecayTracker"]


class DecayTracker(TrustTracker):
    """Normalized geometric-decay accumulator.

    Maintains ``num = sum gamma^{age} f`` and ``den = sum gamma^{age}``;
    an update ages every previous feedback by one step, which is a single
    multiplication on each aggregate.
    """

    __slots__ = ("_gamma", "_num", "_den", "_prior")

    def __init__(self, gamma: float, prior: float):
        self._gamma = gamma
        self._num = 0.0
        self._den = 0.0
        self._prior = prior

    @property
    def value(self) -> float:
        if self._den == 0.0:
            return self._prior
        return self._num / self._den

    def update(self, outcome: int) -> None:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._num = self._gamma * self._num + outcome
        self._den = self._gamma * self._den + 1.0

    def peek(self, outcome: int) -> float:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        return (self._gamma * self._num + outcome) / (self._gamma * self._den + 1.0)

    def copy(self) -> "DecayTracker":
        clone = DecayTracker(self._gamma, self._prior)
        clone._num = self._num
        clone._den = self._den
        return clone


class DecayTrust(TrustFunction):
    """Normalized geometric time-decay trust.

    ``gamma`` close to 1 approaches the average function; small ``gamma``
    approaches last-transaction-only.  ``gamma = 1`` is exactly the
    average function and is allowed.
    """

    name = "decay"

    def __init__(self, gamma: float = 0.98, prior: float = 0.5):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must lie in (0, 1], got {gamma}")
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must lie in [0, 1], got {prior}")
        self._gamma = gamma
        self._prior = prior

    def tracker(self) -> DecayTracker:
        return DecayTracker(self._gamma, self._prior)

    def score(self, history: HistoryLike) -> float:
        outcomes = _as_outcomes(history).astype(np.float64)
        n = outcomes.size
        if n == 0:
            return self._prior
        weights = self._gamma ** np.arange(n - 1, -1, -1)
        den = float(weights.sum())
        if den == 0.0:  # extreme underflow: only the newest items survive
            return float(outcomes[-1])
        return float(weights @ outcomes) / den

    def __repr__(self) -> str:
        return f"DecayTrust(gamma={self._gamma}, prior={self._prior})"
