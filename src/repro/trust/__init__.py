"""Trust-function library: the paper's baselines and related-work schemes."""

from .average import AverageTracker, AverageTrust
from .base import HistoryLike, LedgerTrustFunction, TrustFunction, TrustTracker
from .beta import BetaReputationTrust, BetaTracker
from .decay import DecayTracker, DecayTrust
from .eigentrust import EigenTrust
from .htrust import HTrust, h_index
from .peertrust import PeerTrust
from .registry import (
    available_trust_functions,
    make_trust_function,
    register_trust_function,
)
from .trustguard import TrustGuardTracker, TrustGuardTrust
from .weighted import WeightedTracker, WeightedTrust

__all__ = [
    "AverageTracker",
    "AverageTrust",
    "HistoryLike",
    "LedgerTrustFunction",
    "TrustFunction",
    "TrustTracker",
    "BetaReputationTrust",
    "BetaTracker",
    "DecayTracker",
    "DecayTrust",
    "EigenTrust",
    "HTrust",
    "h_index",
    "PeerTrust",
    "available_trust_functions",
    "make_trust_function",
    "register_trust_function",
    "TrustGuardTracker",
    "TrustGuardTrust",
    "WeightedTracker",
    "WeightedTrust",
]
