"""EigenTrust (Kamvar, Schlosser & Garcia-Molina, WWW 2003).

The graph-based reputation baseline the paper cites as [3]: each peer's
local trust in another is derived from their direct transactions, local
trust vectors are normalized, and the global trust vector is the
stationary distribution of the resulting stochastic matrix, computed by
power iteration with a restart toward pre-trusted peers:

    t_{k+1} = (1 - a) C^T t_k + a p

where ``C`` is the row-normalized local trust matrix, ``p`` the
pre-trusted distribution, and ``a`` the restart weight.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId
from .base import LedgerTrustFunction

__all__ = ["EigenTrust"]


class EigenTrust(LedgerTrustFunction):
    """Global trust by power iteration over the feedback graph.

    ``score_server`` returns the server's global trust normalized by the
    maximum component so the result lies in [0, 1] and is comparable with
    threshold-based clients.  Use :meth:`global_trust` for the raw
    stationary distribution.
    """

    name = "eigentrust"

    def __init__(
        self,
        restart: float = 0.15,
        pretrusted: Optional[Iterable[EntityId]] = None,
        max_iterations: int = 200,
        tolerance: float = 1e-10,
    ):
        if not 0.0 <= restart < 1.0:
            raise ValueError(f"restart must lie in [0, 1), got {restart}")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self._restart = restart
        self._pretrusted = set(pretrusted) if pretrusted else None
        self._max_iterations = max_iterations
        self._tolerance = tolerance

    def global_trust(self, ledger: FeedbackLedger) -> Dict[EntityId, float]:
        """The full stationary trust distribution over all entities."""
        entities = sorted(ledger.servers() | ledger.clients())
        if not entities:
            return {}
        index = {e: i for i, e in enumerate(entities)}
        n = len(entities)

        local = np.zeros((n, n), dtype=np.float64)
        for (client, server), (pos, neg) in ledger.feedback_graph().items():
            # EigenTrust's s_ij = max(pos - neg, 0)
            local[index[client], index[server]] = max(pos - neg, 0)

        pretrusted = self._pretrusted_vector(entities, index, n)
        # Row-normalize; rows with no outgoing trust fall back to the
        # pre-trusted distribution (the standard EigenTrust fix-up).
        row_sums = local.sum(axis=1, keepdims=True)
        matrix = np.where(row_sums > 0, local / np.maximum(row_sums, 1e-300), pretrusted)

        trust = pretrusted.copy()
        for _ in range(self._max_iterations):
            updated = (1.0 - self._restart) * (matrix.T @ trust) + self._restart * pretrusted
            if np.abs(updated - trust).sum() < self._tolerance:
                trust = updated
                break
            trust = updated
        return {entity: float(trust[index[entity]]) for entity in entities}

    def score_server(self, server: EntityId, ledger: FeedbackLedger) -> float:
        trust = self.global_trust(ledger)
        if server not in trust:
            return 0.0
        peak = max(trust.values())
        if peak <= 0.0:
            return 0.0
        return trust[server] / peak

    def _pretrusted_vector(
        self, entities: List[EntityId], index: Dict[EntityId, int], n: int
    ) -> np.ndarray:
        vector = np.zeros(n, dtype=np.float64)
        if self._pretrusted:
            members = [e for e in entities if e in self._pretrusted]
            if members:
                for e in members:
                    vector[index[e]] = 1.0 / len(members)
                return vector
        vector[:] = 1.0 / n
        return vector
