"""The weighted (EWMA) trust function — the paper's second baseline.

Following Fan, Tan & Whinston (IEEE TKDE 2005), the trust value after the
latest transaction with feedback ``f_t`` is

    R_t = lambda * f_t + (1 - lambda) * R_{t-1}

so recent behavior dominates.  The Fig. 4/Fig. 6 experiments use
``lambda = 0.5``: a single bad transaction halves the trust value, which
is why the paper observes that against this function an attacker "can
never conduct two consecutive bad transactions" and needs 2–3 good
transactions after each bad one to climb back above the 0.9 threshold.
"""

from __future__ import annotations

import numpy as np

from .base import HistoryLike, TrustFunction, TrustTracker, _as_outcomes

__all__ = ["WeightedTrust", "WeightedTracker"]


class WeightedTracker(TrustTracker):
    """Exponentially weighted moving average of outcomes."""

    __slots__ = ("_lambda", "_value")

    def __init__(self, lam: float, initial: float):
        self._lambda = lam
        self._value = initial

    @property
    def value(self) -> float:
        return self._value

    def update(self, outcome: int) -> None:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._value = self._lambda * outcome + (1.0 - self._lambda) * self._value

    def peek(self, outcome: int) -> float:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        return self._lambda * outcome + (1.0 - self._lambda) * self._value

    def copy(self) -> "WeightedTracker":
        return WeightedTracker(self._lambda, self._value)


class WeightedTrust(TrustFunction):
    """EWMA trust ``R_t = lambda f_t + (1 - lambda) R_{t-1}``.

    ``initial`` is the trust assigned before any transaction (``R_0``);
    with any reasonable preparation history its influence vanishes
    geometrically.
    """

    name = "weighted"

    def __init__(self, lam: float = 0.5, initial: float = 0.5):
        if not 0.0 < lam <= 1.0:
            raise ValueError(f"lambda must lie in (0, 1], got {lam}")
        if not 0.0 <= initial <= 1.0:
            raise ValueError(f"initial must lie in [0, 1], got {initial}")
        self._lambda = lam
        self._initial = initial

    @property
    def lam(self) -> float:
        return self._lambda

    def tracker(self) -> WeightedTracker:
        return WeightedTracker(self._lambda, self._initial)

    def score(self, history: HistoryLike) -> float:
        """Closed-form EWMA over the whole history (vectorized)."""
        outcomes = _as_outcomes(history).astype(np.float64)
        n = outcomes.size
        if n == 0:
            return self._initial
        # R_n = (1-l)^n R_0 + l * sum_i (1-l)^{n-1-i} f_i
        decay = 1.0 - self._lambda
        powers = decay ** np.arange(n - 1, -1, -1)
        value = (decay**n) * self._initial + self._lambda * float(powers @ outcomes)
        # Guard against floating-point drift just outside [0, 1].
        return min(max(value, 0.0), 1.0)

    def __repr__(self) -> str:
        return f"WeightedTrust(lam={self._lambda}, initial={self._initial})"
