"""Registry of trust functions, keyed by short name.

Experiment configurations and the CLI refer to trust functions by name
(``"average"``, ``"weighted"``, ...); the registry maps those names to
factories so new functions plug in without touching the harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from .average import AverageTrust
from .base import LedgerTrustFunction, TrustFunction
from .beta import BetaReputationTrust
from .decay import DecayTrust
from .eigentrust import EigenTrust
from .htrust import HTrust
from .peertrust import PeerTrust
from .trustguard import TrustGuardTrust
from .weighted import WeightedTrust

__all__ = ["make_trust_function", "register_trust_function", "available_trust_functions"]

AnyTrust = Union[TrustFunction, LedgerTrustFunction]

_FACTORIES: Dict[str, Callable[..., AnyTrust]] = {
    AverageTrust.name: AverageTrust,
    WeightedTrust.name: WeightedTrust,
    BetaReputationTrust.name: BetaReputationTrust,
    DecayTrust.name: DecayTrust,
    PeerTrust.name: PeerTrust,
    TrustGuardTrust.name: TrustGuardTrust,
    EigenTrust.name: EigenTrust,
    HTrust.name: HTrust,
}


def make_trust_function(name: str, **kwargs) -> AnyTrust:
    """Instantiate a registered trust function.

    Keyword arguments are forwarded to the constructor, e.g.
    ``make_trust_function("weighted", lam=0.5)``.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown trust function {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)


def register_trust_function(name: str, factory: Callable[..., AnyTrust]) -> None:
    """Register a custom trust function under ``name``.

    Re-registering an existing name is an error — shadowing a baseline
    silently would corrupt experiment comparisons.
    """
    if name in _FACTORIES:
        raise ValueError(f"trust function {name!r} is already registered")
    _FACTORIES[name] = factory


def available_trust_functions() -> list:
    """Sorted list of registered names."""
    return sorted(_FACTORIES)
