"""Registry of trust functions, keyed by short name.

Experiment configurations and the CLI refer to trust functions by name
(``"average"``, ``"weighted"``, ...); the registry maps those names to
factories so new functions plug in without touching the harness.
"""

from __future__ import annotations

from typing import Callable, Dict, Union

from .average import AverageTrust
from .base import LedgerTrustFunction, TrustFunction
from .beta import BetaReputationTrust
from .decay import DecayTrust
from .eigentrust import EigenTrust
from .htrust import HTrust
from .peertrust import PeerTrust
from .trustguard import TrustGuardTrust
from .weighted import WeightedTrust

__all__ = [
    "make_trust_function",
    "register_trust_function",
    "available_trust_functions",
    "resolve_trust_name",
]

AnyTrust = Union[TrustFunction, LedgerTrustFunction]

_FACTORIES: Dict[str, Callable[..., AnyTrust]] = {
    AverageTrust.name: AverageTrust,
    WeightedTrust.name: WeightedTrust,
    BetaReputationTrust.name: BetaReputationTrust,
    DecayTrust.name: DecayTrust,
    PeerTrust.name: PeerTrust,
    TrustGuardTrust.name: TrustGuardTrust,
    EigenTrust.name: EigenTrust,
    HTrust.name: HTrust,
}

#: Historical / class-derived spellings, resolved to canonical names so
#: configs written against either surface keep working.
_ALIASES: Dict[str, str] = {
    "avg": AverageTrust.name,
    "mean": AverageTrust.name,
    "beta-reputation": BetaReputationTrust.name,
    "peer-trust": PeerTrust.name,
    "trust-guard": TrustGuardTrust.name,
    "eigen": EigenTrust.name,
    "h-trust": HTrust.name,
}


def resolve_trust_name(name: str) -> str:
    """Canonical registered name for ``name`` (aliases resolved)."""
    canonical = _ALIASES.get(name, name)
    if canonical not in _FACTORIES:
        raise KeyError(
            f"unknown trust function {name!r}; available: {sorted(_FACTORIES)} "
            f"(aliases: {sorted(_ALIASES)})"
        )
    return canonical


def make_trust_function(name: str, **kwargs) -> AnyTrust:
    """Instantiate a registered trust function.

    Keyword arguments are forwarded to the constructor, e.g.
    ``make_trust_function("weighted", lam=0.5)``.
    """
    return _FACTORIES[resolve_trust_name(name)](**kwargs)


def register_trust_function(
    name: str, factory: Callable[..., AnyTrust], *, aliases=()
) -> None:
    """Register a custom trust function under ``name`` (plus ``aliases``).

    Re-registering an existing name or alias is an error — shadowing a
    baseline silently would corrupt experiment comparisons.
    """
    for candidate in (name, *aliases):
        if candidate in _FACTORIES or candidate in _ALIASES:
            raise ValueError(f"trust function {candidate!r} is already registered")
    _FACTORIES[name] = factory
    for alias in aliases:
        _ALIASES[alias] = name


def available_trust_functions() -> list:
    """Sorted list of registered names."""
    return sorted(_FACTORIES)
