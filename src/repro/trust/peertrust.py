"""Simplified PeerTrust (Xiong & Liu, ICECR 2002).

PeerTrust evaluates a server as the credibility-weighted average of the
satisfaction it delivered, where the credibility of a feedback issuer is
derived from how similarly it rates servers compared with the rest of the
community.  We implement the feedback-similarity credibility variant:

    T(s)    = sum_c  cred(c) * sat(c, s)  /  sum_c cred(c)
    sat(c,s) = fraction of c's feedbacks about s that are positive
    cred(c) = 1 / (1 + RMS rating disagreement of c with community means)

This is a *ledger* trust function: it needs every client's behavior, not
just the target server's history.  It serves as a richer phase-2 trust
function in the two-phase framework and as a related-work baseline.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Tuple

import numpy as np

from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId, Rating
from .base import LedgerTrustFunction

__all__ = ["PeerTrust"]


class PeerTrust(LedgerTrustFunction):
    """Credibility-weighted satisfaction with similarity-based credibility."""

    name = "peertrust"

    def __init__(self, prior: float = 0.5):
        if not 0.0 <= prior <= 1.0:
            raise ValueError(f"prior must lie in [0, 1], got {prior}")
        self._prior = prior

    def score_server(self, server: EntityId, ledger: FeedbackLedger) -> float:
        sat = _satisfaction_table(ledger)
        if server not in {s for (_, s) in sat}:
            return self._prior
        credibility = self._credibilities(sat)
        num = 0.0
        den = 0.0
        for (client, srv), (rate, count) in sat.items():
            if srv != server:
                continue
            cred = credibility.get(client, 1.0)
            num += cred * rate * count
            den += cred * count
        if den == 0.0:
            return self._prior
        return num / den

    def _credibilities(
        self, sat: Dict[Tuple[EntityId, EntityId], Tuple[float, int]]
    ) -> Dict[EntityId, float]:
        """Per-client credibility from rating similarity to community means."""
        # community mean satisfaction rate per server
        totals: Dict[EntityId, list] = defaultdict(lambda: [0.0, 0])
        for (_, srv), (rate, count) in sat.items():
            cell = totals[srv]
            cell[0] += rate * count
            cell[1] += count
        mean_rate = {srv: v[0] / v[1] for srv, v in totals.items() if v[1] > 0}

        disagreements: Dict[EntityId, list] = defaultdict(list)
        for (client, srv), (rate, _) in sat.items():
            disagreements[client].append((rate - mean_rate[srv]) ** 2)
        return {
            client: 1.0 / (1.0 + float(np.sqrt(np.mean(sq))))
            for client, sq in disagreements.items()
        }


def _satisfaction_table(
    ledger: FeedbackLedger,
) -> Dict[Tuple[EntityId, EntityId], Tuple[float, int]]:
    """``(client, server) -> (positive rate, feedback count)``."""
    counts: Dict[Tuple[EntityId, EntityId], list] = defaultdict(lambda: [0, 0])
    for client in ledger.clients():
        for fb in ledger.feedbacks_by_client(client):
            cell = counts[(client, fb.server)]
            cell[0] += 1 if fb.rating is Rating.POSITIVE else 0
            cell[1] += 1
    return {
        pair: (pos / total, total) for pair, (pos, total) in counts.items() if total
    }
