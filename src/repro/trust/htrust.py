"""H-Trust (Zhao & Li, ICDCS Workshops 2008) — h-index reputation.

A related-work baseline the paper cites as [21]: inspired by the
h-index, a server's reputation is the largest ``h`` such that at least
``h`` of its rating *sources* gave it an aggregate score of at least
``h``.  Combining the evidence score with the number of distinct
referrals providing it makes the scheme "robust and lightweight": a
single enthusiastic client (or colluder) cannot push the index above 1
on its own — breadth of support is required, the same intuition the
paper's supporter-base argument builds on.

We implement the per-server h-index over client satisfaction scores
(each client contributes its count of positive feedbacks for the
server), normalized by the maximum attainable index so the result lands
in the trust domain [0, 1].  It is a ledger scheme: it needs to know who
issued what, not just the outcome sequence.
"""

from __future__ import annotations

from typing import Dict, List

from ..feedback.ledger import FeedbackLedger
from ..feedback.records import EntityId, Rating
from .base import LedgerTrustFunction

__all__ = ["HTrust", "h_index"]


def h_index(scores: List[int]) -> int:
    """The largest ``h`` with at least ``h`` scores >= ``h``."""
    if any(s < 0 for s in scores):
        raise ValueError("scores must be non-negative")
    ordered = sorted(scores, reverse=True)
    h = 0
    for rank, score in enumerate(ordered, start=1):
        if score >= rank:
            h = rank
        else:
            break
    return h


class HTrust(LedgerTrustFunction):
    """h-index over per-client positive-feedback counts, normalized to [0, 1].

    ``saturation`` is the index treated as full trust: an honest server
    with ``saturation`` distinct clients each having ``saturation``
    positive experiences scores 1.0.  Raw ratios (phase-2 style) are
    deliberately not used — breadth of the supporter base is the signal.
    """

    name = "htrust"

    def __init__(self, saturation: int = 10):
        if saturation <= 0:
            raise ValueError(f"saturation must be positive, got {saturation}")
        self._saturation = saturation

    def raw_index(self, server: EntityId, ledger: FeedbackLedger) -> int:
        """The unnormalized h-index of the server's supporter scores."""
        positives: Dict[EntityId, int] = {}
        for fb in ledger.feedbacks_for_server(server):
            if fb.rating is Rating.POSITIVE:
                positives[fb.client] = positives.get(fb.client, 0) + 1
        return h_index(list(positives.values()))

    def score_server(self, server: EntityId, ledger: FeedbackLedger) -> float:
        """Normalized h-index, clamped to [0, 1]."""
        return min(self.raw_index(server, ledger) / self._saturation, 1.0)
