"""Beta reputation (Jøsang & Ismail, Bled 2002).

A Bayesian baseline from the related work: with ``r`` positive and ``s``
negative feedbacks, trust is the expectation of the Beta(r + 1, s + 1)
posterior, ``(r + 1) / (r + s + 2)``.  An optional forgetting factor
discounts old evidence multiplicatively, which is the standard mechanism
the paper's Sec. 6 groups with time-decay schemes.
"""

from __future__ import annotations

from .base import HistoryLike, TrustFunction, TrustTracker, _as_outcomes

__all__ = ["BetaReputationTrust", "BetaTracker"]


class BetaTracker(TrustTracker):
    """Discounted positive/negative evidence accumulator."""

    __slots__ = ("_r", "_s", "_forgetting")

    def __init__(self, forgetting: float):
        self._r = 0.0
        self._s = 0.0
        self._forgetting = forgetting

    @property
    def value(self) -> float:
        return (self._r + 1.0) / (self._r + self._s + 2.0)

    @property
    def evidence(self) -> tuple:
        """Current (discounted) positive/negative evidence pair."""
        return (self._r, self._s)

    def update(self, outcome: int) -> None:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._r = self._forgetting * self._r + outcome
        self._s = self._forgetting * self._s + (1 - outcome)

    def peek(self, outcome: int) -> float:
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        r = self._forgetting * self._r + outcome
        s = self._forgetting * self._s + (1 - outcome)
        return (r + 1.0) / (r + s + 2.0)

    def copy(self) -> "BetaTracker":
        clone = BetaTracker(self._forgetting)
        clone._r = self._r
        clone._s = self._s
        return clone


class BetaReputationTrust(TrustFunction):
    """``E[Beta(r + 1, s + 1)]`` with multiplicative forgetting.

    ``forgetting = 1.0`` (default) keeps all evidence — the pure Bayesian
    estimate; values below 1 emphasize recent behavior like the weighted
    function does.
    """

    name = "beta"

    def __init__(self, forgetting: float = 1.0):
        if not 0.0 < forgetting <= 1.0:
            raise ValueError(f"forgetting must lie in (0, 1], got {forgetting}")
        self._forgetting = forgetting

    def tracker(self) -> BetaTracker:
        return BetaTracker(self._forgetting)

    def score(self, history: HistoryLike) -> float:
        outcomes = _as_outcomes(history)
        if self._forgetting == 1.0:
            r = float(outcomes.sum())
            s = float(outcomes.size - r)
            return (r + 1.0) / (r + s + 2.0)
        return super().score(outcomes)

    def __repr__(self) -> str:
        return f"BetaReputationTrust(forgetting={self._forgetting})"
