"""Feedback substrate: records, histories, the ledger, columnar storage."""

from .history import TransactionHistory
from .io import (
    ReadResult,
    RowError,
    available_formats,
    parse_rating,
    read,
    read_feedback_csv,
    read_feedback_jsonl,
    register_reader,
    write_feedback_binary,
    write_feedback_csv,
    write_feedback_jsonl,
)
from .ledger import (
    FeedbackLedger,
    available_ledger_backends,
    make_ledger_backend,
    register_ledger_backend,
)
from .records import BAD, GOOD, EntityId, Feedback, Rating
from .store import ColumnarStore, FeedbackBatch
from .windows import n_windows, usable_length, window_counts

__all__ = [
    "TransactionHistory",
    "parse_rating",
    "read",
    "ReadResult",
    "RowError",
    "register_reader",
    "available_formats",
    "read_feedback_csv",
    "read_feedback_jsonl",
    "write_feedback_csv",
    "write_feedback_jsonl",
    "write_feedback_binary",
    "FeedbackLedger",
    "register_ledger_backend",
    "make_ledger_backend",
    "available_ledger_backends",
    "ColumnarStore",
    "FeedbackBatch",
    "BAD",
    "GOOD",
    "EntityId",
    "Feedback",
    "Rating",
    "n_windows",
    "usable_length",
    "window_counts",
]
