"""Feedback substrate: records, per-server histories, the system ledger."""

from .history import TransactionHistory
from .io import (
    parse_rating,
    read_feedback_csv,
    read_feedback_jsonl,
    write_feedback_csv,
    write_feedback_jsonl,
)
from .ledger import FeedbackLedger
from .records import BAD, GOOD, EntityId, Feedback, Rating
from .windows import n_windows, usable_length, window_counts

__all__ = [
    "TransactionHistory",
    "parse_rating",
    "read_feedback_csv",
    "read_feedback_jsonl",
    "write_feedback_csv",
    "write_feedback_jsonl",
    "FeedbackLedger",
    "BAD",
    "GOOD",
    "EntityId",
    "Feedback",
    "Rating",
    "n_windows",
    "usable_length",
    "window_counts",
]
