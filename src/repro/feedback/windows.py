"""Windowing of outcome sequences.

The behavior tests break a transaction history into ``k = floor(n / m)``
consecutive windows of ``m`` transactions and count the good transactions
``G_i`` in each (Sec. 3.2).  When ``n`` is not a multiple of ``m`` a
remainder must be dropped from one end; which end matters:

* ``align="recent"`` (library default) drops the *oldest* remainder, so
  window boundaries are anchored at the most recent transaction.  This is
  what multi-testing requires — every suffix considered shares window
  boundaries with longer suffixes, enabling the paper's O(n) reuse of
  intermediate statistics.
* ``align="oldest"`` drops the newest remainder (a literal reading of
  "break H sequentially"), kept for comparison.
"""

from __future__ import annotations

import numpy as np

__all__ = ["window_counts", "batched_window_counts", "n_windows", "usable_length"]

_ALIGNMENTS = ("recent", "oldest")


def n_windows(n: int, m: int) -> int:
    """Number of complete windows of size ``m`` in ``n`` transactions."""
    _validate(m)
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return n // m


def usable_length(n: int, m: int) -> int:
    """Number of transactions actually covered by complete windows."""
    return n_windows(n, m) * m


def window_counts(
    outcomes: np.ndarray, m: int, *, align: str = "recent"
) -> np.ndarray:
    """Per-window good-transaction counts ``G_1..G_k``.

    ``outcomes`` is a 1-D 0/1 array in time order (oldest first); the
    result is in time order as well, regardless of alignment.
    """
    _validate(m, align)
    arr = np.asarray(outcomes)
    if arr.ndim != 1:
        raise ValueError("outcomes must be a 1-D sequence")
    k = arr.size // m
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if align == "recent":
        trimmed = arr[arr.size - k * m :]
    else:
        trimmed = arr[: k * m]
    return trimmed.reshape(k, m).sum(axis=1).astype(np.int64)


def batched_window_counts(
    flat: np.ndarray, offsets: np.ndarray, m: int
) -> np.ndarray:
    """Recent-aligned window counts for many histories in one pass.

    ``flat`` is the concatenation of every history's 0/1 outcomes and
    ``offsets`` the usual ``len(histories)+1`` prefix array (history
    ``i`` occupies ``flat[offsets[i]:offsets[i+1]]``).  Returns the
    concatenation of each history's ``window_counts(..., align="recent")``
    — per-history results are recovered with the per-history window
    counts ``(offsets[1:] - offsets[:-1]) // m``.

    One reshape-free vectorized pass: the start of window ``j`` of
    history ``i`` is ``offsets[i] + n_i % m + j*m``; a cumulative sum of
    ``flat`` turns every window into one subtraction.
    """
    _validate(m)
    offsets = np.asarray(offsets, dtype=np.int64)
    flat = np.asarray(flat)
    lengths = offsets[1:] - offsets[:-1]
    ks = lengths // m
    total_k = int(ks.sum())
    if total_k == 0:
        return np.empty(0, dtype=np.int64)
    # cumulative good count with a leading zero: window [a, b) sums to
    # csum[b] - csum[a]
    csum = np.zeros(flat.size + 1, dtype=np.int64)
    np.cumsum(flat, out=csum[1:])
    # per-window start positions, all histories at once
    firsts = np.repeat(offsets[:-1] + (lengths - ks * m), ks)
    within = np.arange(total_k, dtype=np.int64) - np.repeat(
        np.concatenate([[0], np.cumsum(ks)[:-1]]), ks
    )
    starts = firsts + within * m
    return csum[starts + m] - csum[starts]


def _validate(m: int, align: str = "recent") -> None:
    if m <= 0:
        raise ValueError(f"window size m must be positive, got {m}")
    if align not in _ALIGNMENTS:
        raise ValueError(f"align must be one of {_ALIGNMENTS}, got {align!r}")
