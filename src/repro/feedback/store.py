"""Structure-of-arrays feedback storage — the columnar ledger backends.

The object ledger folds one Python :class:`~repro.feedback.records.Feedback`
at a time; at the ROADMAP's millions-of-users scale that per-event
constant dominates ingest.  :class:`ColumnarStore` holds the same data
as parallel numpy columns (``float64`` times, ``uint8`` ratings,
``uint32`` interned server/client ids) with amortized O(1) append and a
vectorized bulk path (:class:`FeedbackBatch`), and two ledger backends
are built on it:

* ``"columnar"`` — in-memory columns only;
* ``"mmap"`` — columns plus the append-only binary file format of
  :mod:`repro.feedback.binlog` (records are appended on every fold, the
  existing file is memory-mapped and recovered on open).

Both register with the backend registry in
:mod:`repro.feedback.ledger`, behind the same ``FeedbackLedger``
facade, with identical semantics to the object backend — including the
``feedback.ledger.fold`` fault site, quarantine behavior, and the
live-history contract (the conformance and hypothesis-equivalence
suites assert all of it, verdict-for-verdict).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..resilience import runtime as _res
from ..resilience.quarantine import Quarantine
from . import binlog
from .history import TransactionHistory
from .records import EntityId, Feedback, Rating

__all__ = [
    "StringTable",
    "FeedbackBatch",
    "ColumnarStore",
    "ColumnarLedgerBackend",
    "MmapLedgerBackend",
]

_FOLD_SITE = "feedback.ledger.fold"
_INITIAL_CAPACITY = 1024


class StringTable:
    """Bidirectional intern table: string id <-> dense integer code.

    Codes are assigned in first-appearance order and never change, so
    they double as stable on-disk indices for the binary ledger's
    sidecar tables.
    """

    def __init__(self, items: Sequence[str] = ()):
        self._items: List[str] = list(items)
        self._index: Dict[str, int] = {s: i for i, s in enumerate(self._items)}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, value: str) -> bool:
        return value in self._index

    def intern(self, value: str) -> int:
        """The code of ``value``, assigning the next one if unseen."""
        code = self._index.get(value)
        if code is None:
            code = len(self._items)
            self._index[value] = code
            self._items.append(value)
        return code

    def intern_many(self, values: np.ndarray) -> Tuple[np.ndarray, List[str]]:
        """Vectorized intern: codes for ``values`` plus the newly added ids.

        One :func:`numpy.unique` pass plus a Python loop over the
        *unique* values only — the per-event cost of interning a large
        batch of mostly-repeated ids is amortized away.
        """
        arr = np.asarray(values)
        if arr.dtype == object:
            # np.unique on an object array argsorts with Python-level
            # comparisons; fixed-width unicode keeps the sort in C and
            # is ~20x faster on multi-million-row batches
            arr = arr.astype(str)
        uniq, inverse = np.unique(arr, return_inverse=True)
        fresh: List[str] = []
        codes = np.empty(uniq.size, dtype=np.uint32)
        for i, value in enumerate(uniq):
            value = str(value)
            code = self._index.get(value)
            if code is None:
                code = len(self._items)
                self._index[value] = code
                self._items.append(value)
                fresh.append(value)
            codes[i] = code
        return codes[inverse], fresh

    def lookup(self, value: str) -> Optional[int]:
        """The code of ``value``, or ``None`` when never interned."""
        return self._index.get(value)

    def value(self, code: int) -> str:
        """The string for ``code`` (IndexError when out of range)."""
        return self._items[code]

    def values(self) -> List[str]:
        """Every interned string, in code order (a copy)."""
        return list(self._items)


@dataclass
class FeedbackBatch:
    """A batch of feedback events as parallel column arrays.

    The columnar ingest interchange: ``times`` (float64), ``servers`` /
    ``clients`` (string arrays), ``ratings`` (0/1 uint8), optional
    ``categories`` (list of ``str | None``) and ``authentic`` (bool).
    Rows are in arrival order; the same validation as the per-event path
    (non-decreasing times per server) is applied vectorized on ingest.
    """

    times: np.ndarray
    servers: np.ndarray
    clients: np.ndarray
    ratings: np.ndarray
    categories: Optional[Sequence[Optional[str]]] = None
    authentic: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.servers = np.asarray(self.servers)
        self.clients = np.asarray(self.clients)
        self.ratings = np.asarray(self.ratings, dtype=np.uint8)
        n = self.times.size
        for name in ("servers", "clients", "ratings"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} has length {len(getattr(self, name))}, expected {n}")
        if self.ratings.size and self.ratings.max(initial=0) > 1:
            raise ValueError("ratings must be binary (0/1)")
        if self.categories is not None and len(self.categories) != n:
            raise ValueError(f"categories has length {len(self.categories)}, expected {n}")
        if self.authentic is not None:
            self.authentic = np.asarray(self.authentic, dtype=bool)
            if self.authentic.size != n:
                raise ValueError(f"authentic has length {self.authentic.size}, expected {n}")

    def __len__(self) -> int:
        return int(self.times.size)

    @classmethod
    def from_feedbacks(cls, feedbacks: Sequence[Feedback]) -> "FeedbackBatch":
        """Columnarize a sequence of feedback records (arrival order kept)."""
        feedbacks = list(feedbacks)
        return cls(
            times=np.array([fb.time for fb in feedbacks], dtype=np.float64),
            servers=np.array([fb.server for fb in feedbacks], dtype=object),
            clients=np.array([fb.client for fb in feedbacks], dtype=object),
            ratings=np.array([fb.outcome for fb in feedbacks], dtype=np.uint8),
            categories=[fb.category for fb in feedbacks],
            authentic=np.array([fb.authentic for fb in feedbacks], dtype=bool),
        )

    def feedback_at(self, i: int) -> Feedback:
        """Materialize row ``i`` as a :class:`Feedback` object."""
        return Feedback(
            time=float(self.times[i]),
            server=str(self.servers[i]),
            client=str(self.clients[i]),
            rating=Rating.POSITIVE if self.ratings[i] else Rating.NEGATIVE,
            category=None if self.categories is None else self.categories[i],
            authentic=True if self.authentic is None else bool(self.authentic[i]),
        )

    def iter_feedbacks(self) -> Iterator[Feedback]:
        """Materialize every row as a :class:`Feedback`, in arrival order."""
        for i in range(len(self)):
            yield self.feedback_at(i)


class ColumnarStore:
    """Growable structure-of-arrays storage for folded feedback events.

    Columns (all parallel, row = one folded event, arrival order):
    ``times`` float64, ``ratings`` uint8, ``server_codes`` /
    ``client_codes`` uint32 (interned via :class:`StringTable`),
    ``category_codes`` uint16 (:data:`~repro.feedback.binlog.CATEGORY_NONE`
    for none) and ``authentic`` uint8.  Derived indices (per-server row
    lists, per-pair last row) are rebuilt lazily after bulk appends so
    the ingest path stays purely vectorized.
    """

    def __init__(self) -> None:
        self.server_table = StringTable()
        self.client_table = StringTable()
        self.category_table = StringTable()
        self._n = 0
        self._times = np.empty(_INITIAL_CAPACITY, dtype=np.float64)
        self._ratings = np.empty(_INITIAL_CAPACITY, dtype=np.uint8)
        self._srv = np.empty(_INITIAL_CAPACITY, dtype=np.uint32)
        self._cli = np.empty(_INITIAL_CAPACITY, dtype=np.uint32)
        self._cat = np.empty(_INITIAL_CAPACITY, dtype=np.uint16)
        self._auth = np.empty(_INITIAL_CAPACITY, dtype=np.uint8)
        #: last folded feedback time per server code — maintained eagerly
        #: (the ordering validation needs it on every append).
        self._last_time: Dict[int, float] = {}
        # lazily rebuilt derived indices
        self._rows_by_server: Dict[int, List[int]] = {}
        self._rows_dirty = False
        self._pair_last: Dict[Tuple[int, int], int] = {}
        self._pair_dirty = False

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------ #
    # column views

    @property
    def times(self) -> np.ndarray:
        """Feedback times, arrival order (live view, do not mutate)."""
        return self._times[: self._n]

    @property
    def ratings(self) -> np.ndarray:
        """0/1 outcomes, arrival order (live view, do not mutate)."""
        return self._ratings[: self._n]

    @property
    def server_codes(self) -> np.ndarray:
        """Interned server codes, arrival order (live view)."""
        return self._srv[: self._n]

    @property
    def client_codes(self) -> np.ndarray:
        """Interned client codes, arrival order (live view)."""
        return self._cli[: self._n]

    @property
    def category_codes(self) -> np.ndarray:
        """Interned category codes (``CATEGORY_NONE`` for none, live view)."""
        return self._cat[: self._n]

    @property
    def authentic(self) -> np.ndarray:
        """Authenticity flags as 0/1, arrival order (live view)."""
        return self._auth[: self._n]

    def last_time(self, server_code: int) -> Optional[float]:
        """Most recent folded feedback time for ``server_code``, if any."""
        return self._last_time.get(server_code)

    # ------------------------------------------------------------------ #
    # append paths

    def append_row(
        self,
        time: float,
        server_code: int,
        client_code: int,
        rating: int,
        category_code: int,
        authentic: int,
    ) -> int:
        """Append one pre-validated, pre-interned event; returns its row."""
        row = self._n
        self._ensure_capacity(row + 1)
        self._times[row] = time
        self._srv[row] = server_code
        self._cli[row] = client_code
        self._ratings[row] = rating
        self._cat[row] = category_code
        self._auth[row] = authentic
        self._n = row + 1
        self._last_time[server_code] = time
        if not self._rows_dirty:
            self._rows_by_server.setdefault(server_code, []).append(row)
        if not self._pair_dirty:
            self._pair_last[(server_code, client_code)] = row
        return row

    def append_columns(
        self,
        times: np.ndarray,
        server_codes: np.ndarray,
        client_codes: np.ndarray,
        ratings: np.ndarray,
        category_codes: np.ndarray,
        authentic: np.ndarray,
    ) -> int:
        """Bulk-append pre-validated column arrays; returns the first row.

        Purely vectorized: per-server last times are updated per *unique*
        server in the block, the row/pair indices are invalidated and
        rebuilt lazily on the next point query.
        """
        n = int(times.size)
        if n == 0:
            return self._n
        start = self._n
        self._ensure_capacity(start + n)
        end = start + n
        self._times[start:end] = times
        self._srv[start:end] = server_codes
        self._cli[start:end] = client_codes
        self._ratings[start:end] = ratings
        self._cat[start:end] = category_codes
        self._auth[start:end] = authentic
        self._n = end
        order = np.argsort(server_codes, kind="stable")
        codes_sorted = server_codes[order]
        boundaries = np.nonzero(np.diff(codes_sorted))[0]
        group_last = np.concatenate([boundaries, [n - 1]])
        for pos in group_last:
            self._last_time[int(codes_sorted[pos])] = float(times[order[pos]])
        self._rows_dirty = True
        self._rows_by_server.clear()
        self._pair_dirty = True
        self._pair_last.clear()
        return start

    def _ensure_capacity(self, needed: int) -> None:
        capacity = self._times.size
        if needed <= capacity:
            return
        new_size = max(capacity * 2, needed)
        for name in ("_times", "_ratings", "_srv", "_cli", "_cat", "_auth"):
            old = getattr(self, name)
            grown = np.empty(new_size, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, name, grown)

    # ------------------------------------------------------------------ #
    # derived indices

    def rows_for_server(self, server_code: int) -> np.ndarray:
        """Row indices of every event for ``server_code``, arrival order."""
        self._ensure_row_index()
        return np.asarray(self._rows_by_server.get(server_code, ()), dtype=np.int64)

    def last_row_for_pair(self, server_code: int, client_code: int) -> Optional[int]:
        """Row of the most recent ``(server, client)`` event, if any."""
        self._ensure_pair_index()
        return self._pair_last.get((server_code, client_code))

    def _ensure_row_index(self) -> None:
        if not self._rows_dirty:
            return
        srv = self._srv[: self._n]
        order = np.argsort(srv, kind="stable")
        codes_sorted = srv[order]
        self._rows_by_server = {}
        if self._n:
            boundaries = np.nonzero(np.diff(codes_sorted))[0] + 1
            starts = np.concatenate([[0], boundaries])
            ends = np.concatenate([boundaries, [self._n]])
            for lo, hi in zip(starts, ends):
                self._rows_by_server[int(codes_sorted[lo])] = order[lo:hi].tolist()
        self._rows_dirty = False

    def _ensure_pair_index(self) -> None:
        if not self._pair_dirty:
            return
        self._pair_last = {}
        if self._n:
            combined = (
                self._srv[: self._n].astype(np.int64) << 32
            ) | self._cli[: self._n].astype(np.int64)
            order = np.argsort(combined, kind="stable")
            keys_sorted = combined[order]
            boundaries = np.nonzero(np.diff(keys_sorted))[0]
            group_last = np.concatenate([boundaries, [self._n - 1]])
            for pos in group_last:
                key = int(keys_sorted[pos])
                self._pair_last[(key >> 32, key & 0xFFFFFFFF)] = int(order[pos])
        self._pair_dirty = False

    # ------------------------------------------------------------------ #
    # materialization

    def feedback_at(self, row: int) -> Feedback:
        """Materialize one stored event as a :class:`Feedback` object."""
        cat_code = int(self._cat[row])
        return Feedback(
            time=float(self._times[row]),
            server=self.server_table.value(int(self._srv[row])),
            client=self.client_table.value(int(self._cli[row])),
            rating=Rating.POSITIVE if self._ratings[row] else Rating.NEGATIVE,
            category=(
                None
                if cat_code == binlog.CATEGORY_NONE
                else self.category_table.value(cat_code)
            ),
            authentic=bool(self._auth[row]),
        )


class _ColumnarHistory(TransactionHistory):
    """Live :class:`TransactionHistory` view over a :class:`ColumnarStore`.

    Outcomes materialize in one vectorized gather (the service's cold
    path reads only those); the per-event :class:`Feedback` metadata is
    deferred until something actually asks for it (``feedbacks()``,
    ``group_by_client()``, the collusion testers) and is then rebuilt
    from the store's columns.  While un-materialized, appends track the
    last feedback time in a plain float so the live-append contract
    costs O(1) per fold, exactly like the eager history.
    """

    def __init__(
        self,
        server: EntityId,
        store: "ColumnarStore",
        server_code: int,
        rows: np.ndarray,
    ):
        super().__init__(server)
        self._lazy_store = store
        self._lazy_code = server_code
        self._lazy_list: Optional[List[Feedback]] = None
        outcomes = store.ratings[rows]
        n = int(outcomes.size)
        self._ensure_capacity(n)
        self._buf[:n] = outcomes
        self._n = n
        self._n_good = int(outcomes.sum())
        self._last_t = float(store.times[rows[-1]]) if n else 0.0

    # ``_feedbacks`` is an attribute on the parent; here it's a lazy
    # property so every metadata path materializes transparently.
    @property  # type: ignore[override]
    def _feedbacks(self) -> List[Feedback]:
        if self._lazy_list is None:
            store = self._lazy_store
            rows = store.rows_for_server(self._lazy_code)
            self._lazy_list = [
                store.feedback_at(int(row)) for row in rows.tolist()
            ]
        return self._lazy_list

    @_feedbacks.setter
    def _feedbacks(self, value: List[Feedback]) -> None:
        # the parent __init__ assigns []; treat any explicit assignment
        # as materialized content
        self._lazy_list = list(value)

    def append_feedback(self, feedback: Feedback) -> None:
        if self._lazy_list is not None:
            super().append_feedback(feedback)
            return
        # un-materialized live append: the backend already stored the
        # row, so only the outcome and the ordering watermark move here
        if feedback.server != self._server:
            raise ValueError(
                f"feedback for server {feedback.server!r} appended to history "
                f"of {self._server!r}"
            )
        if self._n and feedback.time < self._last_t:
            raise ValueError("feedback times must be non-decreasing")
        if not self._has_feedbacks:
            raise ValueError(
                "cannot mix bare outcomes and feedback records in one history"
            )
        self._last_t = feedback.time
        self._push(feedback.outcome)

    def last_time(self) -> float:
        if self._lazy_list is None:
            return self._last_t if self._n else 0.0
        return super().last_time()

    def speculate_feedback(self, feedback: Feedback):
        # the speculated record lives only in this object, never in the
        # store — materialize first so the rollback pops the right item
        self._feedbacks  # noqa: B018 — forces materialization
        return super().speculate_feedback(feedback)


class ColumnarLedgerBackend:
    """In-memory columnar ledger backend (``backend="columnar"``).

    Implements the full ledger backend surface over a
    :class:`ColumnarStore`.  Per-event folds replicate the object
    backend exactly — the ``feedback.ledger.fold`` fault site fires
    before validation, ordering violations raise (or quarantine) with
    the same semantics — while :meth:`record_batch` ingests a whole
    :class:`FeedbackBatch` in one vectorized pass when nothing forces
    the per-event path (armed faults, an ordering violation in the
    batch, or live history objects that must observe each append).
    """

    name = "columnar"

    def __init__(self, quarantine: Optional[Quarantine] = None):
        self._store = ColumnarStore()
        self._quarantine = quarantine
        self._histories: Dict[EntityId, TransactionHistory] = {}

    @property
    def quarantine(self) -> Optional[Quarantine]:
        """The attached quarantine for un-foldable events, if any."""
        return self._quarantine

    @property
    def store(self) -> ColumnarStore:
        """The underlying columnar store (shared, live)."""
        return self._store

    def __len__(self) -> int:
        return len(self._store)

    # ------------------------------------------------------------------ #
    # folding

    def record(self, feedback: Feedback) -> bool:
        """Fold one feedback event; same contract as the object backend."""
        store = self._store
        server_code = store.server_table.lookup(feedback.server)
        try:
            if _res.armed:
                _res.inject(_FOLD_SITE)
            if server_code is not None:
                last = store.last_time(server_code)
                if last is not None and feedback.time < last:
                    raise ValueError("feedback times must be non-decreasing")
        except (ValueError, _res.InjectedFault) as exc:
            if self._quarantine is None:
                raise
            self._quarantine.add(feedback, site=_FOLD_SITE, reason=str(exc))
            return False
        if server_code is None:
            server_code = store.server_table.intern(feedback.server)
        client_code = store.client_table.intern(feedback.client)
        category_code = (
            binlog.CATEGORY_NONE
            if feedback.category is None
            else store.category_table.intern(feedback.category)
        )
        row = store.append_row(
            feedback.time,
            server_code,
            client_code,
            feedback.outcome,
            category_code,
            1 if feedback.authentic else 0,
        )
        history = self._histories.get(feedback.server)
        if history is not None:
            history.append_feedback(feedback)
        self._persist_row(row, feedback)
        return True

    def record_batch(self, batch: FeedbackBatch) -> Optional[int]:
        """Vectorized bulk fold; ``None`` defers to the per-event path.

        The fast path requires clean data (no ordering violations
        against the stored per-server last times or within the batch),
        no armed fault plan (per-event injection sequencing must match
        the object backend bit-for-bit), and no live histories
        materialized yet (those must observe every append one by one).
        """
        if _res.armed or self._histories or len(batch) == 0:
            return None
        store = self._store
        server_codes, new_servers = store.server_table.intern_many(batch.servers)
        times = batch.times
        order = np.argsort(server_codes, kind="stable")
        codes_sorted = server_codes[order]
        times_sorted = times[order]
        same = codes_sorted[1:] == codes_sorted[:-1]
        if np.any(same & (np.diff(times_sorted) < 0)):
            return None
        starts = np.concatenate([[0], np.nonzero(~same)[0] + 1])
        for pos in starts:
            last = store.last_time(int(codes_sorted[pos]))
            if last is not None and float(times_sorted[pos]) < last:
                return None
        client_codes, _ = store.client_table.intern_many(batch.clients)
        n = len(batch)
        if batch.categories is None:
            category_codes = np.full(n, binlog.CATEGORY_NONE, dtype=np.uint16)
        else:
            category_codes = np.array(
                [
                    binlog.CATEGORY_NONE
                    if cat is None
                    else store.category_table.intern(cat)
                    for cat in batch.categories
                ],
                dtype=np.uint16,
            )
        authentic = (
            np.ones(n, dtype=np.uint8)
            if batch.authentic is None
            else batch.authentic.astype(np.uint8)
        )
        start_row = store.append_columns(
            times,
            server_codes.astype(np.uint32),
            client_codes.astype(np.uint32),
            batch.ratings,
            category_codes,
            authentic,
        )
        self._persist_block(start_row, n, new_servers)
        return n

    # persistence hooks (the mmap backend overrides these)

    def _persist_row(self, row: int, feedback: Feedback) -> None:
        pass

    def _persist_block(self, start_row: int, n: int, new_servers: List[str]) -> None:
        pass

    # ------------------------------------------------------------------ #
    # queries

    def servers(self) -> Set[EntityId]:
        """All servers with at least one folded feedback."""
        store = self._store
        codes = np.unique(store.server_codes)
        return {store.server_table.value(int(code)) for code in codes}

    def clients(self) -> Set[EntityId]:
        """All clients that issued at least one folded feedback."""
        store = self._store
        codes = np.unique(store.client_codes)
        return {store.client_table.value(int(code)) for code in codes}

    def feedbacks_for_server(self, server: EntityId) -> List[Feedback]:
        """All feedbacks issued about ``server``, in time order."""
        code = self._store.server_table.lookup(server)
        if code is None:
            return []
        rows = self._store.rows_for_server(code)
        return [self._store.feedback_at(int(row)) for row in rows]

    def feedbacks_by_client(self, client: EntityId) -> List[Feedback]:
        """All feedbacks issued *by* ``client``, in time order."""
        store = self._store
        code = store.client_table.lookup(client)
        if code is None:
            return []
        rows = np.nonzero(store.client_codes == code)[0]
        return [store.feedback_at(int(row)) for row in rows]

    def history(self, server: EntityId) -> TransactionHistory:
        """The live :class:`TransactionHistory` of ``server``.

        The outcome buffer materializes from the columns in one
        vectorized gather; per-event :class:`Feedback` metadata stays in
        the store until first requested (:class:`_ColumnarHistory`).
        Once handed out the history is kept appended by every subsequent
        fold — the same live-object contract as the object backend.
        """
        history = self._histories.get(server)
        if history is not None:
            return history
        code = self._store.server_table.lookup(server)
        rows = (
            self._store.rows_for_server(code)
            if code is not None
            else np.empty(0, dtype=np.int64)
        )
        if code is None or rows.size == 0:
            raise KeyError(f"no feedback recorded for server {server!r}")
        history = _ColumnarHistory(server, self._store, code, rows)
        self._histories[server] = history
        return history

    def last_interaction(
        self, server: EntityId, client: EntityId
    ) -> Optional[Feedback]:
        """Most recent feedback from ``client`` about ``server``, if any."""
        store = self._store
        server_code = store.server_table.lookup(server)
        client_code = store.client_table.lookup(client)
        if server_code is None or client_code is None:
            return None
        row = store.last_row_for_pair(server_code, client_code)
        return None if row is None else store.feedback_at(row)

    def interaction_counts(self, server: EntityId) -> Dict[EntityId, int]:
        """Number of feedbacks per issuing client for ``server``."""
        store = self._store
        code = store.server_table.lookup(server)
        if code is None:
            return {}
        rows = store.rows_for_server(code)
        counts: Dict[EntityId, int] = defaultdict(int)
        for cli_code in store.client_codes[rows]:
            counts[store.client_table.value(int(cli_code))] += 1
        return dict(counts)

    def feedback_graph(self) -> Dict[Tuple[EntityId, EntityId], Tuple[int, int]]:
        """``(client, server) -> (n_positive, n_negative)``, vectorized.

        Edge iteration order matches the object backend byte-for-byte:
        first appearance of each ``(client, server)`` pair in the fold
        stream.
        """
        store = self._store
        n = len(store)
        if n == 0:
            return {}
        combined = (
            store.client_codes.astype(np.int64) << 32
        ) | store.server_codes.astype(np.int64)
        uniq, first_idx, inverse = np.unique(
            combined, return_index=True, return_inverse=True
        )
        pos = np.bincount(inverse, weights=store.ratings.astype(np.float64))
        totals = np.bincount(inverse)
        neg = totals - pos
        edges: Dict[Tuple[EntityId, EntityId], Tuple[int, int]] = {}
        for u in np.argsort(first_idx, kind="stable"):
            key = int(uniq[u])
            pair = (
                store.client_table.value(key >> 32),
                store.server_table.value(key & 0xFFFFFFFF),
            )
            edges[pair] = (int(pos[u]), int(neg[u]))
        return edges


class MmapLedgerBackend(ColumnarLedgerBackend):
    """Columnar backend persisted to the binary ledger file (``"mmap"``).

    Opening an existing path memory-maps and loads its record region
    (applying truncated-tail recovery), then every fold appends the
    fixed-width record — ids first, records second, per the
    :mod:`~repro.feedback.binlog` crash-safety protocol.
    """

    name = "mmap"

    def __init__(self, quarantine: Optional[Quarantine] = None, path: Optional[str] = None):
        if path is None:
            raise ValueError("backend='mmap' requires path= (the ledger file)")
        super().__init__(quarantine)
        import os

        store = self._store
        n_loaded = 0
        if os.path.exists(path) and os.path.getsize(path) > 0:
            data = binlog.load_binary_ledger(path, recover=True)
            store.server_table = StringTable(data.servers)
            store.client_table = StringTable(data.clients)
            store.category_table = StringTable(data.categories)
            records = data.records
            n_loaded = int(records.size)
            if n_loaded:
                store.append_columns(
                    records["time"].astype(np.float64),
                    records["server"],
                    records["client"],
                    records["rating"],
                    records["category"],
                    records["authentic"],
                )
        self._writer = binlog.BinaryLedgerWriter(path, truncate_to=n_loaded)
        # ids already in the file must not be re-appended on the next sync
        self._synced_counts: Dict[str, int] = {
            "servers": len(store.server_table),
            "clients": len(store.client_table),
            "categories": len(store.category_table),
        }

    @property
    def path(self) -> str:
        """The backing binary ledger file."""
        return self._writer.path

    def _persist_row(self, row: int, feedback: Feedback) -> None:
        store = self._store
        writer = self._writer
        # flush any ids this fold interned before the record referencing
        # them — the ordering the crash recovery depends on
        self._sync_ids()
        writer.append_records(
            binlog.pack_records(
                np.asarray([feedback.time], dtype=np.float64),
                store.server_codes[row : row + 1],
                store.client_codes[row : row + 1],
                store.ratings[row : row + 1],
                store.authentic[row : row + 1],
                store.category_codes[row : row + 1],
            )
        )

    def _persist_block(self, start_row: int, n: int, new_servers: List[str]) -> None:
        store = self._store
        self._sync_ids()
        end = start_row + n
        self._writer.append_records(
            binlog.pack_records(
                store.times[start_row:end],
                store.server_codes[start_row:end],
                store.client_codes[start_row:end],
                store.ratings[start_row:end],
                store.authentic[start_row:end],
                store.category_codes[start_row:end],
            )
        )

    def _sync_ids(self) -> None:
        for kind, table in (
            ("servers", self._store.server_table),
            ("clients", self._store.client_table),
            ("categories", self._store.category_table),
        ):
            synced = self._synced_counts[kind]
            if len(table) > synced:
                self._writer.append_ids(kind, table.values()[synced:])
                self._synced_counts[kind] = len(table)

    def flush(self) -> None:
        """Flush the backing file handles."""
        self._writer.flush()

    def close(self) -> None:
        """Flush and close the backing file (the backend stays queryable)."""
        self._writer.close()


# register with the facade's backend registry (imported lazily from
# ledger.py on the first unknown-name lookup)
from .ledger import register_ledger_backend  # noqa: E402

register_ledger_backend("columnar", ColumnarLedgerBackend)
register_ledger_backend("mmap", MmapLedgerBackend)
