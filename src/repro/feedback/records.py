"""Feedback and transaction records.

The paper's abstract reputation model (Sec. 2): entities interact through
uni-directional transactions between a server and a client; after each
transaction the client issues a feedback ``(t, s, c, r)`` with ``t`` the
time, ``s`` the server, ``c`` the client and ``r`` the rating.  Binary
ratings are the paper's default; a categorical rating value is provided
for the multinomial extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Optional

__all__ = ["Rating", "Feedback", "EntityId", "GOOD", "BAD"]

EntityId = str


class Rating(IntEnum):
    """Binary feedback rating.

    Integer-valued so a sequence of ratings doubles as the 0/1 outcome
    vector the statistical model consumes (1 = good transaction).
    """

    NEGATIVE = 0
    POSITIVE = 1

    @property
    def is_good(self) -> bool:
        return self is Rating.POSITIVE

    @classmethod
    def from_outcome(cls, outcome: int) -> "Rating":
        if outcome not in (0, 1):
            raise ValueError(f"binary outcome must be 0 or 1, got {outcome!r}")
        return cls.POSITIVE if outcome else cls.NEGATIVE


GOOD = Rating.POSITIVE
BAD = Rating.NEGATIVE


@dataclass(frozen=True, order=True)
class Feedback:
    """A single feedback tuple ``(t, s, c, r)``.

    ``time`` is a logical timestamp (simulation step or epoch seconds);
    ordering is by time first, which matches how histories are stored.
    ``category`` optionally tags the transaction for per-category testing
    (Sec. 4's North-America/Africa example); ``authentic`` records ground
    truth in simulations — ``False`` marks a colluder-fabricated feedback,
    information the *defender never sees* but metrics and tests use.
    """

    time: float
    server: EntityId = field(compare=False)
    client: EntityId = field(compare=False)
    rating: Rating = field(compare=False)
    category: Optional[str] = field(default=None, compare=False)
    authentic: bool = field(default=True, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.rating, Rating):
            raise TypeError(f"rating must be a Rating, got {type(self.rating).__name__}")
        if not self.server:
            raise ValueError("server id must be non-empty")
        if not self.client:
            raise ValueError("client id must be non-empty")

    @property
    def outcome(self) -> int:
        """1 for a good transaction, 0 for a bad one."""
        return int(self.rating)

    def replace_rating(self, rating: Rating) -> "Feedback":
        """A copy of this feedback with a different rating."""
        return Feedback(
            time=self.time,
            server=self.server,
            client=self.client,
            rating=rating,
            category=self.category,
            authentic=self.authentic,
        )
