"""Transaction history of a single server.

A :class:`TransactionHistory` is the object the behavior tests and trust
functions consume: an append-only, time-ordered sequence of binary
outcomes, optionally carrying the full :class:`~repro.feedback.records.Feedback`
metadata (needed by the collusion-resilient reordering, which groups by
feedback issuer).

Design notes
------------
* Outcomes live in a growable numpy ``int8`` buffer with amortized O(1)
  append, because the strategic attacker appends one transaction per
  simulated step and histories reach the hundreds of thousands in the
  Fig. 9 performance experiment.
* :meth:`speculate` supports the attacker's look-ahead ("assume the next
  transaction is bad, would I still pass?") without copying the history.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from .records import EntityId, Feedback, Rating
from .windows import window_counts

__all__ = ["TransactionHistory"]

_INITIAL_CAPACITY = 64


class TransactionHistory:
    """Append-only, time-ordered transaction outcomes of one server."""

    def __init__(self, server: EntityId = "server"):
        if not server:
            raise ValueError("server id must be non-empty")
        self._server = server
        self._buf = np.zeros(_INITIAL_CAPACITY, dtype=np.int8)
        self._n = 0
        self._n_good = 0
        self._feedbacks: List[Feedback] = []
        self._has_feedbacks = True  # stays True only while every append carried one

    # ------------------------------------------------------------------ #
    # constructors

    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence[int], server: EntityId = "server"
    ) -> "TransactionHistory":
        """Build a history from a bare 0/1 outcome sequence.

        The resulting history carries no feedback metadata, so the
        collusion-resilient tests (which need issuer identities) refuse it.
        """
        history = cls(server)
        arr = np.asarray(outcomes, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError("outcomes must be 1-D")
        if arr.size and not np.isin(arr, (0, 1)).all():
            raise ValueError("outcomes must be binary (0/1)")
        history._ensure_capacity(arr.size)
        history._buf[: arr.size] = arr
        history._n = int(arr.size)
        history._n_good = int(arr.sum())
        history._has_feedbacks = False
        return history

    @classmethod
    def from_feedbacks(cls, feedbacks: Iterable[Feedback]) -> "TransactionHistory":
        """Build a history from feedback records (sorted by time)."""
        ordered = sorted(feedbacks, key=lambda f: f.time)
        if not ordered:
            raise ValueError("need at least one feedback")
        servers = {f.server for f in ordered}
        if len(servers) != 1:
            raise ValueError(f"feedbacks span multiple servers: {sorted(servers)}")
        history = cls(ordered[0].server)
        for fb in ordered:
            history.append_feedback(fb)
        return history

    # ------------------------------------------------------------------ #
    # core accessors

    @property
    def server(self) -> EntityId:
        return self._server

    def __len__(self) -> int:
        return self._n

    @property
    def n_good(self) -> int:
        """Total number of good transactions."""
        return self._n_good

    @property
    def n_bad(self) -> int:
        return self._n - self._n_good

    @property
    def p_hat(self) -> float:
        """Fraction of good transactions — the paper's ``p_hat`` over all of H."""
        if self._n == 0:
            raise ValueError("p_hat undefined on an empty history")
        return self._n_good / self._n

    @property
    def has_feedback_metadata(self) -> bool:
        """True when every transaction carries a full feedback record."""
        return self._has_feedbacks and self._n > 0

    def outcomes(self) -> np.ndarray:
        """Read-only 0/1 outcome vector, oldest first."""
        view = self._buf[: self._n]
        view.flags.writeable = False
        return view

    def feedbacks(self) -> List[Feedback]:
        """The feedback records, oldest first (copy of the list)."""
        if not self.has_feedback_metadata:
            raise ValueError(
                "history was built from bare outcomes and has no feedback metadata"
            )
        return list(self._feedbacks)

    def last_time(self) -> float:
        """Timestamp of the most recent feedback (0.0 for bare histories)."""
        if self._has_feedbacks and self._feedbacks:
            return self._feedbacks[-1].time
        return 0.0

    # ------------------------------------------------------------------ #
    # mutation

    def append_outcome(self, outcome: int) -> None:
        """Append a bare 0/1 outcome (drops feedback-metadata capability)."""
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        self._has_feedbacks = False
        self._push(outcome)

    def append_feedback(self, feedback: Feedback) -> None:
        """Append a feedback record; time must be non-decreasing."""
        if feedback.server != self._server:
            raise ValueError(
                f"feedback for server {feedback.server!r} appended to history "
                f"of {self._server!r}"
            )
        if self._feedbacks and feedback.time < self._feedbacks[-1].time:
            raise ValueError("feedback times must be non-decreasing")
        if not self._has_feedbacks:
            raise ValueError(
                "cannot mix bare outcomes and feedback records in one history"
            )
        self._feedbacks.append(feedback)
        self._push(feedback.outcome)

    @contextmanager
    def speculate(self, outcome: int) -> Iterator["TransactionHistory"]:
        """Temporarily append ``outcome`` for what-if evaluation.

        Used by the strategic attacker: ``with history.speculate(0) as h:``
        evaluates the behavior test on the history *as if* the next
        transaction were bad, then rolls back.  No copies are made.
        """
        if outcome not in (0, 1):
            raise ValueError(f"outcome must be 0 or 1, got {outcome!r}")
        had_feedbacks = self._has_feedbacks
        self._has_feedbacks = False
        self._push(outcome)
        try:
            yield self
        finally:
            self._n -= 1
            self._n_good -= int(outcome)
            self._has_feedbacks = had_feedbacks

    @contextmanager
    def speculate_feedback(self, feedback: Feedback) -> Iterator["TransactionHistory"]:
        """Temporarily append a full feedback record for what-if evaluation.

        The collusion-aware strategic attacker needs look-ahead with
        issuer identities intact (the collusion-resilient test groups by
        client), so the bare-outcome :meth:`speculate` is not enough here.
        """
        self.append_feedback(feedback)
        try:
            yield self
        finally:
            popped = self._feedbacks.pop()
            self._n -= 1
            self._n_good -= popped.outcome

    # ------------------------------------------------------------------ #
    # derived views

    def suffix_outcomes(self, length: int) -> np.ndarray:
        """The most recent ``length`` outcomes (the whole history if larger)."""
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        start = max(self._n - length, 0)
        view = self._buf[start : self._n]
        view.flags.writeable = False
        return view

    def suffix_feedbacks(self, length: int) -> List[Feedback]:
        """The most recent ``length`` feedback records."""
        if not self.has_feedback_metadata:
            raise ValueError("history has no feedback metadata")
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        return self._feedbacks[max(self._n - length, 0) :]

    def window_counts(self, m: int, *, align: str = "recent") -> np.ndarray:
        """Per-window good counts ``G_i`` (see :mod:`repro.feedback.windows`)."""
        return window_counts(self.outcomes(), m, align=align)

    def group_by_client(self) -> Dict[EntityId, List[Feedback]]:
        """Feedbacks grouped by issuing client, time order inside a group."""
        if not self.has_feedback_metadata:
            raise ValueError("history has no feedback metadata")
        groups: Dict[EntityId, List[Feedback]] = {}
        for fb in self._feedbacks:
            groups.setdefault(fb.client, []).append(fb)
        return groups

    def supporter_base(self) -> set:
        """Clients that have issued at least one positive feedback (Sec. 4)."""
        if not self.has_feedback_metadata:
            raise ValueError("history has no feedback metadata")
        return {fb.client for fb in self._feedbacks if fb.rating is Rating.POSITIVE}

    def copy(self) -> "TransactionHistory":
        """Deep-enough copy (records are immutable, so the list is shallow)."""
        clone = TransactionHistory(self._server)
        clone._ensure_capacity(self._n)
        clone._buf[: self._n] = self._buf[: self._n]
        clone._n = self._n
        clone._n_good = self._n_good
        clone._feedbacks = list(self._feedbacks)
        clone._has_feedbacks = self._has_feedbacks
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionHistory(server={self._server!r}, n={self._n}, "
            f"n_good={self._n_good})"
        )

    # ------------------------------------------------------------------ #
    # internals

    def _push(self, outcome: int) -> None:
        self._ensure_capacity(self._n + 1)
        self._buf[self._n] = outcome
        self._n += 1
        self._n_good += int(outcome)

    def _ensure_capacity(self, needed: int) -> None:
        if needed <= self._buf.size:
            return
        new_size = max(self._buf.size * 2, needed)
        grown = np.zeros(new_size, dtype=np.int8)
        grown[: self._n] = self._buf[: self._n]
        self._buf = grown
