"""System-wide feedback ledger.

The paper assumes "all the transaction feedbacks are available for trust
assessment (e.g., through a central server as in online auction
communities, or through special data organization schemes in P2P
systems)".  :class:`FeedbackLedger` plays that role: a logically
centralized, append-only store indexed by server and by client, from
which per-server :class:`TransactionHistory` objects and the feedback
graph (used by the EigenTrust baseline) are derived.

The ledger is now a *facade* over pluggable storage backends, selected
by name through a registry:

* ``"memory"`` (default) — the original per-object store, one Python
  ``Feedback`` at a time;
* ``"columnar"`` — structure-of-arrays numpy columns
  (:mod:`repro.feedback.store`), with a vectorized bulk-ingest path;
* ``"mmap"`` — columnar plus the append-only binary ledger file
  (:mod:`repro.feedback.binlog`), recovered on open.

All backends keep identical query semantics — ``history()`` returns the
same live object, ``feedback_graph()`` the same dict byte-for-byte,
``subscribe()`` fires per folded record — enforced by the shared
conformance suite in ``tests/feedback/test_ledger_backends.py``.
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..resilience import runtime as _res
from ..resilience.quarantine import Quarantine
from .history import TransactionHistory
from .records import EntityId, Feedback, Rating

__all__ = [
    "FeedbackLedger",
    "MemoryLedgerBackend",
    "register_ledger_backend",
    "make_ledger_backend",
    "available_ledger_backends",
]

_FOLD_SITE = "feedback.ledger.fold"

#: backend name -> factory(**options) -> backend instance
_LEDGER_BACKENDS: Dict[str, Callable[..., object]] = {}


def register_ledger_backend(name: str, factory: Callable[..., object]) -> None:
    """Register a ledger storage backend under ``name``.

    ``factory(**options)`` must return an object implementing the
    backend surface (``record``, ``history``, ``feedback_graph``, the
    query methods — see :class:`MemoryLedgerBackend` for the reference
    implementation).  Re-registering a name replaces the old factory.
    """
    _LEDGER_BACKENDS[name] = factory


def make_ledger_backend(name: str, **options) -> object:
    """Instantiate the backend registered under ``name``.

    The columnar backends live in :mod:`repro.feedback.store`, imported
    lazily on the first miss so the registry never forces numpy-heavy
    modules on users of the plain object path.
    """
    factory = _LEDGER_BACKENDS.get(name)
    if factory is None and name not in _LEDGER_BACKENDS:
        from . import store as _store  # noqa: F401  (registers its backends)

        factory = _LEDGER_BACKENDS.get(name)
    if factory is None:
        known = ", ".join(sorted(_LEDGER_BACKENDS))
        raise ValueError(f"unknown ledger backend {name!r}; registered: {known}")
    return factory(**options)


def available_ledger_backends() -> List[str]:
    """Names of every registered ledger backend, sorted."""
    from . import store as _store  # noqa: F401  (ensure built-ins registered)

    return sorted(_LEDGER_BACKENDS)


class MemoryLedgerBackend:
    """The original per-object ledger storage (``backend="memory"``).

    Folds one Python :class:`Feedback` at a time into per-server
    :class:`TransactionHistory` objects plus by-server/by-client lists,
    and maintains a ``(server, client) -> last feedback`` index so
    :meth:`last_interaction` is O(1) instead of a reverse scan.
    """

    name = "memory"

    def __init__(self, quarantine: Optional[Quarantine] = None):
        self._all: List[Feedback] = []
        self._by_server: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._by_client: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._histories: Dict[EntityId, TransactionHistory] = {}
        self._pair_last: Dict[Tuple[EntityId, EntityId], Feedback] = {}
        self._quarantine = quarantine

    @property
    def quarantine(self) -> Optional[Quarantine]:
        """The attached quarantine for un-foldable events, if any."""
        return self._quarantine

    def __len__(self) -> int:
        return len(self._all)

    def record(self, feedback: Feedback) -> bool:
        """Fold one feedback; ``False`` means it was quarantined."""
        history = self._histories.get(feedback.server)
        fresh = history is None
        if fresh:
            history = TransactionHistory(feedback.server)
        try:
            if _res.armed:
                _res.inject(_FOLD_SITE)
            history.append_feedback(feedback)  # validates ordering & server id
        except (ValueError, _res.InjectedFault) as exc:
            if self._quarantine is None:
                raise
            self._quarantine.add(feedback, site=_FOLD_SITE, reason=str(exc))
            return False
        if fresh:
            self._histories[feedback.server] = history
        self._all.append(feedback)
        self._by_server[feedback.server].append(feedback)
        self._by_client[feedback.client].append(feedback)
        # quarantined events never reach this line, so the index only
        # ever sees folded records — matching the query's contract
        self._pair_last[(feedback.server, feedback.client)] = feedback
        return True

    def reset_server(self, server: EntityId, feedbacks: List[Feedback]) -> int:
        """Replace every record for ``server`` with a reconciled stream.

        The anti-entropy/read-repair entry point: a replica whose copy of
        one server's history diverged installs the merged, time-ordered
        stream in one shot.  Every index (by-server, by-client, pair
        cache, the global event list, and the live history) is rebuilt
        for that server; other servers are untouched.  Returns how many
        events were installed.  An empty ``feedbacks`` removes the server
        entirely.
        """
        had = server in self._by_server
        if had:
            self._all = [fb for fb in self._all if fb.server != server]
            for client_events in self._by_client.values():
                client_events[:] = [fb for fb in client_events if fb.server != server]
            for pair in [p for p in self._pair_last if p[0] == server]:
                del self._pair_last[pair]
            del self._by_server[server]
            self._histories.pop(server, None)
        installed = 0
        for fb in feedbacks:
            if fb.server != server:
                raise ValueError(
                    f"reset_server({server!r}) got feedback for {fb.server!r}"
                )
            if self.record(fb):
                installed += 1
        return installed

    # ------------------------------------------------------------------ #
    # queries

    def servers(self) -> Set[EntityId]:
        """All servers with at least one folded feedback."""
        return set(self._by_server)

    def clients(self) -> Set[EntityId]:
        """All clients that issued at least one folded feedback."""
        return set(self._by_client)

    def feedbacks_for_server(self, server: EntityId) -> List[Feedback]:
        """All feedbacks issued about ``server``, in time order."""
        return list(self._by_server.get(server, ()))

    def feedbacks_by_client(self, client: EntityId) -> List[Feedback]:
        """All feedbacks issued *by* ``client``, in time order."""
        return list(self._by_client.get(client, ()))

    def history(self, server: EntityId) -> TransactionHistory:
        """The live :class:`TransactionHistory` of ``server``."""
        try:
            return self._histories[server]
        except KeyError:
            raise KeyError(f"no feedback recorded for server {server!r}") from None

    def last_interaction(
        self, server: EntityId, client: EntityId
    ) -> Optional[Feedback]:
        """Most recent feedback from ``client`` about ``server``, if any."""
        return self._pair_last.get((server, client))

    def interaction_counts(self, server: EntityId) -> Dict[EntityId, int]:
        """Number of feedbacks per issuing client for ``server``."""
        counts: Dict[EntityId, int] = defaultdict(int)
        for fb in self._by_server.get(server, ()):
            counts[fb.client] += 1
        return dict(counts)

    def feedback_graph(self) -> Dict[Tuple[EntityId, EntityId], Tuple[int, int]]:
        """Aggregate ``(client, server) -> (n_positive, n_negative)`` edges."""
        edges: Dict[Tuple[EntityId, EntityId], List[int]] = defaultdict(lambda: [0, 0])
        for fb in self._all:
            cell = edges[(fb.client, fb.server)]
            if fb.rating is Rating.POSITIVE:
                cell[0] += 1
            else:
                cell[1] += 1
        return {pair: (pos, neg) for pair, (pos, neg) in edges.items()}


register_ledger_backend("memory", MemoryLedgerBackend)


class FeedbackLedger:
    """Append-only store of every feedback issued in the system.

    A facade over a named storage backend::

        FeedbackLedger()                      # in-memory object store
        FeedbackLedger(backend="columnar")    # structure-of-arrays numpy
        FeedbackLedger(backend="mmap", path="run.ledger")  # + binary file

    ``quarantine`` (optional) changes what an un-foldable event does:
    without one, :meth:`record` raises on the first bad feedback (a
    time-ordering violation, an injected fold fault) and the stream
    aborts; with one, the offending record is quarantined with a
    structured event and the stream keeps flowing — the behavior a
    production ingest path needs.  Extra keyword ``options`` are passed
    to the backend factory.

    Passing the quarantine *positionally* (the pre-registry signature)
    is deprecated: it still works, but emits a :class:`DeprecationWarning`.
    """

    def __init__(
        self,
        *args,
        backend: str = "memory",
        quarantine: Optional[Quarantine] = None,
        **options,
    ) -> None:
        if args:
            if len(args) > 1:
                raise TypeError(
                    f"FeedbackLedger() takes at most 1 positional argument "
                    f"({len(args)} given)"
                )
            warnings.warn(
                "passing quarantine positionally to FeedbackLedger() is "
                "deprecated; use FeedbackLedger(quarantine=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if quarantine is not None:
                raise TypeError(
                    "quarantine passed both positionally and as a keyword"
                )
            quarantine = args[0]
        self._backend = make_ledger_backend(
            backend, quarantine=quarantine, **options
        )
        self._subscribers: List[Callable[[Feedback], None]] = []

    @property
    def backend(self):
        """The storage backend instance behind this ledger."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """The registry name of the active backend."""
        return self._backend.name

    @property
    def quarantine(self) -> Optional[Quarantine]:
        """The attached quarantine for un-foldable events, if any."""
        return self._backend.quarantine

    def __len__(self) -> int:
        return len(self._backend)

    def subscribe(self, callback) -> None:
        """Call ``callback(feedback)`` after every successful :meth:`record`.

        The hook lets downstream consumers (the serving engine's
        per-server incremental states, monitoring) track the ledger
        without polling.  Callbacks run synchronously in record order; a
        raising callback propagates to the recorder.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously subscribed callback (ValueError if absent)."""
        self._subscribers.remove(callback)

    def record(self, feedback: Feedback) -> bool:
        """Append one feedback; times per server must be non-decreasing.

        Returns ``True`` when the feedback was folded, ``False`` when it
        was quarantined (only possible with a quarantine attached).
        """
        folded = self._backend.record(feedback)
        if folded:
            for callback in self._subscribers:
                callback(feedback)
        return folded

    def record_many(self, feedbacks: Iterable[Feedback]) -> int:
        """Append a batch of feedback records in order.

        Returns how many were folded (quarantined records don't count).
        """
        recorded = 0
        for fb in feedbacks:
            if self.record(fb):
                recorded += 1
        return recorded

    def record_batch(self, batch) -> int:
        """Bulk-ingest a :class:`~repro.feedback.store.FeedbackBatch`.

        Columnar backends fold the whole batch in one vectorized pass
        when nothing demands per-event sequencing (no subscribers, no
        armed fault plan, clean ordering); otherwise — and always on the
        object backend — this degrades to the per-event path with
        identical semantics.  Returns how many events were folded.
        """
        if not self._subscribers:
            bulk = getattr(self._backend, "record_batch", None)
            if bulk is not None:
                folded = bulk(batch)
                if folded is not None:
                    return folded
        recorded = 0
        for fb in batch.iter_feedbacks():
            if self.record(fb):
                recorded += 1
        return recorded

    def reset_server(self, server: EntityId, feedbacks: Iterable[Feedback]) -> int:
        """Replace every record for ``server`` with a reconciled stream.

        Only backends with rebuildable per-server indexes support this
        (currently ``memory``); others raise :class:`NotImplementedError`.
        Subscribers are *not* notified — a reset is a repair of existing
        state, not new feedback — so serving layers that cache per-server
        state must re-register the rebuilt history themselves (see
        :meth:`repro.serve.AssessmentService.replace_server`).
        """
        reset = getattr(self._backend, "reset_server", None)
        if reset is None:
            raise NotImplementedError(
                f"ledger backend {self.backend_name!r} does not support "
                "reset_server"
            )
        return reset(server, list(feedbacks))

    # ------------------------------------------------------------------ #
    # queries (delegated to the backend)

    def servers(self) -> Set[EntityId]:
        """All servers with at least one folded feedback."""
        return self._backend.servers()

    def clients(self) -> Set[EntityId]:
        """All clients that issued at least one folded feedback."""
        return self._backend.clients()

    def feedbacks_for_server(self, server: EntityId) -> List[Feedback]:
        """All feedbacks issued about ``server``, in time order."""
        return self._backend.feedbacks_for_server(server)

    def feedbacks_by_client(self, client: EntityId) -> List[Feedback]:
        """All feedbacks issued *by* ``client``, in time order."""
        return self._backend.feedbacks_by_client(client)

    def history(self, server: EntityId) -> TransactionHistory:
        """The live :class:`TransactionHistory` of ``server``.

        The returned object is the ledger's own history (not a copy):
        trust assessment reads it in place, which is how a central
        reputation server would serve queries.
        """
        return self._backend.history(server)

    def last_interaction(
        self, server: EntityId, client: EntityId
    ) -> Optional[Feedback]:
        """Most recent feedback from ``client`` about ``server``, if any."""
        return self._backend.last_interaction(server, client)

    def interaction_counts(self, server: EntityId) -> Dict[EntityId, int]:
        """Number of feedbacks per issuing client for ``server``."""
        return self._backend.interaction_counts(server)

    def feedback_graph(self) -> Dict[Tuple[EntityId, EntityId], Tuple[int, int]]:
        """Aggregate ``(client, server) -> (n_positive, n_negative)`` edges.

        This is the local-trust matrix input of graph-based reputation
        schemes such as EigenTrust.
        """
        return self._backend.feedback_graph()

    # ------------------------------------------------------------------ #
    # persistence lifecycle (no-ops on non-persistent backends)

    def flush(self) -> None:
        """Force any buffered writes to durable storage (``"mmap"``)."""
        flush = getattr(self._backend, "flush", None)
        if flush is not None:
            flush()

    def close(self) -> None:
        """Flush and release backend resources (file handles, maps)."""
        close = getattr(self._backend, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "FeedbackLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
