"""System-wide feedback ledger.

The paper assumes "all the transaction feedbacks are available for trust
assessment (e.g., through a central server as in online auction
communities, or through special data organization schemes in P2P
systems)".  :class:`FeedbackLedger` plays that role for the simulation:
a logically centralized, append-only store indexed by server and by
client, from which per-server :class:`TransactionHistory` objects and the
feedback graph (used by the EigenTrust baseline) are derived.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..resilience import runtime as _res
from ..resilience.quarantine import Quarantine
from .history import TransactionHistory
from .records import EntityId, Feedback, Rating

__all__ = ["FeedbackLedger"]


class FeedbackLedger:
    """Append-only store of every feedback issued in the system.

    ``quarantine`` (optional) changes what an un-foldable event does:
    without one, :meth:`record` raises on the first bad feedback (a
    time-ordering violation, an injected fold fault) and the stream
    aborts; with one, the offending record is quarantined with a
    structured event and the stream keeps flowing — the behavior a
    production ingest path needs.
    """

    def __init__(self, quarantine: Optional[Quarantine] = None) -> None:
        self._all: List[Feedback] = []
        self._by_server: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._by_client: Dict[EntityId, List[Feedback]] = defaultdict(list)
        self._histories: Dict[EntityId, TransactionHistory] = {}
        self._subscribers: List = []
        self._quarantine = quarantine

    @property
    def quarantine(self) -> Optional[Quarantine]:
        """The attached quarantine for un-foldable events, if any."""
        return self._quarantine

    def __len__(self) -> int:
        return len(self._all)

    def subscribe(self, callback) -> None:
        """Call ``callback(feedback)`` after every successful :meth:`record`.

        The hook lets downstream consumers (the serving engine's
        per-server incremental states, monitoring) track the ledger
        without polling.  Callbacks run synchronously in record order; a
        raising callback propagates to the recorder.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously subscribed callback (ValueError if absent)."""
        self._subscribers.remove(callback)

    def record(self, feedback: Feedback) -> bool:
        """Append one feedback; times per server must be non-decreasing.

        Returns ``True`` when the feedback was folded, ``False`` when it
        was quarantined (only possible with a quarantine attached).
        """
        history = self._histories.get(feedback.server)
        fresh = history is None
        if fresh:
            history = TransactionHistory(feedback.server)
        try:
            if _res.armed:
                _res.inject("feedback.ledger.fold")
            history.append_feedback(feedback)  # validates ordering & server id
        except (ValueError, _res.InjectedFault) as exc:
            if self._quarantine is None:
                raise
            self._quarantine.add(
                feedback, site="feedback.ledger.fold", reason=str(exc)
            )
            return False
        if fresh:
            self._histories[feedback.server] = history
        self._all.append(feedback)
        self._by_server[feedback.server].append(feedback)
        self._by_client[feedback.client].append(feedback)
        for callback in self._subscribers:
            callback(feedback)
        return True

    def record_many(self, feedbacks: Iterable[Feedback]) -> int:
        """Append a batch of feedback records in order.

        Returns how many were folded (quarantined records don't count).
        """
        recorded = 0
        for fb in feedbacks:
            if self.record(fb):
                recorded += 1
        return recorded

    # ------------------------------------------------------------------ #
    # queries

    def servers(self) -> Set[EntityId]:
        """All servers with at least one feedback."""
        return set(self._by_server)

    def clients(self) -> Set[EntityId]:
        """All clients that issued at least one feedback."""
        return set(self._by_client)

    def feedbacks_for_server(self, server: EntityId) -> List[Feedback]:
        """All feedbacks issued about ``server``, in time order."""
        return list(self._by_server.get(server, ()))

    def feedbacks_by_client(self, client: EntityId) -> List[Feedback]:
        """All feedbacks issued *by* ``client``, in time order."""
        return list(self._by_client.get(client, ()))

    def history(self, server: EntityId) -> TransactionHistory:
        """The live :class:`TransactionHistory` of ``server``.

        The returned object is the ledger's own history (not a copy):
        trust assessment reads it in place, which is how a central
        reputation server would serve queries.
        """
        try:
            return self._histories[server]
        except KeyError:
            raise KeyError(f"no feedback recorded for server {server!r}") from None

    def last_interaction(
        self, server: EntityId, client: EntityId
    ) -> Optional[Feedback]:
        """Most recent feedback from ``client`` about ``server``, if any."""
        for fb in reversed(self._by_server.get(server, ())):
            if fb.client == client:
                return fb
        return None

    def interaction_counts(self, server: EntityId) -> Dict[EntityId, int]:
        """Number of feedbacks per issuing client for ``server``."""
        counts: Dict[EntityId, int] = defaultdict(int)
        for fb in self._by_server.get(server, ()):
            counts[fb.client] += 1
        return dict(counts)

    def feedback_graph(self) -> Dict[Tuple[EntityId, EntityId], Tuple[int, int]]:
        """Aggregate ``(client, server) -> (n_positive, n_negative)`` edges.

        This is the local-trust matrix input of graph-based reputation
        schemes such as EigenTrust.
        """
        edges: Dict[Tuple[EntityId, EntityId], List[int]] = defaultdict(lambda: [0, 0])
        for fb in self._all:
            cell = edges[(fb.client, fb.server)]
            if fb.rating is Rating.POSITIVE:
                cell[0] += 1
            else:
                cell[1] += 1
        return {pair: (pos, neg) for pair, (pos, neg) in edges.items()}
