"""Feedback serialization: CSV and JSON-lines.

Real deployments have feedback in flat files long before they have a
reputation service; these readers/writers make the library usable on
such data (and feed the ``repro-assess`` CLI).  Formats:

* **CSV** with header ``time,server,client,rating[,category][,authentic]``;
  ``rating`` accepts ``1/0``, ``positive/negative``, ``pos/neg``,
  ``good/bad``, ``+/-`` (case-insensitive).
* **JSONL**: one object per line with the same fields.

Both readers validate eagerly and report the offending line number —
silent row-skipping turns data bugs into wrong trust decisions.  That
strictness is the default; production streams that must survive one bad
row opt into ``errors="collect"`` (bad rows returned as structured
:class:`RowError` objects on the result) or ``errors="skip"`` (bad rows
dropped with a summary warning).  In both lenient modes the good rows
still load, so a single malformed line no longer aborts the file.
"""

from __future__ import annotations

import csv
import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Union

from ..resilience import runtime as _res
from .records import Feedback, Rating

# Module-level logger per library etiquette: never the root logger; the
# application (or repro.obs.configure_logging) decides about handlers.
_log = logging.getLogger(__name__)

__all__ = [
    "RowError",
    "ReadResult",
    "read_feedback_csv",
    "write_feedback_csv",
    "read_feedback_jsonl",
    "write_feedback_jsonl",
    "parse_rating",
]

PathLike = Union[str, Path]

_POSITIVE_TOKENS = {"1", "positive", "pos", "good", "+", "true"}
_NEGATIVE_TOKENS = {"0", "negative", "neg", "bad", "-", "false"}
_REQUIRED_FIELDS = ("time", "server", "client", "rating")
_ERROR_MODES = ("strict", "collect", "skip")


@dataclass(frozen=True)
class RowError:
    """One unparseable row: where it was and why it failed."""

    line: int
    message: str
    raw: object = None


class ReadResult(List[Feedback]):
    """The parsed feedbacks, plus any collected row errors.

    A ``list`` subclass so every existing caller (and the strict mode)
    keeps working unchanged; lenient readers attach the rows they could
    not parse as :attr:`errors`.
    """

    def __init__(self, feedbacks: Iterable[Feedback] = (), errors: Optional[List[RowError]] = None):
        super().__init__(feedbacks)
        self.errors: List[RowError] = list(errors or ())


class _RowSink:
    """Shared row-error handling for the two readers."""

    def __init__(self, mode: str, path: PathLike):
        if mode not in _ERROR_MODES:
            raise ValueError(
                f"errors must be one of {_ERROR_MODES}, got {mode!r}"
            )
        self.mode = mode
        self.path = path
        self.errors: List[RowError] = []
        self.n_skipped = 0

    def bad_row(self, line: int, message: str, raw: object) -> None:
        if self.mode == "strict":
            raise ValueError(message)
        self.n_skipped += 1
        if self.mode == "collect":
            self.errors.append(RowError(line=line, message=message, raw=raw))
        _res.emit(
            "quarantined",
            quarantine="feedback.io",
            site="feedback.io.row",
            reason=message,
        )

    def finish(self, feedbacks: List[Feedback]) -> ReadResult:
        if self.n_skipped:
            _log.warning(
                "%s: skipped %d malformed row(s) (errors=%r)",
                self.path,
                self.n_skipped,
                self.mode,
            )
        return ReadResult(feedbacks, self.errors)


def parse_rating(token: object) -> Rating:
    """Parse the many spellings of a binary rating."""
    text = str(token).strip().lower()
    if text in _POSITIVE_TOKENS:
        return Rating.POSITIVE
    if text in _NEGATIVE_TOKENS:
        return Rating.NEGATIVE
    raise ValueError(
        f"unrecognized rating {token!r}; expected one of "
        f"{sorted(_POSITIVE_TOKENS | _NEGATIVE_TOKENS)}"
    )


def _row_to_feedback(row: dict, line: int) -> Feedback:
    missing = [f for f in _REQUIRED_FIELDS if row.get(f) in (None, "")]
    if missing:
        raise ValueError(f"line {line}: missing fields {missing}")
    try:
        time = float(row["time"])
    except (TypeError, ValueError):
        raise ValueError(f"line {line}: time {row['time']!r} is not a number") from None
    try:
        rating = parse_rating(row["rating"])
    except ValueError as exc:
        raise ValueError(f"line {line}: {exc}") from None
    category = row.get("category") or None
    authentic_raw = row.get("authentic")
    if authentic_raw in (None, ""):
        authentic = True
    else:
        authentic = str(authentic_raw).strip().lower() in ("1", "true", "yes")
    return Feedback(
        time=time,
        server=str(row["server"]),
        client=str(row["client"]),
        rating=rating,
        category=category,
        authentic=authentic,
    )


def read_feedback_csv(path: PathLike, *, errors: str = "strict") -> ReadResult:
    """Load feedback records from a CSV file (see module docs for schema).

    ``errors`` selects what a malformed *row* does: ``"strict"``
    (default) raises with the offending line number, ``"collect"``
    loads every good row and returns the bad ones on the result's
    ``.errors``, ``"skip"`` drops bad rows with one summary warning.
    Header problems always raise — a wrong header means a wrong file,
    not a bad row.
    """
    sink = _RowSink(errors, path)
    feedbacks: List[Feedback] = []
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file (no header)")
        missing = [f for f in _REQUIRED_FIELDS if f not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: header missing columns {missing}")
        for line, row in enumerate(reader, start=2):
            if _res.armed:
                row = _res.inject("feedback.io.row", value=row)
            try:
                feedbacks.append(_row_to_feedback(row, line))
            except ValueError as exc:
                sink.bad_row(line, str(exc), row)
    _log.debug("read %d feedback records from %s (csv)", len(feedbacks), path)
    return sink.finish(feedbacks)


def write_feedback_csv(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as CSV; returns the number written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "server", "client", "rating", "category", "authentic"])
        for fb in feedbacks:
            writer.writerow(
                [
                    fb.time,
                    fb.server,
                    fb.client,
                    int(fb.rating),
                    fb.category or "",
                    str(fb.authentic).lower(),
                ]
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (csv)", count, path)
    return count


def read_feedback_jsonl(path: PathLike, *, errors: str = "strict") -> ReadResult:
    """Load feedback records from a JSON-lines file.

    ``errors`` behaves as in :func:`read_feedback_csv`; in the lenient
    modes an unparseable JSON line counts as a bad row too.
    """
    sink = _RowSink(errors, path)
    feedbacks: List[Feedback] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"line {line_number}: invalid JSON ({exc})"
                    ) from None
                if not isinstance(row, dict):
                    raise ValueError(f"line {line_number}: expected an object")
                if _res.armed:
                    row = _res.inject("feedback.io.row", value=row)
                feedbacks.append(_row_to_feedback(row, line_number))
            except ValueError as exc:
                sink.bad_row(line_number, str(exc), line)
    _log.debug("read %d feedback records from %s (jsonl)", len(feedbacks), path)
    return sink.finish(feedbacks)


def write_feedback_jsonl(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for fb in feedbacks:
            handle.write(
                json.dumps(
                    {
                        "time": fb.time,
                        "server": fb.server,
                        "client": fb.client,
                        "rating": int(fb.rating),
                        "category": fb.category,
                        "authentic": fb.authentic,
                    }
                )
                + "\n"
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (jsonl)", count, path)
    return count
