"""Feedback serialization: CSV and JSON-lines.

Real deployments have feedback in flat files long before they have a
reputation service; these readers/writers make the library usable on
such data (and feed the ``repro-assess`` CLI).  Formats:

* **CSV** with header ``time,server,client,rating[,category][,authentic]``;
  ``rating`` accepts ``1/0``, ``positive/negative``, ``pos/neg``,
  ``good/bad``, ``+/-`` (case-insensitive).
* **JSONL**: one object per line with the same fields.

Both readers validate eagerly and report the offending line number —
silent row-skipping turns data bugs into wrong trust decisions.
"""

from __future__ import annotations

import csv
import json
import logging
from pathlib import Path
from typing import Iterable, List, Union

from .records import Feedback, Rating

# Module-level logger per library etiquette: never the root logger; the
# application (or repro.obs.configure_logging) decides about handlers.
_log = logging.getLogger(__name__)

__all__ = [
    "read_feedback_csv",
    "write_feedback_csv",
    "read_feedback_jsonl",
    "write_feedback_jsonl",
    "parse_rating",
]

PathLike = Union[str, Path]

_POSITIVE_TOKENS = {"1", "positive", "pos", "good", "+", "true"}
_NEGATIVE_TOKENS = {"0", "negative", "neg", "bad", "-", "false"}
_REQUIRED_FIELDS = ("time", "server", "client", "rating")


def parse_rating(token: object) -> Rating:
    """Parse the many spellings of a binary rating."""
    text = str(token).strip().lower()
    if text in _POSITIVE_TOKENS:
        return Rating.POSITIVE
    if text in _NEGATIVE_TOKENS:
        return Rating.NEGATIVE
    raise ValueError(
        f"unrecognized rating {token!r}; expected one of "
        f"{sorted(_POSITIVE_TOKENS | _NEGATIVE_TOKENS)}"
    )


def _row_to_feedback(row: dict, line: int) -> Feedback:
    missing = [f for f in _REQUIRED_FIELDS if row.get(f) in (None, "")]
    if missing:
        raise ValueError(f"line {line}: missing fields {missing}")
    try:
        time = float(row["time"])
    except (TypeError, ValueError):
        raise ValueError(f"line {line}: time {row['time']!r} is not a number") from None
    try:
        rating = parse_rating(row["rating"])
    except ValueError as exc:
        raise ValueError(f"line {line}: {exc}") from None
    category = row.get("category") or None
    authentic_raw = row.get("authentic")
    if authentic_raw in (None, ""):
        authentic = True
    else:
        authentic = str(authentic_raw).strip().lower() in ("1", "true", "yes")
    return Feedback(
        time=time,
        server=str(row["server"]),
        client=str(row["client"]),
        rating=rating,
        category=category,
        authentic=authentic,
    )


def read_feedback_csv(path: PathLike) -> List[Feedback]:
    """Load feedback records from a CSV file (see module docs for schema)."""
    with open(path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None:
            raise ValueError(f"{path}: empty file (no header)")
        missing = [f for f in _REQUIRED_FIELDS if f not in reader.fieldnames]
        if missing:
            raise ValueError(f"{path}: header missing columns {missing}")
        feedbacks = [
            _row_to_feedback(row, line)
            for line, row in enumerate(reader, start=2)
        ]
    _log.debug("read %d feedback records from %s (csv)", len(feedbacks), path)
    return feedbacks


def write_feedback_csv(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as CSV; returns the number written."""
    count = 0
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time", "server", "client", "rating", "category", "authentic"])
        for fb in feedbacks:
            writer.writerow(
                [
                    fb.time,
                    fb.server,
                    fb.client,
                    int(fb.rating),
                    fb.category or "",
                    str(fb.authentic).lower(),
                ]
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (csv)", count, path)
    return count


def read_feedback_jsonl(path: PathLike) -> List[Feedback]:
    """Load feedback records from a JSON-lines file."""
    feedbacks = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"line {line_number}: invalid JSON ({exc})") from None
            if not isinstance(row, dict):
                raise ValueError(f"line {line_number}: expected an object")
            feedbacks.append(_row_to_feedback(row, line_number))
    _log.debug("read %d feedback records from %s (jsonl)", len(feedbacks), path)
    return feedbacks


def write_feedback_jsonl(path: PathLike, feedbacks: Iterable[Feedback]) -> int:
    """Write feedback records as JSON-lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for fb in feedbacks:
            handle.write(
                json.dumps(
                    {
                        "time": fb.time,
                        "server": fb.server,
                        "client": fb.client,
                        "rating": int(fb.rating),
                        "category": fb.category,
                        "authentic": fb.authentic,
                    }
                )
                + "\n"
            )
            count += 1
    _log.debug("wrote %d feedback records to %s (jsonl)", count, path)
    return count
